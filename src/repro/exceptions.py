"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems raise the most specific subclass that applies;
none of these wrap-and-reraise silently.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class RDFSyntaxError(ReproError):
    """Raised when parsing serialized RDF (N-Triples) fails.

    Carries the 1-based line number of the offending input line when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class TermNotFoundError(ReproError):
    """Raised when a term id or lexical form is absent from a dictionary."""


class StoreFrozenError(ReproError):
    """Raised on mutation of a read-only (compacted/snapshot-loaded) store."""


class SnapshotError(ReproError):
    """Raised when a compiled snapshot is missing, corrupt, or incompatible."""


class SPARQLSyntaxError(ReproError):
    """Raised when parsing a SPARQL query fails."""


class SPARQLEvaluationError(ReproError):
    """Raised when a structurally valid SPARQL query cannot be evaluated."""


class ParseError(ReproError):
    """Raised when the NLP layer cannot produce a dependency tree."""


class QuestionUnderstandingError(ReproError):
    """Raised when no semantic query graph can be built for a question."""


class LinkingError(ReproError):
    """Raised on entity-linking configuration errors (not on empty results)."""


class MiningError(ReproError):
    """Raised on invalid inputs to the paraphrase-dictionary miner."""


class ILPError(ReproError):
    """Raised on malformed integer linear programs."""


class InfeasibleError(ILPError):
    """Raised when an ILP instance has no feasible assignment."""


class EvaluationError(ReproError):
    """Raised on malformed benchmark or gold-standard inputs."""


class EngineClosedError(ReproError):
    """Raised when a request reaches a QAEngine after close() was called."""


class LintError(ReproError):
    """Raised on unusable lint inputs (bad paths, syntax, baselines, rules)."""
