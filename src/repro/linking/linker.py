"""Entity linker: phrase → confidence-ranked entity/class candidates.

Plays the role of DBpedia Lookup in the paper (Section 4.2.1): given an
argument phrase from the semantic query graph, return every plausible
entity or class with a confidence probability δ(arg, u) ∈ (0, 1] — and
return them *all*; disambiguation is the matcher's job.

Scoring combines surface similarity with graph prominence (degree), the
same signals lookup services rank by: "Philadelphia" retrieves the city,
the film, and the 76ers; the city scores highest on prominence, yet the
film wins later because only it participates in a match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.linking.index import IndexEntry, LabelIndex, normalize_label
from repro.linking.similarity import combined_similarity
from repro.rdf.graph import KnowledgeGraph


@dataclass(frozen=True, slots=True)
class LinkCandidate:
    """One candidate mapping of an argument phrase to a graph node."""

    node_id: int
    label: str
    score: float
    is_class: bool

    def __repr__(self) -> str:
        kind = "class" if self.is_class else "entity"
        return f"LinkCandidate({self.label!r}, {kind}, {self.score:.3f})"


class EntityLinker:
    """Link argument phrases to knowledge graph nodes.

    Parameters
    ----------
    kg:
        The knowledge graph to link against.
    max_candidates:
        Upper bound on returned candidates per phrase.
    min_score:
        Candidates scoring below this confidence are dropped; raising it
        trades recall (more entity-linking failures, Table 10) for speed.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        max_candidates: int = 10,
        min_score: float = 0.25,
        tracer=None,
        index: LabelIndex | None = None,
        max_degree: int | None = None,
    ):
        self.kg = kg
        self.max_candidates = max_candidates
        self.min_score = min_score
        self.tracer = tracer
        # A compiled snapshot supplies both the prebuilt index and the
        # max degree, skipping the full label scan and the degree sweep.
        self.index = index if index is not None else LabelIndex(kg)
        self._max_degree = max_degree if max_degree is not None else max(
            (kg.degree(node_id, include_structural=True) for node_id in kg.store.node_ids()),
            default=1,
        )

    @property
    def max_degree(self) -> int:
        """The prominence-normalization ceiling (snapshot compiler reads it)."""
        return self._max_degree

    def link(self, phrase: str, tracer=None) -> list[LinkCandidate]:
        """Confidence-ranked candidates for ``phrase`` (may be empty).

        Exact normalized label matches always rank above partial matches;
        within each tier, prominence (degree) breaks ties — mirroring how
        lookup services rank "Philadelphia" the city above the film.
        """
        normalized = normalize_label(phrase)
        if not normalized:
            return []
        scored: dict[int, LinkCandidate] = {}
        exact_entries = self.index.exact(phrase)
        if not exact_entries:
            # Lookup services resolve a descriptive prefix away: "the comic
            # Captain America" → "Captain America".  Try suffixes of the
            # phrase before falling back to fuzzy retrieval.
            words = phrase.split()
            for start in range(1, len(words)):
                exact_entries = self.index.exact(" ".join(words[start:]))
                if exact_entries:
                    break
        for entry in exact_entries:
            candidate = self._score(phrase, entry, exact=True)
            self._keep_best(scored, candidate)
        if scored:
            # Exact hits exist: keep only the fuzzy candidates whose label
            # *contains* every phrase word — lookup services behave like a
            # prefix search ("Philadelphia" also returns "Philadelphia
            # 76ers"), but sharing one word is not enough ("Mark Thatcher"
            # must not pollute "Margaret Thatcher").
            phrase_words = set(normalized.split())
            for entry in self.index.by_words(phrase):
                if entry.node_id in scored:
                    continue
                if phrase_words <= set(entry.normalized.split()):
                    candidate = self._score(phrase, entry, exact=False)
                    if candidate.score >= self.min_score:
                        self._keep_best(scored, candidate)
        else:
            for entry in self.index.by_words(phrase):
                candidate = self._score(phrase, entry, exact=False)
                if candidate.score >= self.min_score:
                    self._keep_best(scored, candidate)
        ranked = sorted(scored.values(), key=lambda c: (-c.score, c.node_id))
        kept = ranked[: self.max_candidates]
        if tracer is None:
            tracer = self.tracer if self.tracer is not None else obs.get_tracer()
        metrics = tracer.metrics
        metrics.incr("linker.lookups")
        metrics.incr("linker.candidates_returned", len(kept))
        if not kept:
            metrics.incr("linker.misses")
        return kept

    def _keep_best(self, scored: dict[int, LinkCandidate], candidate: LinkCandidate) -> None:
        existing = scored.get(candidate.node_id)
        if existing is None or candidate.score > existing.score:
            scored[candidate.node_id] = candidate

    def _score(self, phrase: str, entry: IndexEntry, exact: bool) -> LinkCandidate:
        similarity = 1.0 if exact else combined_similarity(
            normalize_label(phrase), entry.normalized
        )
        prominence = self._prominence(entry.node_id)
        # Exact matches sit in [0.8, 1.0] by prominence; partial matches are
        # scaled into [0, 0.8) so they can never outrank an exact match.
        if exact:
            score = 0.8 + 0.2 * prominence
        else:
            score = similarity * (0.55 + 0.25 * prominence)
        return LinkCandidate(entry.node_id, entry.label, score, entry.is_class)

    def _prominence(self, node_id: int) -> float:
        """Degree-based popularity in [0, 1], log-scaled."""
        degree = self.kg.degree(node_id, include_structural=True)
        if degree <= 0:
            return 0.0
        return math.log1p(degree) / math.log1p(self._max_degree)
