"""Entity linking: map argument phrases to entities/classes with confidence.

The paper uses the DBpedia Lookup service for this step (Section 4.2.1) and
deliberately keeps the result *ambiguous* — "Philadelphia" links to the
city, the film, and the 76ers, each with a confidence probability, and the
graph match later decides which one was meant.  This package is the local
equivalent: an inverted index over the knowledge graph's labels plus string
similarity and prominence scoring.

    from repro.linking import EntityLinker

    linker = EntityLinker(kg)
    for candidate in linker.link("Philadelphia"):
        print(candidate.node_id, candidate.score, candidate.is_class)
"""

from repro.linking.similarity import dice_coefficient, jaccard_words, normalized_edit_similarity
from repro.linking.index import LabelIndex
from repro.linking.linker import EntityLinker, LinkCandidate

__all__ = [
    "dice_coefficient",
    "jaccard_words",
    "normalized_edit_similarity",
    "LabelIndex",
    "EntityLinker",
    "LinkCandidate",
]
