"""String similarity measures used by the entity linker.

Three standard measures, each in [0, 1]:

* character-bigram Dice coefficient — robust to word order and small edits,
  the primary surface-similarity signal;
* word-set Jaccard — catches multi-word partial matches ("Queen Elizabeth
  II" vs "Elizabeth II");
* normalized Levenshtein similarity — a tie-breaker for near-identical
  strings.
"""

from __future__ import annotations


def _bigrams(text: str) -> set[str]:
    padded = f" {text} "
    return {padded[i : i + 2] for i in range(len(padded) - 1)}


def dice_coefficient(left: str, right: str) -> float:
    """Dice coefficient over character bigrams of the lowercased strings."""
    if not left or not right:
        return 0.0
    left_grams = _bigrams(left.lower())
    right_grams = _bigrams(right.lower())
    overlap = len(left_grams & right_grams)
    return 2.0 * overlap / (len(left_grams) + len(right_grams))


def jaccard_words(left: str, right: str) -> float:
    """Jaccard similarity of the lowercased word sets."""
    left_words = set(left.lower().split())
    right_words = set(right.lower().split())
    if not left_words or not right_words:
        return 0.0
    return len(left_words & right_words) / len(left_words | right_words)


def normalized_edit_similarity(left: str, right: str) -> float:
    """1 - (Levenshtein distance / max length), on lowercased strings."""
    a, b = left.lower(), right.lower()
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    if len(a) > len(b):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, char_b in enumerate(b, start=1):
        current = [j]
        for i, char_a in enumerate(a, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[i] + 1, current[i - 1] + 1, previous[i - 1] + cost)
            )
        previous = current
    return 1.0 - previous[len(a)] / len(b)


def combined_similarity(left: str, right: str) -> float:
    """Weighted blend of the three measures (weights sum to 1)."""
    return (
        0.5 * dice_coefficient(left, right)
        + 0.3 * jaccard_words(left, right)
        + 0.2 * normalized_edit_similarity(left, right)
    )
