"""Inverted label index over a knowledge graph.

Indexes every ``rdfs:label`` (falling back to IRI local names) of every
graph node, normalized, plus a word-level posting list so multi-word and
partial phrases retrieve candidates cheaply.  Parenthetical disambiguators
("Philadelphia (film)") are stripped from the *key* but kept on the entry,
which is exactly what makes "Philadelphia" ambiguous — three nodes share
the normalized key.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.nlp.lemmatizer import lemmatize_noun
from repro.rdf.graph import KnowledgeGraph

_PAREN_RE = re.compile(r"\s*\([^)]*\)")
_NON_WORD_RE = re.compile(r"[^a-z0-9 ]+")


def normalize_label(label: str) -> str:
    """Normalization applied to both index keys and query phrases."""
    text = _PAREN_RE.sub("", label.lower())
    text = text.replace("_", " ").replace("-", " ").replace(".", "")
    text = _NON_WORD_RE.sub(" ", text)
    return " ".join(text.split())


@dataclass(frozen=True, slots=True)
class IndexEntry:
    """One (node, label) pair in the index."""

    node_id: int
    label: str
    normalized: str
    is_class: bool


class LabelIndex:
    """Exact and word-overlap retrieval over graph node labels."""

    def __init__(self, kg: KnowledgeGraph):
        self.kg = kg
        self._exact: dict[str, list[IndexEntry]] = {}
        self._by_word: dict[str, set[int]] = {}  # word → entry positions
        self._entries: list[IndexEntry] = []
        self._build()

    @classmethod
    def from_compiled(
        cls,
        kg: KnowledgeGraph,
        entries: "list[tuple[int, str, str, bool]]",
        postings: "dict[str, tuple[int, ...]]",
    ) -> "LabelIndex":
        """Rebuild an index from compiled-snapshot entries and postings.

        Skips the full build — no triple scan, no label normalization,
        no lemmatizing — because entries (node_id, label, normalized,
        is_class) and the word posting lists were persisted verbatim.
        The exact-match map is regenerated from the entries' stored
        normalized keys, preserving insertion order.
        """
        index = cls.__new__(cls)
        index.kg = kg
        index._entries = [
            IndexEntry(node_id, label, normalized, is_class)
            for node_id, label, normalized, is_class in entries
        ]
        index._exact = {}
        for entry in index._entries:
            index._exact.setdefault(entry.normalized, []).append(entry)
        index._by_word = {word: set(positions) for word, positions in postings.items()}
        return index

    def entries(self) -> list[IndexEntry]:
        """All (node, label) entries in insertion order (read-only)."""
        return self._entries

    def word_postings(self) -> dict[str, set[int]]:
        """word → entry-position posting lists (read-only)."""
        return self._by_word

    def _build(self) -> None:
        store = self.kg.store
        for node_id in sorted(store.node_ids()):
            labels = self.kg.all_labels(node_id)
            if not labels:
                fallback = self.kg.label_of(node_id)
                labels = [fallback] if fallback else []
            is_class = self.kg.is_class(node_id)
            for label in labels:
                self._add_entry(node_id, label, is_class)
        # Short name-like literals are linkable too: "Who was called
        # Scarface?" must link the phrase to the alias literal itself.
        structural = self.kg.structural_predicate_ids
        for sid, pid, oid in store.triples_ids():
            if pid in structural or not store.is_literal_id(oid):
                continue
            lexical = str(store.dictionary.decode(oid))
            if 0 < len(lexical.split()) <= 4 and not lexical[:1].isdigit():
                self._add_entry(oid, lexical, is_class=False)

    def _add_entry(self, node_id: int, label: str, is_class: bool) -> None:
        normalized = normalize_label(label)
        if not normalized:
            return
        entry = IndexEntry(node_id, label, normalized, is_class)
        if any(e.node_id == node_id for e in self._exact.get(normalized, ())):
            return
        position = len(self._entries)
        self._entries.append(entry)
        self._exact.setdefault(normalized, []).append(entry)
        for word in set(normalized.split()):
            self._by_word.setdefault(word, set()).add(position)
            # Index the singular form too, so "films" finds "film".
            singular = lemmatize_noun(word)
            if singular != word:
                self._by_word.setdefault(singular, set()).add(position)

    def __len__(self) -> int:
        return len(self._entries)

    def exact(self, phrase: str) -> list[IndexEntry]:
        """Entries whose normalized label equals the normalized phrase.

        Tries the phrase as-is and with its head word singularised
        ("movies" → "movie")."""
        normalized = normalize_label(phrase)
        found = list(self._exact.get(normalized, ()))
        words = normalized.split()
        if words:
            singular = " ".join(words[:-1] + [lemmatize_noun(words[-1])])
            if singular != normalized:
                found.extend(self._exact.get(singular, ()))
        return found

    def by_words(self, phrase: str) -> list[IndexEntry]:
        """Entries sharing at least one word with the phrase."""
        normalized = normalize_label(phrase)
        positions: set[int] = set()
        for word in set(normalized.split()):
            positions |= self._by_word.get(word, set())
            singular = lemmatize_noun(word)
            if singular != word:
                positions |= self._by_word.get(singular, set())
        return [self._entries[position] for position in sorted(positions)]
