"""Online experiments: Tables 8–11 and Figure 6.

All drivers run over the QALD-style benchmark of
:mod:`repro.datasets.qald` with the default mini-DBpedia setup (timing
comparisons use the distractor-padded graph, which recreates DBpedia's
candidate-list sizes without changing any answer).
"""

from __future__ import annotations

import statistics

from repro.baselines import Deanna, TemplateQA
from repro.core import GAnswer
from repro.datasets import qald_questions
from repro.eval import evaluate_system
from repro.eval.harness import EvaluationRun
from repro.experiments import paper
from repro.experiments.common import ExperimentResult, default_setup
from repro.linking import EntityLinker


def run_ganswer(
    distractors: int = 0, linker_candidates: int | None = None, **kwargs
) -> EvaluationRun:
    setup = default_setup(distractors)
    linker = (
        EntityLinker(setup.kg, max_candidates=linker_candidates)
        if linker_candidates is not None
        else None
    )
    system = GAnswer(setup.kg, setup.dictionary, linker=linker, **kwargs)
    return evaluate_system(system, qald_questions(), "Our Method (repro)")


def run_deanna(
    distractors: int = 0, linker_candidates: int | None = None
) -> EvaluationRun:
    setup = default_setup(distractors)
    linker = (
        EntityLinker(setup.kg, max_candidates=linker_candidates)
        if linker_candidates is not None
        else None
    )
    system = Deanna(setup.kg, setup.dictionary, linker=linker)
    return evaluate_system(system, qald_questions(), "DEANNA (repro)")


def run_template(distractors: int = 0) -> EvaluationRun:
    setup = default_setup(distractors)
    system = TemplateQA(setup.kg, setup.dictionary)
    return evaluate_system(system, qald_questions(), "Template QA (repro)")


def _summary_row(run: EvaluationRun) -> list[object]:
    summary = run.summary
    return [
        run.system_name,
        summary.processed,
        summary.right,
        summary.partial,
        round(summary.recall, 2),
        round(summary.precision, 2),
        round(summary.f1, 2),
    ]


def table8_end_to_end() -> ExperimentResult:
    """Table 8: QALD-3-style end-to-end comparison.

    Reimplemented systems are measured; the other QALD-3 campaign systems
    are quoted from the paper for context.
    """
    result = ExperimentResult(
        "table8",
        "Table 8 — end-to-end QALD evaluation (99 questions)",
        ["system", "processed", "right", "partially", "recall", "precision", "F-1"],
    )
    result.rows.append(_summary_row(run_ganswer()))
    result.rows.append(_summary_row(run_deanna()))
    result.rows.append(_summary_row(run_template()))
    for name, (processed, right, partial, recall, precision, f1) in paper.TABLE8.items():
        result.rows.append(
            [f"{name} (paper)", processed, right, partial, recall, precision, f1]
        )
    result.notes.append(
        "shape to check: our method answers the most questions among "
        "reimplemented/NL systems and beats DEANNA 32 vs 21 right"
    )
    return result


def figure6_runtime(distractors: int = 25, linker_candidates: int = 30) -> ExperimentResult:
    """Figure 6: per-question running time, ours vs DEANNA.

    Run on the distractor-padded graph with a DBpedia-Lookup-sized
    candidate budget, so candidate lists have realistic lengths; reported
    per question answered correctly by both systems.
    """
    ours = run_ganswer(distractors, linker_candidates=linker_candidates)
    deanna = run_deanna(distractors, linker_candidates=linker_candidates)
    result = ExperimentResult(
        "figure6",
        "Figure 6 — online running time, ours vs DEANNA "
        f"(paper: 2–68x total speedup, understanding < "
        f"{paper.FIGURE6_UNDERSTANDING_BOUND_MS} ms)",
        [
            "question", "ours understand (ms)", "ours total (ms)",
            "DEANNA understand (ms)", "DEANNA total (ms)", "speedup",
        ],
    )
    speedups = []
    for outcome in ours.right_questions():
        other = deanna.outcome_for(outcome.question.qid)
        if not other.score.is_right:
            continue
        speedup = other.total_time / max(outcome.total_time, 1e-9)
        speedups.append(speedup)
        result.rows.append(
            [
                f"Q{outcome.question.qid}",
                round(outcome.understanding_time * 1000, 2),
                round(outcome.total_time * 1000, 2),
                round(other.understanding_time * 1000, 2),
                round(other.total_time * 1000, 2),
                f"{speedup:.1f}x",
            ]
        )
    if speedups:
        result.notes.append(
            f"speedup range {min(speedups):.1f}x–{max(speedups):.1f}x, "
            f"median {statistics.median(speedups):.1f}x "
            f"(paper: {paper.FIGURE6_SPEEDUP_RANGE[0]}–"
            f"{paper.FIGURE6_SPEEDUP_RANGE[1]}x)"
        )
        max_understanding = max(
            outcome.understanding_time for outcome in ours.outcomes
        )
        result.notes.append(
            f"our max understanding time {max_understanding * 1000:.1f} ms "
            "(paper bound: 100 ms)"
        )
        from repro.eval.reporting import format_bar_chart

        chart = format_bar_chart(
            [row[0] for row in result.rows],
            [round(s, 1) for s in speedups],
            title="speedup over DEANNA per question (x):",
            unit="x",
        )
        result.notes.append("\n" + chart)
    return result


def table9_heuristic_rules() -> ExperimentResult:
    """Table 9: the effect of argument-finding Rules 1–4."""
    setup = default_setup()
    with_rules = run_ganswer()
    without_system = GAnswer(setup.kg, setup.dictionary, use_heuristic_rules=False)
    without = evaluate_system(without_system, qald_questions(), "without rules")

    def arguments_found(run: EvaluationRun) -> int:
        # A question "finds its arguments" when a semantic query graph with
        # at least one edge was built.
        return sum(
            1
            for outcome in run.outcomes
            if outcome.pipeline_failure not in ("relation_extraction", "parse")
        )

    result = ExperimentResult(
        "table9",
        "Table 9 — heuristic rules for finding associated arguments "
        "(paper: 32→48 arguments, 21→32 answers)",
        ["metric", "without the four rules", "using the four rules"],
    )
    result.rows.append(
        ["questions with arguments found", arguments_found(without), arguments_found(with_rules)]
    )
    result.rows.append(
        ["questions answered correctly", without.summary.right, with_rules.summary.right]
    )
    return result


def table10_failure_analysis() -> ExperimentResult:
    """Table 10: why questions fail, by class."""
    run = run_ganswer()
    counts = run.failure_counts()
    # "partial" outcomes are near-misses, not failures, in the paper's
    # bucketing; fold them into "other" visibility but report separately.
    failures = {
        key: counts.get(key, 0)
        for key in ("entity_linking", "relation_extraction", "aggregation", "other")
    }
    total = sum(failures.values())
    samples = {
        "entity_linking": "Q48: In which UK city are the headquarters of the MI6?",
        "relation_extraction": "Q64: Give me all launch pads operated by NASA.",
        "aggregation": "Q13: Who is the youngest player in the Premier League?",
        "other": "Q7: Is Berlin the capital of Germany?",
    }
    result = ExperimentResult(
        "table10",
        "Table 10 — failure analysis (paper ratios: linking 27%, relation "
        "22%, aggregation 35%, other 16%)",
        ["reason", "count", "ratio", "sample question"],
    )
    for reason, count in failures.items():
        ratio = count / total if total else 0.0
        paper_count, paper_ratio = paper.TABLE10[reason]
        result.rows.append(
            [f"{reason} (paper {paper_count}, {paper_ratio:.0%})", count,
             f"{ratio:.0%}", samples[reason]]
        )
    result.notes.append(
        f"partially-answered questions: {counts.get('partial', 0)} "
        "(reported separately in Table 8)"
    )
    return result


def table11_answered_questions() -> ExperimentResult:
    """Table 11: the correctly answered questions with response times."""
    run = run_ganswer()
    result = ExperimentResult(
        "table11",
        "Table 11 — correctly answered questions with response time "
        "(paper: 32 questions, 250–2565 ms on DBpedia)",
        ["id", "question", "response time (ms)"],
    )
    for outcome in run.right_questions():
        result.rows.append(
            [
                f"Q{outcome.question.qid}",
                outcome.question.text,
                round(outcome.total_time * 1000, 2),
            ]
        )
    measured = {outcome.question.qid for outcome in run.right_questions()}
    expected = set(paper.TABLE11_QUESTION_IDS)
    overlap = len(measured & expected)
    result.notes.append(
        f"{overlap}/32 of the paper's Table 11 question ids answered "
        "correctly by the reproduction"
    )
    return result
