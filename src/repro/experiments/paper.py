"""The paper's published numbers, quoted for side-by-side comparison.

Only *shapes* are expected to reproduce (who wins, by what rough factor,
which failure class dominates); the absolute values below come from the
paper's DBpedia-scale testbed.
"""

#: Table 4 — DBpedia statistics.
TABLE4_DBPEDIA = {"entities": 5_200_000, "triples": 60_000_000, "predicates": 1643}

#: Table 5 — Patty relation-phrase datasets.
TABLE5_PATTY = {
    "wordnet-wikipedia": {"phrases": 350_568, "pairs": 3_862_304, "avg_pairs": 11},
    "freebase-wikipedia": {"phrases": 1_631_530, "pairs": 15_802_947, "avg_pairs": 9},
}

#: Exp 1 — dictionary precision: "P@3 is about 50 % when the path length
#: is 1 ... while increasing of path length the precision goes down".
EXP1_P_AT_3_LENGTH1 = 0.50

#: Table 7 — offline mining time (wall clock on the authors' server).
TABLE7_OFFLINE = {
    ("wordnet-wikipedia", 2): "17 min",
    ("wordnet-wikipedia", 4): "3.88 h",
    ("freebase-wikipedia", 2): "119 min",
    ("freebase-wikipedia", 4): "30.33 h",
}

#: Table 8 — QALD-3 end-to-end results (processed, right, partial, R, P, F1).
TABLE8 = {
    "Our Method": (76, 32, 11, 0.40, 0.40, 0.40),
    "squall2sparql": (96, 77, 13, 0.85, 0.89, 0.87),
    "CASIA": (52, 29, 8, 0.36, 0.35, 0.36),
    "Scalewelis": (70, 1, 38, 0.33, 0.33, 0.33),
    "RTV": (55, 30, 4, 0.34, 0.32, 0.33),
    "Intui2": (99, 28, 4, 0.32, 0.32, 0.32),
    "SWIP": (21, 14, 2, 0.15, 0.16, 0.16),
    "DEANNA": (27, 21, 0, 0.21, 0.21, 0.21),
}

#: Figure 6 — "the total response time of our method is faster than DEANNA
#: by 2-68 times"; our understanding stays under 100 ms.
FIGURE6_SPEEDUP_RANGE = (2, 68)
FIGURE6_UNDERSTANDING_BOUND_MS = 100

#: Table 9 — heuristic-rule ablation.
TABLE9 = {
    "arguments_correct": {"without_rules": 32, "with_rules": 48},
    "questions_correct": {"without_rules": 21, "with_rules": 32},
}

#: Table 10 — failure analysis (count, ratio).
TABLE10 = {
    "entity_linking": (17, 0.27),
    "relation_extraction": (14, 0.22),
    "aggregation": (22, 0.35),
    "other": (10, 0.16),
}

#: Table 11 — per-question response times range from 250 ms to 2565 ms.
TABLE11_TIME_RANGE_MS = (250, 2565)

#: The 32 QALD-3 question ids the paper answers correctly (Table 11).
TABLE11_QUESTION_IDS = (
    2, 3, 14, 17, 19, 20, 21, 22, 24, 27, 28, 30, 35, 39, 41, 42, 44, 45,
    54, 58, 63, 70, 74, 76, 77, 81, 83, 84, 86, 89, 98, 100,
)
