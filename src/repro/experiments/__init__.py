"""Experiment drivers: one module per table/figure of the paper.

Each module exposes a ``run(...)`` returning an :class:`ExperimentResult`
(title, headers, rows, notes) that the benchmark harness executes and the
EXPERIMENTS.md record quotes.  The drivers hold *all* experiment logic so
``benchmarks/`` stays thin timing shells.

Paper-published numbers are kept in :mod:`repro.experiments.paper` and are
printed next to measured values — reproduction compares shapes, not
absolute numbers (our substrate is a simulator, not the authors' testbed).
"""

from repro.experiments.common import ExperimentResult, default_setup

__all__ = ["ExperimentResult", "default_setup"]
