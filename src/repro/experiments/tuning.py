"""Parameter tuning on the QALD training split.

QALD campaigns ship a training set for exactly this: picking the system's
parameters before touching the test questions.  The paper's choices are
k = 10 matches (Section 6.3) and path threshold θ = 4 (Section 3); this
driver sweeps both on the 30-question training split and shows those
defaults sitting on the quality plateau — smaller θ loses the multi-hop
relations, while k barely matters once the best-score tie rule extracts
answers.
"""

from __future__ import annotations

import time

from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.datasets.qald import qald_train_questions
from repro.eval import evaluate_system
from repro.experiments.common import ExperimentResult
from repro.paraphrase import ParaphraseMiner


def theta_sweep(thetas=(1, 2, 3, 4)) -> ExperimentResult:
    """Training-split quality vs the path-length threshold θ."""
    kg = build_dbpedia_mini()
    phrases = build_phrase_dataset()
    questions = qald_train_questions()
    result = ExperimentResult(
        "tuning_theta",
        "Tuning — path threshold θ on the training split "
        "(the paper defaults to θ=4)",
        ["theta", "right (of 30)", "F-1", "mining time (s)"],
    )
    for theta in thetas:
        kg.refresh()  # cold kernel caches: mining times stay comparable across θ
        started = time.perf_counter()
        dictionary = ParaphraseMiner(kg, max_path_length=theta, top_k=3).mine(phrases)
        mining_time = time.perf_counter() - started
        run = evaluate_system(GAnswer(kg, dictionary), questions, f"theta={theta}")
        summary = run.summary
        result.rows.append(
            [theta, summary.right, round(summary.f1, 2), round(mining_time, 3)]
        )
    result.notes.append(
        "shape to check: quality climbs with θ until the multi-hop "
        "relations are covered, at rising mining cost (Table 7's trade-off)"
    )
    return result


def k_sweep(ks=(1, 3, 5, 10, 20)) -> ExperimentResult:
    """Training-split quality vs the number of top matches k."""
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_phrase_dataset()
    )
    questions = qald_train_questions()
    result = ExperimentResult(
        "tuning_k",
        "Tuning — top-k on the training split (the paper uses k=10)",
        ["k", "right (of 30)", "F-1", "evaluation time (s)"],
    )
    for k in ks:
        system = GAnswer(kg, dictionary, k=k)
        run = evaluate_system(system, questions, f"k={k}")
        total_eval = sum(outcome.evaluation_time for outcome in run.outcomes)
        summary = run.summary
        result.rows.append(
            [k, summary.right, round(summary.f1, 2), round(total_eval, 4)]
        )
    return result
