"""Table 12 / Table 3: measured complexity scaling of both pipelines.

The paper's claim is asymptotic: our question understanding is polynomial
(O(|Y|³) from the parser) while DEANNA's is NP-hard (ILP).  This driver
measures the claim's observable consequence:

* our understanding time grows smoothly with question length;
* DEANNA's understanding time grows steeply with the number of candidates
  per phrase (the ILP's input), while ours barely moves — evaluation-stage
  pruning absorbs the growth.

Also includes the pruning and TA ablations DESIGN.md calls out.
"""

from __future__ import annotations

import time

from repro.baselines import Deanna
from repro.core import GAnswer
from repro.datasets import qald_questions
from repro.eval import evaluate_system
from repro.experiments.common import ExperimentResult, default_setup
from repro.linking import EntityLinker

#: Questions of increasing length for the understanding-time sweep.
_LENGTH_SWEEP = [
    "Who founded Intel?",
    "Who is the mayor of Berlin?",
    "Give me all movies directed by Francis Ford Coppola.",
    "Who was married to an actor that played in Philadelphia?",
    "Give me all people that were born in Vienna and died in Berlin.",
]

#: A question whose phrases all have rich candidate lists.
_CANDIDATE_SWEEP_QUESTION = "Who was married to an actor that played in Philadelphia?"


def understanding_scaling() -> ExperimentResult:
    """Understanding time vs question length (ours stays sub-linear-ish)."""
    setup = default_setup()
    system = GAnswer(setup.kg, setup.dictionary)
    result = ExperimentResult(
        "table12_length",
        "Table 12a — our question-understanding time vs question length "
        "(paper: polynomial O(|Y|^3) vs DEANNA's NP-hard ILP)",
        ["question", "words", "understanding (ms)"],
    )
    for question in _LENGTH_SWEEP:
        runs = []
        for _ in range(5):
            answer = system.answer(question)
            runs.append(answer.understanding_time)
        result.rows.append(
            [question, len(question.split()), round(min(runs) * 1000, 3)]
        )
    return result


def candidate_scaling(candidate_counts=(5, 10, 20, 40)) -> ExperimentResult:
    """Understanding time vs candidates per phrase, ours vs DEANNA.

    Candidate-list length is the ILP's input size; the distractor-padded
    graph supplies arbitrarily many same-label candidates.
    """
    setup = default_setup(distractors_per_entity=50)
    result = ExperimentResult(
        "table12_candidates",
        "Table 12b — understanding time vs candidates per phrase",
        ["candidates", "ours understand (ms)", "DEANNA understand (ms)", "ratio"],
    )
    for count in candidate_counts:
        ours = GAnswer(
            setup.kg, setup.dictionary,
            linker=EntityLinker(setup.kg, max_candidates=count),
        )
        deanna = Deanna(
            setup.kg, setup.dictionary,
            linker=EntityLinker(setup.kg, max_candidates=count),
        )
        ours_time = min(
            ours.answer(_CANDIDATE_SWEEP_QUESTION).understanding_time
            for _ in range(3)
        )
        deanna_time = min(
            deanna.answer(_CANDIDATE_SWEEP_QUESTION).understanding_time
            for _ in range(3)
        )
        result.rows.append(
            [
                count,
                round(ours_time * 1000, 3),
                round(deanna_time * 1000, 3),
                f"{deanna_time / max(ours_time, 1e-9):.1f}x",
            ]
        )
    result.notes.append(
        "shape to check: DEANNA's column grows with the candidate count "
        "(ILP input), ours stays flat (disambiguation deferred)"
    )
    return result


def kg_size_scaling(
    distractor_levels=(0, 10, 25, 50, 100),
    triples_axis=(10_000, 100_000, 1_000_000),
    shards=8,
) -> ExperimentResult:
    """End-to-end time vs knowledge-graph size, plus the storage curve.

    Two axes share the table.  The distractor knob multiplies every
    entity's homonym count, which is what growing DBpedia does to this
    workload — per-question time should grow gently (pruning + TA absorb
    the candidates) while correctness is unchanged.  The triples axis
    grows a synthetic graph to 10^6 triples and runs the same
    subject-bound query workload against a single compact backend and a
    subject-hash :class:`~repro.rdf.shard.ShardedBackend` — identical
    results required, comparable time expected (bound-subject patterns
    route to exactly one segment).
    """
    question = "Who was married to an actor that played in Philadelphia?"
    result = ExperimentResult(
        "scaling_kg",
        "Scaling — answer time vs graph size (distractors + triples axes)",
        ["scale point", "graph size", "total (ms)", "answers"],
    )
    for level in distractor_levels:
        setup = default_setup(level)
        system = GAnswer(setup.kg, setup.dictionary)
        best = min(system.answer(question).total_time for _ in range(3))
        answer = system.answer(question)
        result.rows.append(
            [
                f"distractors={level}",
                f"{setup.kg.store.statistics()['nodes']} nodes",
                round(best * 1000, 3),
                ", ".join(str(a) for a in answer.answers),
            ]
        )
    result.notes.append("answers must be identical at every distractor scale")

    for total in triples_axis:
        for label, store, rows in _storage_scaling_point(total, shards):
            result.rows.append(
                [
                    f"triples={total} {label}",
                    f"{len(store)} triples",
                    rows[0],
                    f"{rows[1]} rows",
                ]
            )
    result.notes.append(
        f"single vs sharded-{shards} must retrieve identical rows at every "
        f"triples scale (times are the 200-subject query workload)"
    )
    return result


def _storage_scaling_point(total_triples: int, shards: int):
    """Time one subject-bound workload on single vs sharded storage.

    Returns ``(label, store, (best_ms, row_count))`` per backend; the two
    row counts must agree (checked by the caller's benchmark).
    """
    from repro.datasets.synthetic import SyntheticConfig, build_synthetic_kg

    kg = build_synthetic_kg(
        SyntheticConfig.with_total_triples(total_triples, predicates=30)
    )
    base = kg.store
    subjects = [triple[0] for triple in base.triples_ids()][:4000:20]

    def workload(store):
        rows = 0
        for sid in subjects:
            for _ in store.triples_ids(s=sid):
                rows += 1
        return rows

    points = []
    for label, store in (
        ("single", base.compacted()),
        (f"sharded-{shards}", base.sharded(shards)),
    ):
        best = None
        rows = 0
        for _ in range(3):
            started = time.perf_counter()
            rows = workload(store)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        points.append((label, store, (round(best * 1000, 3), rows)))
    return points


def pruning_ablation() -> ExperimentResult:
    """Ablation: neighborhood pruning on/off (same answers, less search)."""
    setup = default_setup(distractors_per_entity=25)
    result = ExperimentResult(
        "ablation_pruning",
        "Ablation — neighborhood-based pruning (Section 4.2.2)",
        ["configuration", "right", "total evaluation time (s)"],
    )
    for label, use_pruning in (("with pruning", True), ("without pruning", False)):
        system = GAnswer(setup.kg, setup.dictionary, use_pruning=use_pruning)
        run = evaluate_system(system, qald_questions(), label)
        total_eval = sum(outcome.evaluation_time for outcome in run.outcomes)
        result.rows.append([label, run.summary.right, round(total_eval, 4)])
    result.notes.append("pruning must not change the right count, only time")
    return result


def ta_ablation() -> ExperimentResult:
    """Ablation: TA early termination on/off (same answers, fewer seeds)."""
    setup = default_setup(distractors_per_entity=25)
    result = ExperimentResult(
        "ablation_ta",
        "Ablation — TA-style early termination (Algorithm 3)",
        ["configuration", "right", "total evaluation time (s)"],
    )
    for label, use_ta in (("with TA stop", True), ("exhaustive seeding", False)):
        system = GAnswer(setup.kg, setup.dictionary, use_ta=use_ta)
        run = evaluate_system(system, qald_questions(), label)
        total_eval = sum(outcome.evaluation_time for outcome in run.outcomes)
        result.rows.append([label, run.summary.right, round(total_eval, 4)])
    result.notes.append("TA must not change the right count, only time")
    return result
