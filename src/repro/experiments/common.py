"""Shared infrastructure for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.eval.reporting import format_table
from repro.paraphrase import ParaphraseDictionary, ParaphraseMiner
from repro.paraphrase.miner import RelationPhraseDataset
from repro.rdf.graph import KnowledgeGraph


@dataclass(slots=True)
class ExperimentResult:
    """One regenerated table/figure: rows plus context."""

    experiment_id: str           # "table8", "figure6", ...
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return text


@dataclass(slots=True)
class Setup:
    """The default evaluation setup shared by the online experiments."""

    kg: KnowledgeGraph
    dictionary: ParaphraseDictionary
    phrases: RelationPhraseDataset


@lru_cache(maxsize=4)
def default_setup(distractors_per_entity: int = 0, jobs: int = 1) -> Setup:
    """Build (and cache) the standard KG + mined dictionary.

    ``jobs`` is forwarded to :class:`ParaphraseMiner` (mined output is
    identical at any job count, so cached setups stay interchangeable).
    """
    kg = build_dbpedia_mini(distractors_per_entity=distractors_per_entity)
    phrases = build_phrase_dataset()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3, jobs=jobs).mine(phrases)
    return Setup(kg=kg, dictionary=dictionary, phrases=phrases)
