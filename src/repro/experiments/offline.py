"""Offline-phase experiments: Tables 4–7 and the tf-idf ablation.

* Table 4 — dataset statistics of the knowledge graphs we mine against.
* Table 5 — relation-phrase dataset statistics at several scales.
* Table 6 / Exp 1 — sample dictionary entries and precision@k by path
  length, judged against the gold predicate map (our stand-in for the
  paper's human judges).
* Table 7 / Exp 2 — offline mining time for θ ∈ {2, 4} across dataset
  scales.
"""

from __future__ import annotations

import time

from repro.datasets import (
    SyntheticConfig,
    build_dbpedia_mini,
    build_phrase_dataset,
    build_noisy_phrase_dataset,
    build_synthetic_kg,
)
from repro.datasets.patty_sim import GOLD_PREDICATES, scale_phrase_dataset
from repro.datasets.synthetic import entity_pool
from repro.experiments import paper
from repro.experiments.common import ExperimentResult
from repro.paraphrase import ParaphraseMiner
from repro.paraphrase.path_mining import describe_path
from repro.paraphrase.miner import normalize_phrase
from repro.rdf.graph import step_predicate


def table4_graph_statistics() -> ExperimentResult:
    """Table 4: statistics of the RDF graphs."""
    result = ExperimentResult(
        "table4",
        "Table 4 — RDF graph statistics (paper: DBpedia with 5.2M entities, "
        "60M triples, 1643 predicates)",
        ["graph", "nodes", "triples", "predicates", "literals"],
    )
    for name, kg in (
        ("mini-DBpedia", build_dbpedia_mini()),
        ("mini-DBpedia +25 distractors", build_dbpedia_mini(distractors_per_entity=25)),
        ("synthetic-10k", build_synthetic_kg(SyntheticConfig(entities=2000, triples_per_entity=5))),
    ):
        stats = kg.store.statistics()
        result.rows.append(
            [name, stats["nodes"], stats["triples"], stats["predicates"], stats["literals"]]
        )
    return result


def table5_phrase_statistics() -> ExperimentResult:
    """Table 5: relation-phrase dataset statistics at two scales."""
    result = ExperimentResult(
        "table5",
        "Table 5 — relation phrase dataset statistics (paper: 350,568 / "
        "1,631,530 phrases, ~11 / ~9 pairs each)",
        ["dataset", "relation phrases", "entity pairs", "avg pairs/phrase"],
    )
    synth = build_synthetic_kg(SyntheticConfig(entities=500, triples_per_entity=4))
    pool = entity_pool(synth)
    datasets = (
        ("curated", build_phrase_dataset()),
        ("curated+noise", build_noisy_phrase_dataset()),
        ("scaled-small (wordnet-like)", scale_phrase_dataset(build_phrase_dataset(), 300, 8, pool)),
        ("scaled-large (freebase-like)", scale_phrase_dataset(build_phrase_dataset(), 1200, 6, pool)),
    )
    for name, dataset in datasets:
        stats = dataset.statistics()
        result.rows.append(
            [
                name,
                stats["relation_phrases"],
                stats["entity_pairs"],
                round(stats["avg_pairs_per_phrase"], 1),
            ]
        )
    result.notes.append(
        "the scaled datasets preserve Patty's shape: many phrases, "
        "single-digit average support"
    )
    return result


def _judge_path(kg, phrase: str, path: tuple[int, ...]) -> bool:
    """Gold judgement: every traversed predicate is in the phrase's set."""
    gold = GOLD_PREDICATES.get(phrase)
    if gold is None:
        return False
    names = {kg.iri_of(step_predicate(step)).local_name for step in path}
    return names <= gold


def table6_dictionary_precision(sample_size: int = 6) -> ExperimentResult:
    """Table 6 + Exp 1: sample entries and precision@3 by path length."""
    kg = build_dbpedia_mini()
    phrases = build_noisy_phrase_dataset()
    miner = ParaphraseMiner(kg, max_path_length=4, top_k=3)
    dictionary = miner.mine(phrases)

    result = ExperimentResult(
        "table6",
        "Table 6 / Exp 1 — paraphrase dictionary sample and precision "
        f"(paper: P@3 ≈ {paper.EXP1_P_AT_3_LENGTH1:.0%} at length 1, "
        "degrading with length)",
        ["relation phrase", "predicate / path", "confidence"],
    )
    shown = 0
    for phrase in GOLD_PREDICATES:
        mappings = dictionary.lookup(normalize_phrase(phrase))
        if not mappings or shown >= sample_size:
            continue
        result.rows.append(
            [phrase, describe_path(kg, mappings[0].path), round(mappings[0].confidence, 2)]
        )
        shown += 1

    judged: dict[int, list[bool]] = {}
    for phrase in GOLD_PREDICATES:
        for mapping in dictionary.lookup(normalize_phrase(phrase))[:3]:
            judged.setdefault(len(mapping.path), []).append(
                _judge_path(kg, phrase, mapping.path)
            )
    for length in sorted(judged):
        votes = judged[length]
        precision = sum(votes) / len(votes)
        result.notes.append(
            f"P@3 at path length {length}: {precision:.2f} over {len(votes)} mappings"
        )
    return result


def precision_by_length() -> dict[int, float]:
    """Exp 1's headline curve: top-3 mapping precision per path length."""
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_noisy_phrase_dataset()
    )
    judged: dict[int, list[bool]] = {}
    for phrase in GOLD_PREDICATES:
        for mapping in dictionary.lookup(normalize_phrase(phrase))[:3]:
            judged.setdefault(len(mapping.path), []).append(
                _judge_path(kg, phrase, mapping.path)
            )
    return {
        length: sum(votes) / len(votes) for length, votes in sorted(judged.items())
    }


def table7_offline_time() -> ExperimentResult:
    """Table 7: offline mining wall-clock for θ ∈ {2, 4} at two scales."""
    result = ExperimentResult(
        "table7",
        "Table 7 — offline dictionary-mining time (paper: 17 min → 3.88 h "
        "and 119 min → 30.33 h going from θ=2 to θ=4)",
        ["dataset", "theta=2 (s)", "theta=4 (s)", "slowdown"],
    )
    synth = build_synthetic_kg(
        SyntheticConfig(entities=1000, triples_per_entity=4, predicates=30)
    )
    pool = entity_pool(synth)
    scales = (
        ("wordnet-like (small)", scale_phrase_dataset(build_phrase_dataset(), 100, 5, pool)),
        ("freebase-like (large)", scale_phrase_dataset(build_phrase_dataset(), 400, 5, pool)),
    )
    for name, dataset in scales:
        times = {}
        for theta in (2, 4):
            synth.refresh()  # cold kernel caches: each cell times a full run
            miner = ParaphraseMiner(synth, max_path_length=theta, top_k=3)
            started = time.perf_counter()
            miner.mine(dataset)
            times[theta] = time.perf_counter() - started
        result.rows.append(
            [
                name,
                round(times[2], 3),
                round(times[4], 3),
                f"{times[4] / max(times[2], 1e-9):.1f}x",
            ]
        )
    result.notes.append(
        "mining runs against the synthetic KG; the shape to check is the "
        "steep growth from θ=2 to θ=4 and with dataset size"
    )
    return result


def tfidf_ablation() -> ExperimentResult:
    """Ablation: tf-idf vs raw-frequency path scoring.

    Reproduces Section 3's noise discussion directly: a graph where every
    person shares a (livesIn, livesIn⁻¹)-style connection — the analogue
    of the paper's ubiquitous (hasGender, hasGender) path.  With tf-idf
    the noise path's idf (hence score) is zero and it vanishes; with raw
    frequency it ties the true relation path.
    """
    from repro.rdf import IRI, KnowledgeGraph, Triple, TripleStore
    from repro.rdf.graph import backward_step, forward_step
    from repro.paraphrase import RelationPhraseDataset

    store = TripleStore()
    e = lambda name: IRI(f"noise:{name}")
    families = 4
    triples = []
    for family in range(families):
        grandpa, ted, bob, junior, wife = (
            f"grandpa{family}", f"ted{family}", f"bob{family}",
            f"junior{family}", f"wife{family}",
        )
        triples += [
            (grandpa, "hasChild", ted), (grandpa, "hasChild", bob),
            (bob, "hasChild", junior), (ted, "spouse", wife),
        ]
        for person in (ted, junior, wife):
            triples.append((person, "livesIn", "usa"))
    for s, p, o in triples:
        store.add(Triple(e(s), e(p), e(o)))
    kg = KnowledgeGraph(store)

    dataset = RelationPhraseDataset()
    dataset.add("uncle of", [(e(f"ted{i}"), e(f"junior{i}")) for i in range(families)])
    dataset.add("is married to", [(e(f"ted{i}"), e(f"wife{i}")) for i in range(families)])

    lives_in = kg.id_of(e("livesIn"))
    noise_path = (forward_step(lives_in), backward_step(lives_in))
    child = kg.id_of(e("hasChild"))
    uncle_path = (backward_step(child), forward_step(child), forward_step(child))

    result = ExperimentResult(
        "ablation_tfidf",
        "Ablation — tf-idf vs raw tf path scoring (the paper's "
        "(hasGender, hasGender) noise scenario)",
        ["scoring", "noise path confidence", "uncle path confidence",
         "noise survives top-3"],
    )
    for label, use_tfidf in (("tf-idf (paper)", True), ("raw tf", False)):
        dictionary = ParaphraseMiner(
            kg, max_path_length=3, top_k=3, use_tfidf=use_tfidf,
            length_discount=1.0,
        ).mine(dataset)
        mappings = dictionary.lookup(normalize_phrase("uncle of"))
        by_path = {m.path: m.confidence for m in mappings}
        result.rows.append(
            [
                label,
                round(by_path.get(noise_path, 0.0), 3),
                round(by_path.get(uncle_path, 0.0), 3),
                "yes" if noise_path in by_path else "no",
            ]
        )
    result.notes.append(
        "shape to check: tf-idf drops the ubiquitous noise path entirely; "
        "raw frequency keeps it tied with the true 3-hop uncle path"
    )
    return result
