"""SPARQL evaluation via subgraph matching (the gStore connection).

The paper (Section 7, citing Zou et al.'s gStore [33]) notes that
"answering SPARQL queries equals finding subgraph matches of query graphs
Q over RDF graph".  This module makes that equivalence executable: a
SELECT query's basic graph pattern is compiled into a
:class:`CandidateSpace` — bound terms become single-candidate vertices,
variables become wildcards, predicates become length-1 path candidates —
and evaluated with the same :class:`SubgraphMatcher` the QA pipeline uses.

Two caveats keep the equivalence honest rather than total:

* subgraph matching is *injective* while SPARQL solutions may bind two
  variables to the same term, so the compiler is only applicable to
  queries whose semantics want distinct resources (`is_compilable`
  reports why otherwise);
* FILTER/ORDER/COUNT post-processing stays in the algebraic executor.

The test suite cross-validates the two engines on every compilable query —
a strong mutual check on both implementations.
"""

from __future__ import annotations

from repro.exceptions import SPARQLEvaluationError
from repro.match.candidates import (
    CandidateSpace,
    EdgeCandidate,
    QueryEdge,
    QueryVertex,
    VertexCandidate,
)
from repro.match.matcher import SubgraphMatcher
from repro.rdf.graph import KnowledgeGraph, forward_step
from repro.rdf.terms import IRI
from repro.sparql.ast import Query, QueryForm, Variable
from repro.sparql.executor import Bindings


def is_compilable(query: Query) -> str | None:
    """None if the query can run on the matcher; else the reason it can't."""
    if query.form is not QueryForm.SELECT:
        return "only SELECT queries compile to matching"
    if query.filters or query.order_by or query.count_variable is not None:
        return "FILTER/ORDER BY/COUNT require the algebraic executor"
    if query.unions or query.optionals:
        return "UNION/OPTIONAL require the algebraic executor"
    if not query.patterns:
        return "empty basic graph pattern"
    for pattern in query.patterns:
        if isinstance(pattern.predicate, Variable):
            return "variable predicates do not map to edge candidates"
        if not isinstance(pattern.predicate, IRI):
            return "property paths require the algebraic executor"
        if pattern.subject == pattern.object:
            return "self-loop patterns need non-injective semantics"
    return None


def compile_to_space(kg: KnowledgeGraph, query: Query) -> tuple[CandidateSpace, dict]:
    """Compile a SELECT BGP into a candidate space.

    Returns (space, term_to_vertex) where ``term_to_vertex`` maps each
    subject/object term or variable to its vertex id.
    """
    reason = is_compilable(query)
    if reason is not None:
        raise SPARQLEvaluationError(f"query not compilable to matching: {reason}")

    space = CandidateSpace()
    vertex_of: dict[object, int] = {}

    def vertex_for(position) -> int:
        key = position
        if key in vertex_of:
            return vertex_of[key]
        vertex_id = len(vertex_of)
        if isinstance(position, Variable):
            space.add_vertex(QueryVertex(vertex_id, wildcard=True))
        else:
            node = kg.id_of(position)
            candidates = (
                [VertexCandidate(node, 1.0)] if node is not None else []
            )
            space.add_vertex(QueryVertex(vertex_id, candidates=candidates))
        vertex_of[key] = vertex_id
        return vertex_id

    for pattern in query.patterns:
        source = vertex_for(pattern.subject)
        target = vertex_for(pattern.object)
        predicate = kg.id_of(pattern.predicate)
        candidates = (
            [EdgeCandidate((forward_step(predicate),), 1.0)]
            if predicate is not None
            else []
        )
        space.add_edge(QueryEdge(source, target, candidates=candidates))
    return space, vertex_of


def evaluate_by_matching(kg: KnowledgeGraph, query: Query) -> list[Bindings]:
    """Evaluate a compilable SELECT query with the subgraph matcher.

    Results carry the same shape as the algebraic executor's (projected,
    deduplicated when DISTINCT).  One semantic difference remains by
    design: within a connected pattern component the match is injective,
    so solutions that bind two different variables to the *same* node are
    not produced — exactly the subgraph-isomorphism semantics of
    Definition 3.  The cross-validation tests account for this.
    """
    space, vertex_of = compile_to_space(kg, query)
    if space.has_empty_list():
        return []

    variables = {
        key: vertex_id
        for key, vertex_id in vertex_of.items()
        if isinstance(key, Variable)
    }
    projected = (
        [v for v in query.projection if v in variables]
        if query.projection is not None
        else sorted(variables, key=lambda v: v.name)
    )
    rows: list[Bindings] = []
    seen: set[tuple] = set()
    components = space.components()
    per_component: list[list[dict[int, int]]] = []
    for component in components:
        matcher = SubgraphMatcher(
            kg, component, max_matches=100_000, directed_edges=True
        )
        matches = matcher.all_matches()
        if not matches:
            return []
        per_component.append([dict(m.bindings) for m in matches])

    def combine(index: int, current: dict[int, int]) -> None:
        if index == len(per_component):
            row = {
                variable: kg.term_of(current[variables[variable]])
                for variable in projected
            }
            key = tuple(sorted((v.name, repr(t)) for v, t in row.items()))
            if not query.distinct or key not in seen:
                seen.add(key)
                rows.append(row)
            return
        for bindings in per_component[index]:
            merged = dict(current)
            merged.update(bindings)
            combine(index + 1, merged)

    combine(0, {})

    if query.limit is not None or query.offset:
        rows = rows[query.offset :]
        if query.limit is not None:
            rows = rows[: query.limit]
    return rows
