"""Recursive-descent parser for the SPARQL subset.

Grammar (informal)::

    query     := select | ask
    select    := 'SELECT' ('DISTINCT')? projection 'WHERE'? group modifiers
    ask       := 'ASK' 'WHERE'? group
    projection:= '*' | 'COUNT' '(' var ')' | var+
    group     := '{' (pattern '.'?)* (filter)* '}'   # filters may interleave
    pattern   := term term term
    term      := var | '<iri>' | literal | number
    filter    := 'FILTER' '(' boolexpr ')'
    boolexpr  := orexpr;  orexpr := andexpr ('||' andexpr)*
    andexpr   := unary ('&&' unary)*
    unary     := '!' unary | '(' boolexpr ')' | comparison
    comparison:= operand op operand
    modifiers := ('ORDER' 'BY' ordercond+)? ('LIMIT' int)? ('OFFSET' int)?
    ordercond := var | ('ASC'|'DESC') '(' var ')'

Keywords are case-insensitive, as in SPARQL.
"""

from __future__ import annotations

import re

from repro.exceptions import SPARQLSyntaxError
from repro.rdf import vocab
from repro.rdf.terms import IRI, Literal
from repro.sparql.ast import (
    BooleanExpr,
    Comparator,
    Comparison,
    FilterExpr,
    GroupPattern,
    NotExpr,
    OrderCondition,
    Query,
    QueryForm,
    TriplePattern,
    Variable,
)

_TOKEN_RE = re.compile(
    r"""
    \s*(
        <[^<>\s]*>                     # IRI
      | \?[A-Za-z_][A-Za-z0-9_]*       # variable
      | "(?:[^"\\]|\\.)*"(?:@[A-Za-z-]+|\^\^<[^<>\s]*>)?   # literal
      | -?\d+\.\d+                     # decimal
      | -?\d+                          # integer
      | \|\| | && | != | <= | >=       # two-char operators
      | [{}().!=<>*/^|?+]              # single-char punctuation & path ops
      | [A-Za-z_][A-Za-z0-9_]*         # keyword / bare word
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "ask",
    "where",
    "distinct",
    "count",
    "filter",
    "order",
    "by",
    "asc",
    "desc",
    "limit",
    "offset",
    "union",
    "optional",
}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise SPARQLSyntaxError(f"cannot tokenize near: {remainder[:30]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SPARQLSyntaxError("unexpected end of query")
        self.pos += 1
        return token

    def accept(self, expected: str) -> bool:
        token = self.peek()
        if token is not None and token.lower() == expected.lower():
            self.pos += 1
            return True
        return False

    def expect(self, expected: str) -> None:
        token = self.next()
        if token.lower() != expected.lower():
            raise SPARQLSyntaxError(f"expected {expected!r}, found {token!r}")

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() == word

    # ------------------------------------------------------------------ #
    # Grammar
    # ------------------------------------------------------------------ #

    def parse_query(self) -> Query:
        token = self.peek()
        if token is None:
            raise SPARQLSyntaxError("empty query")
        if token.lower() == "select":
            query = self._parse_select()
        elif token.lower() == "ask":
            query = self._parse_ask()
        else:
            raise SPARQLSyntaxError(f"query must start with SELECT or ASK, found {token!r}")
        if self.peek() is not None:
            raise SPARQLSyntaxError(f"trailing tokens after query: {self.peek()!r}")
        return query

    def _parse_select(self) -> Query:
        self.expect("select")
        distinct = self.accept("distinct")
        projection: list[Variable] | None = None
        count_variable: Variable | None = None
        if self.accept("*"):
            projection = None
        elif self.at_keyword("count"):
            self.next()
            self.expect("(")
            count_variable = self._parse_variable()
            self.expect(")")
        else:
            projection = []
            while self.peek() is not None and self.peek().startswith("?"):
                projection.append(self._parse_variable())
            if not projection:
                raise SPARQLSyntaxError("SELECT needs '*', COUNT(?v), or variables")
        self.accept("where")
        patterns, filters, unions, optionals = self._parse_group()
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        return Query(
            form=QueryForm.SELECT,
            patterns=patterns,
            projection=projection,
            distinct=distinct,
            filters=filters,
            order_by=order_by,
            limit=limit,
            offset=offset,
            count_variable=count_variable,
            unions=unions,
            optionals=optionals,
        )

    def _parse_ask(self) -> Query:
        self.expect("ask")
        self.accept("where")
        patterns, filters, unions, optionals = self._parse_group()
        return Query(
            form=QueryForm.ASK,
            patterns=patterns,
            filters=filters,
            unions=unions,
            optionals=optionals,
        )

    def _parse_group(self):
        """The outer group: patterns, filters, UNION and OPTIONAL blocks."""
        self.expect("{")
        patterns: list[TriplePattern] = []
        filters: list[FilterExpr] = []
        unions: list[list[GroupPattern]] = []
        optionals: list[GroupPattern] = []
        while not self.accept("}"):
            if self.peek() is None:
                raise SPARQLSyntaxError("unterminated group pattern: missing '}'")
            if self.at_keyword("filter"):
                self.next()
                self.expect("(")
                filters.append(self._parse_bool_expr())
                self.expect(")")
                self.accept(".")
                continue
            if self.at_keyword("optional"):
                self.next()
                optionals.append(self._parse_flat_group())
                self.accept(".")
                continue
            if self.peek() == "{":
                arms = [self._parse_flat_group()]
                while self.accept("union"):
                    arms.append(self._parse_flat_group())
                if len(arms) < 2:
                    raise SPARQLSyntaxError("a nested group must be part of a UNION")
                unions.append(arms)
                self.accept(".")
                continue
            subject = self._parse_term()
            predicate = self._parse_predicate()
            obj = self._parse_term()
            patterns.append(TriplePattern(subject, predicate, obj))
            self.accept(".")
        return patterns, filters, unions, optionals

    def _parse_flat_group(self) -> GroupPattern:
        """A UNION arm / OPTIONAL body: patterns and filters, no nesting."""
        self.expect("{")
        group = GroupPattern()
        while not self.accept("}"):
            if self.peek() is None:
                raise SPARQLSyntaxError("unterminated group pattern: missing '}'")
            if self.at_keyword("filter"):
                self.next()
                self.expect("(")
                group.filters.append(self._parse_bool_expr())
                self.expect(")")
                self.accept(".")
                continue
            if self.peek() == "{" or self.at_keyword("optional"):
                raise SPARQLSyntaxError(
                    "nested groups inside UNION/OPTIONAL are not supported"
                )
            subject = self._parse_term()
            predicate = self._parse_predicate()
            obj = self._parse_term()
            group.patterns.append(TriplePattern(subject, predicate, obj))
            self.accept(".")
        return group

    def _parse_order_by(self) -> list[OrderCondition]:
        if not self.at_keyword("order"):
            return []
        self.next()
        self.expect("by")
        conditions: list[OrderCondition] = []
        while True:
            token = self.peek()
            if token is None:
                break
            lowered = token.lower()
            if lowered in ("asc", "desc"):
                self.next()
                self.expect("(")
                variable = self._parse_variable()
                self.expect(")")
                conditions.append(OrderCondition(variable, descending=(lowered == "desc")))
            elif token.startswith("?"):
                conditions.append(OrderCondition(self._parse_variable()))
            else:
                break
        if not conditions:
            raise SPARQLSyntaxError("ORDER BY needs at least one condition")
        return conditions

    def _parse_limit_offset(self) -> tuple[int | None, int]:
        limit: int | None = None
        offset = 0
        # SPARQL allows LIMIT/OFFSET in either order.
        for _ in range(2):
            if self.at_keyword("limit"):
                self.next()
                limit = self._parse_int()
            elif self.at_keyword("offset"):
                self.next()
                offset = self._parse_int()
        return limit, offset

    def _parse_int(self) -> int:
        token = self.next()
        try:
            value = int(token)
        except ValueError:
            raise SPARQLSyntaxError(f"expected an integer, found {token!r}") from None
        if value < 0:
            raise SPARQLSyntaxError(f"expected a non-negative integer, found {value}")
        return value

    # ------------------------------------------------------------------ #
    # Terms and expressions
    # ------------------------------------------------------------------ #

    def _parse_variable(self) -> Variable:
        token = self.next()
        if not token.startswith("?"):
            raise SPARQLSyntaxError(f"expected a variable, found {token!r}")
        return Variable(token[1:])

    def _parse_term(self):
        token = self.next()
        if token.startswith("?"):
            return Variable(token[1:])
        if token.startswith("<") and token.endswith(">"):
            value = token[1:-1]
            if not value:
                raise SPARQLSyntaxError("empty IRI")
            return IRI(value)
        if token.startswith('"'):
            return self._decode_literal(token)
        if re.fullmatch(r"-?\d+", token):
            return Literal(token, datatype=vocab.XSD_INTEGER)
        if re.fullmatch(r"-?\d+\.\d+", token):
            return Literal(token, datatype=vocab.XSD_DECIMAL)
        raise SPARQLSyntaxError(f"expected a term, found {token!r}")

    @staticmethod
    def _decode_literal(token: str) -> Literal:
        body_match = re.match(r'^"((?:[^"\\]|\\.)*)"', token)
        if body_match is None:
            raise SPARQLSyntaxError(f"malformed literal: {token!r}")
        lexical = body_match.group(1)
        lexical = (
            lexical.replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\\\\", "\\")
        )
        rest = token[body_match.end() :]
        if rest.startswith("@"):
            return Literal(lexical, language=rest[1:])
        if rest.startswith("^^<") and rest.endswith(">"):
            return Literal(lexical, datatype=IRI(rest[3:-1]))
        return Literal(lexical)

    # ------------------------------------------------------------------ #
    # Property paths (SPARQL 1.1 subset)
    #
    #   path    := seq ('|' seq)*
    #   seq     := unary ('/' unary)*
    #   unary   := '^' unary | primary ('+'|'*'|'?')?
    #   primary := <iri> | '(' path ')'
    # ------------------------------------------------------------------ #

    def _parse_predicate(self):
        """Predicate position: a variable, a plain IRI, or a property path."""
        token = self.peek()
        if token is not None and token.startswith("?") and len(token) > 1:
            return self._parse_variable()
        path = self._parse_path()
        from repro.sparql.paths import PredicateStep

        if isinstance(path, PredicateStep):
            return path.predicate  # plain predicate stays an IRI
        return path

    def _parse_path(self):
        from repro.sparql.paths import AlternativePath

        first = self._parse_path_sequence()
        options = [first]
        while self.accept("|"):
            options.append(self._parse_path_sequence())
        if len(options) == 1:
            return first
        return AlternativePath(tuple(options))

    def _parse_path_sequence(self):
        from repro.sparql.paths import SequencePath

        first = self._parse_path_unary()
        steps = [first]
        while self.accept("/"):
            steps.append(self._parse_path_unary())
        if len(steps) == 1:
            return first
        return SequencePath(tuple(steps))

    def _parse_path_unary(self):
        from repro.sparql.paths import InversePath, RepeatPath

        if self.accept("^"):
            return InversePath(self._parse_path_unary())
        primary = self._parse_path_primary()
        while True:
            token = self.peek()
            if token == "+":
                self.next()
                primary = RepeatPath(primary, min_count=1)
            elif token == "*":
                self.next()
                primary = RepeatPath(primary, min_count=0)
            elif token == "?":
                self.next()
                primary = RepeatPath(primary, min_count=0, at_most_one=True)
            else:
                return primary

    def _parse_path_primary(self):
        from repro.sparql.paths import PredicateStep

        token = self.peek()
        if token == "(":
            self.next()
            inner = self._parse_path()
            self.expect(")")
            return inner
        if token is not None and token.startswith("<") and token.endswith(">"):
            self.next()
            value = token[1:-1]
            if not value:
                raise SPARQLSyntaxError("empty IRI in property path")
            return PredicateStep(IRI(value))
        raise SPARQLSyntaxError(f"expected a predicate or path, found {token!r}")

    def _parse_bool_expr(self) -> FilterExpr:
        left = self._parse_and_expr()
        while self.accept("||"):
            right = self._parse_and_expr()
            left = BooleanExpr("||", left, right)
        return left

    def _parse_and_expr(self) -> FilterExpr:
        left = self._parse_unary_expr()
        while self.accept("&&"):
            right = self._parse_unary_expr()
            left = BooleanExpr("&&", left, right)
        return left

    def _parse_unary_expr(self) -> FilterExpr:
        if self.accept("!"):
            return NotExpr(self._parse_unary_expr())
        if self.accept("("):
            inner = self._parse_bool_expr()
            self.expect(")")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Comparison:
        left = self._parse_term()
        op_token = self.next()
        if op_token == "!":
            # "!=" may tokenize as "!" "=" when adjacent to a term; rejoin.
            self.expect("=")
            op_token = "!="
        try:
            op = Comparator(op_token)
        except ValueError:
            raise SPARQLSyntaxError(f"unknown comparison operator {op_token!r}") from None
        right = self._parse_term()
        return Comparison(left, op, right)


def parse_query(text: str) -> Query:
    """Parse a SPARQL query string into a :class:`Query` AST."""
    return _Parser(_tokenize(text)).parse_query()
