"""Abstract syntax tree for the SPARQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union

from repro.rdf.terms import Term


@dataclass(frozen=True, slots=True)
class Variable:
    """A SPARQL variable (without the leading '?')."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise ValueError(f"invalid variable name: {self.name!r}")

    def __str__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Variable, Term]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern: each position is a variable or a bound term."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> set[Variable]:
        return {
            position
            for position in (self.subject, self.predicate, self.object)
            if isinstance(position, Variable)
        }

    def bound_count(self) -> int:
        return 3 - len(self.variables())


class Comparator(Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True, slots=True)
class Comparison:
    """A FILTER comparison between a variable and a constant (or variable)."""

    left: PatternTerm
    op: Comparator
    right: PatternTerm


@dataclass(frozen=True, slots=True)
class BooleanExpr:
    """Conjunction/disjunction of filter expressions."""

    op: str  # "&&" or "||"
    left: "FilterExpr"
    right: "FilterExpr"


@dataclass(frozen=True, slots=True)
class NotExpr:
    operand: "FilterExpr"


FilterExpr = Union[Comparison, BooleanExpr, NotExpr]


@dataclass(frozen=True, slots=True)
class OrderCondition:
    variable: Variable
    descending: bool = False


@dataclass(slots=True)
class GroupPattern:
    """A flat group of triple patterns with local filters.

    Used as the arm of a UNION and as the body of an OPTIONAL; nesting
    further groups inside is not part of the supported subset.
    """

    patterns: list[TriplePattern] = field(default_factory=list)
    filters: list["FilterExpr"] = field(default_factory=list)

    def variables(self) -> set[Variable]:
        found: set[Variable] = set()
        for pattern in self.patterns:
            found |= pattern.variables()
        return found


class QueryForm(Enum):
    SELECT = "select"
    ASK = "ask"


@dataclass(slots=True)
class Query:
    """A parsed SPARQL query.

    ``projection`` is None for ``SELECT *`` (project all variables) and for
    ASK queries.  ``count_variable`` is set for ``SELECT COUNT(?v)`` —
    the one aggregate form the paper's failure analysis mentions.
    """

    form: QueryForm
    patterns: list[TriplePattern]
    projection: list[Variable] | None = None
    distinct: bool = False
    filters: list[FilterExpr] = field(default_factory=list)
    order_by: list[OrderCondition] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0
    count_variable: Variable | None = None
    #: UNION blocks: each entry is the list of alternative arms of one
    #: ``{ ... } UNION { ... }`` expression, joined with the base pattern.
    unions: list[list[GroupPattern]] = field(default_factory=list)
    #: OPTIONAL blocks: left-joined with the solutions, in order.
    optionals: list[GroupPattern] = field(default_factory=list)

    def variables(self) -> set[Variable]:
        found: set[Variable] = set()
        for pattern in self.patterns:
            found |= pattern.variables()
        for block in self.unions:
            for arm in block:
                found |= arm.variables()
        for optional in self.optionals:
            found |= optional.variables()
        return found
