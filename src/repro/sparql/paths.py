"""SPARQL 1.1 property paths (evaluation subset).

The paper's related work (Section 7, citing Losemann & Martens) contrasts
its offline *simple-path enumeration under a length bound* with SPARQL
property paths — regular expressions over predicates with unbounded
closure.  This module makes property paths executable so the contrast is
demonstrable in one system:

* ``<p>``            — a predicate step
* ``^<p>``           — inverse step
* ``p1 / p2``        — sequence
* ``p1 | p2``        — alternative
* ``p+``, ``p*``, ``p?`` — one-or-more / zero-or-more / zero-or-one
* parentheses for grouping

Closure (`+`/`*`) is evaluated by BFS over *nodes* (W3C semantics: no
duplicate nodes, termination guaranteed on cyclic data), unlike the
offline miner's all-simple-paths enumeration — exactly the difference the
paper points out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI


@dataclass(frozen=True, slots=True)
class PredicateStep:
    """A single forward predicate step."""

    predicate: IRI


@dataclass(frozen=True, slots=True)
class InversePath:
    inner: "PathExpr"


@dataclass(frozen=True, slots=True)
class SequencePath:
    steps: tuple["PathExpr", ...]


@dataclass(frozen=True, slots=True)
class AlternativePath:
    options: tuple["PathExpr", ...]


@dataclass(frozen=True, slots=True)
class RepeatPath:
    """Closure: min_count 0 (``*``/``?``) or 1 (``+``); bounded=True is ``?``."""

    inner: "PathExpr"
    min_count: int
    at_most_one: bool = False


PathExpr = Union[PredicateStep, InversePath, SequencePath, AlternativePath, RepeatPath]


def path_to_string(path: PathExpr) -> str:
    """Round-trippable rendering of a path expression."""
    if isinstance(path, PredicateStep):
        return f"<{path.predicate.value}>"
    if isinstance(path, InversePath):
        return f"^{path_to_string(path.inner)}"
    if isinstance(path, SequencePath):
        return "(" + "/".join(path_to_string(s) for s in path.steps) + ")"
    if isinstance(path, AlternativePath):
        return "(" + "|".join(path_to_string(o) for o in path.options) + ")"
    suffix = "?" if path.at_most_one else ("*" if path.min_count == 0 else "+")
    return f"{path_to_string(path.inner)}{suffix}"


# --------------------------------------------------------------------- #
# Evaluation
# --------------------------------------------------------------------- #

def _step_pairs(store: TripleStore, predicate: IRI) -> Iterator[tuple[int, int]]:
    pid = store.dictionary.lookup_or_none(predicate)
    if pid is None:
        return
    for sid, _pid, oid in store.triples_ids(p=pid):
        yield (sid, oid)


def _targets_of(store: TripleStore, path: PathExpr, source: int) -> set[int]:
    """All nodes reachable from ``source`` via ``path`` (node semantics)."""
    if isinstance(path, PredicateStep):
        pid = store.dictionary.lookup_or_none(path.predicate)
        if pid is None:
            return set()
        return set(store.objects_ids(source, pid))
    if isinstance(path, InversePath):
        return _sources_of(store, path.inner, source)
    if isinstance(path, SequencePath):
        frontier = {source}
        for step in path.steps:
            next_frontier: set[int] = set()
            for node in frontier:
                next_frontier |= _targets_of(store, step, node)
            if not next_frontier:
                return set()
            frontier = next_frontier
        return frontier
    if isinstance(path, AlternativePath):
        found: set[int] = set()
        for option in path.options:
            found |= _targets_of(store, option, source)
        return found
    # RepeatPath: BFS closure over nodes.
    reached: set[int] = set()
    frontier = {source}
    if path.min_count == 0:
        reached.add(source)
    while frontier:
        next_frontier: set[int] = set()
        for node in frontier:
            next_frontier |= _targets_of(store, path.inner, node)
        next_frontier -= reached
        reached |= next_frontier
        if path.at_most_one:
            break
        frontier = next_frontier
    return reached


def _sources_of(store: TripleStore, path: PathExpr, target: int) -> set[int]:
    """All nodes from which ``target`` is reachable via ``path``."""
    if isinstance(path, PredicateStep):
        pid = store.dictionary.lookup_or_none(path.predicate)
        if pid is None:
            return set()
        return set(store.subjects_ids(pid, target))
    if isinstance(path, InversePath):
        return _targets_of(store, path.inner, target)
    if isinstance(path, SequencePath):
        frontier = {target}
        for step in reversed(path.steps):
            next_frontier: set[int] = set()
            for node in frontier:
                next_frontier |= _sources_of(store, step, node)
            if not next_frontier:
                return set()
            frontier = next_frontier
        return frontier
    if isinstance(path, AlternativePath):
        found: set[int] = set()
        for option in path.options:
            found |= _sources_of(store, option, target)
        return found
    reached: set[int] = set()
    frontier = {target}
    if path.min_count == 0:
        reached.add(target)
    while frontier:
        next_frontier: set[int] = set()
        for node in frontier:
            next_frontier |= _sources_of(store, path.inner, node)
        next_frontier -= reached
        reached |= next_frontier
        if path.at_most_one:
            break
        frontier = next_frontier
    return reached


def evaluate_path(
    store: TripleStore,
    path: PathExpr,
    source: int | None,
    target: int | None,
) -> Iterator[tuple[int, int]]:
    """All (source, target) id pairs connected by ``path``.

    Either endpoint may be bound (an id) or free (None); with both free,
    every graph node is tried as a source — correct, if costly, matching
    the W3C evaluation semantics for open-ended paths.
    """
    if source is not None and target is not None:
        if target in _targets_of(store, path, source):
            yield (source, target)
        return
    if source is not None:
        for node in sorted(_targets_of(store, path, source)):
            yield (source, node)
        return
    if target is not None:
        for node in sorted(_sources_of(store, path, target)):
            yield (node, target)
        return
    for start in sorted(store.node_ids()):
        for node in sorted(_targets_of(store, path, start)):
            yield (start, node)
