"""SPARQL subset engine over the triple store.

Supports the query shapes the paper's pipeline and baselines emit:

* ``SELECT``/``SELECT DISTINCT``/``SELECT COUNT(?v)`` and ``ASK``
* basic graph patterns (any mix of bound terms and variables)
* ``FILTER`` with numeric/string comparisons, ``&&``, ``||``, ``!``
* ``ORDER BY [ASC|DESC](?v)``, ``LIMIT``, ``OFFSET``

This is the substrate for the generate-then-evaluate baselines (DEANNA,
template QA) and for executing the top-k SPARQL queries gAnswer emits
(Algorithm 3's output is "Top-k SPARQL Queries").

    from repro.sparql import parse_query, evaluate

    query = parse_query('SELECT ?who WHERE { ?who <ex:spouse> <ex:Banderas> . }')
    rows = evaluate(store, query)
"""

from repro.sparql.ast import (
    BooleanExpr,
    Comparison,
    NotExpr,
    OrderCondition,
    Query,
    QueryForm,
    TriplePattern,
    Variable,
)
from repro.sparql.parser import parse_query
from repro.sparql.executor import Bindings, evaluate, evaluate_ask, evaluate_select
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    PathExpr,
    PredicateStep,
    RepeatPath,
    SequencePath,
    evaluate_path,
    path_to_string,
)

__all__ = [
    "AlternativePath",
    "InversePath",
    "PathExpr",
    "PredicateStep",
    "RepeatPath",
    "SequencePath",
    "evaluate_path",
    "path_to_string",
    "BooleanExpr",
    "Comparison",
    "NotExpr",
    "OrderCondition",
    "Query",
    "QueryForm",
    "TriplePattern",
    "Variable",
    "parse_query",
    "Bindings",
    "evaluate",
    "evaluate_ask",
    "evaluate_select",
]
