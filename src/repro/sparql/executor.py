"""Evaluator for the SPARQL subset over a :class:`TripleStore`.

Basic graph patterns are solved by backtracking joins: at each step the
remaining pattern with the most bound positions (after substituting current
bindings) is matched against the store, which keeps the intermediate result
small without a full query optimizer.  Filters are applied as soon as all
their variables are bound.
"""

from __future__ import annotations

from typing import Iterator

from repro.exceptions import SPARQLEvaluationError
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal, Term
from repro.sparql.ast import (
    BooleanExpr,
    Comparator,
    Comparison,
    FilterExpr,
    NotExpr,
    PatternTerm,
    Query,
    QueryForm,
    TriplePattern,
    Variable,
)

Bindings = dict[Variable, Term]


# --------------------------------------------------------------------- #
# Value comparison
# --------------------------------------------------------------------- #

def _numeric(value: Term) -> float | None:
    if isinstance(value, Literal):
        try:
            return float(value.lexical)
        except ValueError:
            return None
    return None


def _comparison_key(value: Term) -> tuple[int, float | str]:
    """Sort key: numbers before strings, numerically where possible."""
    number = _numeric(value)
    if number is not None:
        return (0, number)
    if isinstance(value, Literal):
        return (1, value.lexical)
    return (1, value.value)


def _values_equal(left: Term, right: Term) -> bool:
    if left == right:
        return True
    # Numeric literals compare by value ("1.0" = "1"), as in SPARQL.
    left_num, right_num = _numeric(left), _numeric(right)
    if left_num is not None and right_num is not None:
        return left_num == right_num
    # Plain vs typed string literals with the same lexical form.
    if isinstance(left, Literal) and isinstance(right, Literal):
        return left.lexical == right.lexical and (left.language == right.language)
    return False


def _compare(left: Term, op: Comparator, right: Term) -> bool:
    if op is Comparator.EQ:
        return _values_equal(left, right)
    if op is Comparator.NE:
        return not _values_equal(left, right)
    left_key, right_key = _comparison_key(left), _comparison_key(right)
    if left_key[0] != right_key[0]:
        raise SPARQLEvaluationError(
            f"cannot order-compare {left!r} and {right!r} (number vs string)"
        )
    if op is Comparator.LT:
        return left_key < right_key
    if op is Comparator.LE:
        return left_key <= right_key
    if op is Comparator.GT:
        return left_key > right_key
    return left_key >= right_key


# --------------------------------------------------------------------- #
# Filters
# --------------------------------------------------------------------- #

def _filter_variables(expr: FilterExpr) -> set[Variable]:
    if isinstance(expr, Comparison):
        return {
            side for side in (expr.left, expr.right) if isinstance(side, Variable)
        }
    if isinstance(expr, BooleanExpr):
        return _filter_variables(expr.left) | _filter_variables(expr.right)
    return _filter_variables(expr.operand)


def _resolve(side: PatternTerm, bindings: Bindings) -> Term:
    if isinstance(side, Variable):
        try:
            return bindings[side]
        except KeyError:
            raise SPARQLEvaluationError(f"unbound variable in FILTER: {side}") from None
    return side


def _evaluate_filter(expr: FilterExpr, bindings: Bindings) -> bool:
    if isinstance(expr, Comparison):
        return _compare(_resolve(expr.left, bindings), expr.op, _resolve(expr.right, bindings))
    if isinstance(expr, BooleanExpr):
        if expr.op == "&&":
            return _evaluate_filter(expr.left, bindings) and _evaluate_filter(
                expr.right, bindings
            )
        return _evaluate_filter(expr.left, bindings) or _evaluate_filter(expr.right, bindings)
    return not _evaluate_filter(expr.operand, bindings)


# --------------------------------------------------------------------- #
# Basic graph pattern matching
# --------------------------------------------------------------------- #

def _substitute(position: PatternTerm, bindings: Bindings) -> PatternTerm:
    if isinstance(position, Variable):
        return bindings.get(position, position)
    return position


def _pattern_selectivity(pattern: TriplePattern, bindings: Bindings) -> int:
    """Higher is better: number of bound positions after substitution."""
    score = 0
    for position in (pattern.subject, pattern.predicate, pattern.object):
        if not isinstance(_substitute(position, bindings), Variable):
            score += 1
    return score


def _match_path_pattern(
    store: TripleStore, pattern: TriplePattern, bindings: Bindings
) -> Iterator[Bindings]:
    """Match a pattern whose predicate is a property-path expression."""
    from repro.sparql.paths import evaluate_path

    subject = _substitute(pattern.subject, bindings)
    obj = _substitute(pattern.object, bindings)
    source = None if isinstance(subject, Variable) else store.dictionary.lookup_or_none(subject)
    target = None if isinstance(obj, Variable) else store.dictionary.lookup_or_none(obj)
    if (not isinstance(subject, Variable) and source is None) or (
        not isinstance(obj, Variable) and target is None
    ):
        return  # a bound endpoint that was never stored matches nothing
    decode = store.dictionary.decode
    for source_id, target_id in evaluate_path(store, pattern.predicate, source, target):
        new_bindings = dict(bindings)
        consistent = True
        for position, value_id in ((subject, source_id), (obj, target_id)):
            if isinstance(position, Variable):
                value = decode(value_id)
                bound = new_bindings.get(position)
                if bound is None:
                    new_bindings[position] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield new_bindings


def _match_pattern(
    store: TripleStore, pattern: TriplePattern, bindings: Bindings
) -> Iterator[Bindings]:
    if not isinstance(pattern.predicate, (Variable, IRI)):
        yield from _match_path_pattern(store, pattern, bindings)
        return
    subject = _substitute(pattern.subject, bindings)
    predicate = _substitute(pattern.predicate, bindings)
    obj = _substitute(pattern.object, bindings)

    subject_term = None if isinstance(subject, Variable) else subject
    predicate_term = None if isinstance(predicate, Variable) else predicate
    object_term = None if isinstance(obj, Variable) else obj

    for triple in store.triples(subject_term, predicate_term, object_term):
        new_bindings = dict(bindings)
        consistent = True
        for position, value in (
            (subject, triple.subject),
            (predicate, triple.predicate),
            (obj, triple.object),
        ):
            if isinstance(position, Variable):
                bound = new_bindings.get(position)
                if bound is None:
                    new_bindings[position] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield new_bindings


def _solve_bgp(
    store: TripleStore,
    patterns: list[TriplePattern],
    filters: list[FilterExpr],
    bindings: Bindings,
) -> Iterator[Bindings]:
    if not patterns:
        yield bindings
        return
    # Pick the most selective remaining pattern given current bindings.
    best_index = max(
        range(len(patterns)), key=lambda i: _pattern_selectivity(patterns[i], bindings)
    )
    pattern = patterns[best_index]
    remaining = patterns[:best_index] + patterns[best_index + 1 :]
    for extended in _match_pattern(store, pattern, bindings):
        if not _filters_pass_when_ready(filters, extended):
            continue
        yield from _solve_bgp(store, remaining, filters, extended)


def _filters_pass_when_ready(filters: list[FilterExpr], bindings: Bindings) -> bool:
    """Apply every filter whose variables are all bound; defer the rest."""
    for expr in filters:
        if _filter_variables(expr) <= set(bindings):
            if not _evaluate_filter(expr, bindings):
                return False
    return True


# --------------------------------------------------------------------- #
# Query forms
# --------------------------------------------------------------------- #

def _solve_query_body(store: TripleStore, query: Query) -> list[Bindings]:
    """Base BGP, then UNION joins, then OPTIONAL left-joins."""
    rows = list(_solve_bgp(store, list(query.patterns), list(query.filters), {}))
    for arms in query.unions:
        joined: list[Bindings] = []
        for row in rows:
            for arm in arms:
                joined.extend(
                    _solve_bgp(store, list(arm.patterns), list(arm.filters), row)
                )
        rows = joined
    for optional in query.optionals:
        extended: list[Bindings] = []
        for row in rows:
            matches = list(
                _solve_bgp(store, list(optional.patterns), list(optional.filters), row)
            )
            extended.extend(matches if matches else [row])
        rows = extended
    return rows


def evaluate_select(store: TripleStore, query: Query) -> list[Bindings]:
    """Evaluate a SELECT query, returning projected binding rows in order."""
    if query.form is not QueryForm.SELECT:
        raise SPARQLEvaluationError("evaluate_select requires a SELECT query")
    known = query.variables()
    for expr in query.filters:
        missing = _filter_variables(expr) - known
        if missing:
            names = ", ".join(sorted(str(v) for v in missing))
            raise SPARQLEvaluationError(f"FILTER uses variables not in any pattern: {names}")

    rows = _solve_query_body(store, query)

    if query.order_by:
        for condition in reversed(query.order_by):
            if condition.variable not in known:
                raise SPARQLEvaluationError(
                    f"ORDER BY variable not in any pattern: {condition.variable}"
                )
            # OPTIONAL may leave a variable unbound; unbound sorts first.
            rows.sort(
                key=lambda row: (
                    (0, "") if condition.variable not in row
                    else (1, _comparison_key(row[condition.variable]))
                ),
                reverse=condition.descending,
            )

    projection = query.projection
    if projection is not None:
        unknown = set(projection) - known
        if unknown:
            names = ", ".join(sorted(str(v) for v in unknown))
            raise SPARQLEvaluationError(f"projected variables not in any pattern: {names}")
        # Unbound variables (OPTIONAL) stay absent from the projected row.
        rows = [
            {var: row[var] for var in projection if var in row} for row in rows
        ]
    if query.count_variable is not None:
        if query.count_variable not in known:
            raise SPARQLEvaluationError(
                f"COUNT variable not in any pattern: {query.count_variable}"
            )
        # COUNT counts bound values; rows where OPTIONAL left the variable
        # unbound do not contribute.
        rows = [
            {query.count_variable: row[query.count_variable]}
            for row in rows
            if query.count_variable in row
        ]

    if query.distinct:
        seen: set[tuple] = set()
        deduped: list[Bindings] = []
        for row in rows:
            key = tuple(sorted((var.name, repr(value)) for var, value in row.items()))
            if key not in seen:
                seen.add(key)
                deduped.append(row)
        rows = deduped

    if query.offset:
        rows = rows[query.offset :]
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def evaluate_ask(store: TripleStore, query: Query) -> bool:
    """Evaluate an ASK query: does at least one solution exist?"""
    if query.form is not QueryForm.ASK:
        raise SPARQLEvaluationError("evaluate_ask requires an ASK query")
    return bool(_solve_query_body(store, query))


def evaluate(store: TripleStore, query: Query):
    """Evaluate any supported query form.

    Returns a bool for ASK, an int for ``SELECT COUNT(?v)``, and a list of
    binding rows for other SELECTs.
    """
    if query.form is QueryForm.ASK:
        return evaluate_ask(store, query)
    rows = evaluate_select(store, query)
    if query.count_variable is not None:
        # COUNT(?v) counts solution rows; SELECT DISTINCT COUNT(?v) counts
        # distinct values (rows are already deduplicated above in that case).
        return len(rows)
    return rows
