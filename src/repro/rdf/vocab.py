"""Well-known vocabulary IRIs used throughout the project.

The mini knowledge graphs use the same structural predicates as DBpedia:
``rdf:type`` for class membership (the paper's Definition 3 condition 2 and
its class-vertex test), ``rdfs:subClassOf`` for the class hierarchy, and
``rdfs:label`` for the surface forms the entity linker indexes.
"""

from __future__ import annotations

from repro.rdf.terms import IRI

RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDFS_NS = "http://www.w3.org/2000/01/rdf-schema#"
XSD_NS = "http://www.w3.org/2001/XMLSchema#"

RDF_TYPE = IRI(RDF_NS + "type")
RDFS_LABEL = IRI(RDFS_NS + "label")
RDFS_SUBCLASSOF = IRI(RDFS_NS + "subClassOf")

XSD_STRING = IRI(XSD_NS + "string")
XSD_INTEGER = IRI(XSD_NS + "integer")
XSD_DECIMAL = IRI(XSD_NS + "decimal")
XSD_DOUBLE = IRI(XSD_NS + "double")
XSD_BOOLEAN = IRI(XSD_NS + "boolean")
XSD_DATE = IRI(XSD_NS + "date")

#: Predicates that carry schema/bookkeeping information rather than domain
#: facts.  The paraphrase miner and the matcher skip these when enumerating
#: predicate paths (a path through rdfs:label never denotes a relation).
STRUCTURAL_PREDICATES = frozenset({RDF_TYPE, RDFS_LABEL, RDFS_SUBCLASSOF})
