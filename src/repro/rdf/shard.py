"""Hash-partitioned sharded backend: K frozen segments behind one store.

Everything above the storage layer assumes one in-memory index; the paper
targets DBpedia (60M triples) and the traversal systems it compares
against run at full-DBpedia scale.  :class:`ShardedBackend` closes that
gap without touching any consumer: it implements the same
:class:`~repro.rdf.backend.StoreBackend` protocol as the single-segment
backends, but physically holds K :class:`~repro.rdf.backend.
CompactBackend` segments, partitioned by **subject hash**.

Why subject hash:

* every subject's triples live in exactly one segment, so every pattern
  with a bound subject — the dominant shape in adjacency expansion,
  neighborhood pruning, and SPARQL evaluation — routes to **one**
  segment with zero merge cost;
* segments are disjoint by construction, so merged iteration never
  deduplicates triples: a k-way ``heapq.merge`` over the segments'
  already-sorted runs reproduces the exact global sort order a single
  :class:`CompactBackend` would yield;
* the partition is a pure function of the subject id
  (:func:`shard_of`), so an offline builder, a snapshot manifest, and a
  serving replica all agree on placement without any routing table.

Segments may be materialized eagerly (:meth:`ShardedBackend.from_triples`)
or loaded **lazily** through a caller-supplied loader
(:meth:`ShardedBackend.lazy` — how sharded snapshots mmap segment files
on first touch and keep untouched shards off the resident set).  Loaded
segments can be :meth:`evicted <ShardedBackend.evict>`; the next touch
reloads them.

The module also hosts the shard-parallel adjacency-kernel build
(:func:`sharded_kernel_rows`): each segment's partial rows are built
independently (optionally across a fork pool) and k-way merged per node
in ascending source-subject order, which reproduces the serial build's
rows **byte-for-byte** — the same contract the parallel paraphrase miner
keeps for its output.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import multiprocessing
import threading
from operator import itemgetter
from typing import AbstractSet, Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SnapshotError, StoreFrozenError
from repro.rdf.backend import CompactBackend, IdTriple

__all__ = [
    "PARTITION_SCHEME",
    "ShardedBackend",
    "shard_of",
    "partition_triples",
    "build_segments",
    "sharded_kernel_rows",
]

#: Signed-step kernel row, duplicated from :mod:`repro.rdf.kernel` to keep
#: the import direction kernel → shard (never the reverse).
_Row = tuple[tuple[int, ...], tuple[int, ...]]

#: Knuth's 32-bit multiplicative hash constant (2^32 / golden ratio).
_HASH_MULTIPLIER = 0x9E3779B1

#: Name of the partition function, recorded in snapshot manifests so a
#: loader can refuse a manifest written under a different placement.
PARTITION_SCHEME = "subject-mulfib32/1"

_EMPTY_SET: frozenset[int] = frozenset()
_EMPTY_MAP: dict[int, frozenset[int]] = {}

#: A segment loader returns the backend plus an optional keep-alive token
#: (the mmap an on-demand segment's columns borrow from).
SegmentLoader = Callable[[int], tuple[CompactBackend, object | None]]


def shard_of(subject_id: int, shards: int) -> int:
    """The segment index a subject's triples live in.

    A multiplicative hash rather than ``id % shards``: term ids are
    assigned densely in first-seen order, so a modulo would correlate the
    partition with dataset ordering and id stride (entities minted
    alongside their label literals get ids of stride 2 — half the
    segments would sit empty).  Multiplying by the golden-ratio constant
    mixes the id into the **high** 32 bits, and the fixed-point range map
    ``(hash * K) >> 32`` reads exactly those bits — low-bit structure in
    the input never reaches the segment choice.
    """
    hashed = (subject_id * _HASH_MULTIPLIER) & 0xFFFFFFFF
    return (hashed * shards) >> 32


def partition_triples(
    triples: Iterable[IdTriple], shards: int
) -> list[list[IdTriple]]:
    """Split id triples into ``shards`` lists by subject hash."""
    if shards < 1:
        raise ValueError("shards must be a positive segment count")
    partitions: list[list[IdTriple]] = [[] for _ in range(shards)]
    for triple in triples:
        partitions[shard_of(triple[0], shards)].append(triple)
    return partitions


# --------------------------------------------------------------------- #
# Shard-parallel segment construction
# --------------------------------------------------------------------- #

#: Worker state for the segment-build pool: (partitions, store version).
#: Set in the parent immediately before the pool is created — fork
#: workers inherit the partition lists copy-on-write, exactly the
#: pattern the paraphrase miner's phrase pool uses.
_BUILD_STATE: tuple[list[list[IdTriple]], int] | None = None


def _build_one_segment(index: int) -> CompactBackend:
    partitions, version = _BUILD_STATE  # type: ignore[misc]
    return CompactBackend.from_triples(partitions[index], version=version)


def _pool_factory(jobs: int) -> Callable[[], concurrent.futures.Executor]:
    """A fork process pool, degrading to threads where fork is unavailable."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return lambda: concurrent.futures.ThreadPoolExecutor(max_workers=jobs)
    return lambda: concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs, mp_context=context
    )


def build_segments(
    partitions: list[list[IdTriple]], version: int = 0, jobs: int = 1
) -> list[CompactBackend]:
    """One frozen :class:`CompactBackend` per partition.

    ``jobs > 1`` builds segments across a fork pool (0 auto-sizes to the
    CPU count).  Each segment build is an independent deterministic sort,
    so the result is identical at any job count.
    """
    global _BUILD_STATE
    if jobs == 0:
        import os

        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(partitions)))
    if jobs == 1:
        return [
            CompactBackend.from_triples(partition, version=version)
            for partition in partitions
        ]
    _BUILD_STATE = (partitions, version)
    try:
        with _pool_factory(jobs)() as pool:
            return list(pool.map(_build_one_segment, range(len(partitions))))
    finally:
        _BUILD_STATE = None


def _merge_distinct(iterators: Sequence[Iterator[int]]) -> Iterator[int]:
    """Ascending union of already-sorted distinct-id iterators."""
    previous: int | None = None
    for value in heapq.merge(*iterators):
        if value != previous:
            previous = value
            yield value


class ShardedBackend:
    """K hash-partitioned frozen segments behind the StoreBackend protocol.

    Reads with a bound subject route to ``shard_of(s)``'s single segment;
    unbound-subject reads k-way merge the segments' sorted runs, so every
    iterator yields in exactly the order a single
    :class:`~repro.rdf.backend.CompactBackend` over the same triples
    would.  Like :class:`CompactBackend`, the backend is frozen — mutation
    raises :class:`~repro.exceptions.StoreFrozenError`.

    Segments are either all materialized up front, or loaded on demand
    through a :data:`SegmentLoader` (see :meth:`lazy`): the total triple
    count and per-segment sizes are known without touching a segment, a
    subject-local workload only ever faults in the shards it reads, and
    :meth:`evict` returns a loaded segment to the unloaded state.  Lazy
    load and evict are serialized by a private lock; a loaded segment is
    published as a whole object, so lock-free readers never observe a
    partial segment.
    """

    __slots__ = (
        "_segments", "_segment_triples", "_loader", "_keepalive",
        "_shards", "_size", "_version", "_lock",
    )

    def __init__(
        self,
        segments: Iterable[CompactBackend],
        version: int = 0,
    ) -> None:
        loaded = list(segments)
        if not loaded:
            raise ValueError("a sharded backend needs at least one segment")
        self._segments: list[CompactBackend | None] = list(loaded)
        self._segment_triples = [len(segment) for segment in loaded]
        self._loader: SegmentLoader | None = None
        self._keepalive: list[object | None] = [None] * len(loaded)
        self._shards = len(loaded)
        self._size = sum(self._segment_triples)
        self._version = version
        self._lock = threading.Lock()

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[IdTriple],
        shards: int,
        version: int = 0,
        jobs: int = 1,
    ) -> "ShardedBackend":
        """Partition triples by subject hash and build every segment."""
        partitions = partition_triples(triples, shards)
        return cls(build_segments(partitions, version=version, jobs=jobs),
                   version=version)

    @classmethod
    def lazy(
        cls,
        shards: int,
        segment_triples: Sequence[int],
        loader: SegmentLoader,
        version: int = 0,
    ) -> "ShardedBackend":
        """A backend whose segments load on first touch via ``loader``.

        ``segment_triples`` (from the snapshot manifest) makes sizes and
        counts answerable without loading anything.
        """
        if shards < 1:
            raise ValueError("shards must be a positive segment count")
        if len(segment_triples) != shards:
            raise ValueError("segment_triples must list one count per shard")
        backend = cls.__new__(cls)
        backend._segments = [None] * shards
        backend._segment_triples = list(segment_triples)
        backend._loader = loader
        backend._keepalive = [None] * shards
        backend._shards = shards
        backend._size = sum(segment_triples)
        backend._version = version
        backend._lock = threading.Lock()
        return backend

    # ------------------------------------------------------------------ #
    # Segment lifecycle
    # ------------------------------------------------------------------ #

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def segment_triples(self) -> tuple[int, ...]:
        return tuple(self._segment_triples)

    def shard_of_subject(self, subject_id: int) -> int:
        return shard_of(subject_id, self._shards)

    def segment(self, index: int) -> CompactBackend:
        """The segment at ``index``, loading it on first touch."""
        segment = self._segments[index]
        if segment is not None:
            return segment
        if self._loader is None:
            raise SnapshotError(
                f"segment {index} was never materialized and no loader is set"
            )
        with self._lock:
            segment = self._segments[index]
            if segment is None:
                segment, keepalive = self._loader(index)
                if len(segment) != self._segment_triples[index]:
                    raise SnapshotError(
                        f"segment {index} holds {len(segment)} triples, "
                        f"manifest says {self._segment_triples[index]}"
                    )
                self._keepalive[index] = keepalive
                self._segments[index] = segment
        return segment

    def _all_segments(self) -> list[CompactBackend]:
        return [self.segment(index) for index in range(self._shards)]

    def loaded_segments(self) -> list[int]:
        """Indices of currently resident segments."""
        return [
            index for index, segment in enumerate(self._segments)
            if segment is not None
        ]

    def evict(self, index: int) -> bool:
        """Drop a loaded segment (and its mapping keep-alive).

        Only meaningful on a lazily-loading backend — an eagerly built one
        has nowhere to reload from, so eviction is refused.  The pages a
        dropped mmap segment occupied return to the kernel once the last
        borrowed column view is garbage-collected.
        """
        if self._loader is None:
            return False
        with self._lock:
            if self._segments[index] is None:
                return False
            self._segments[index] = None
            self._keepalive[index] = None
        return True

    # ------------------------------------------------------------------ #
    # StoreBackend protocol
    # ------------------------------------------------------------------ #

    @property
    def writable(self) -> bool:
        return False

    @property
    def version(self) -> int:
        return self._version

    def __len__(self) -> int:
        return self._size

    def add(self, s: int, p: int, o: int) -> bool:
        raise StoreFrozenError(
            "ShardedBackend is read-only; mutate a DictBackend store and "
            "re-shard (TripleStore.sharded) or recompile the snapshot"
        )

    def add_all_ids(self, triples: "Iterable[IdTriple]") -> int:
        raise StoreFrozenError(
            "ShardedBackend is read-only; mutate a DictBackend store and "
            "re-shard (TripleStore.sharded) or recompile the snapshot"
        )

    def remove(self, s: int, p: int, o: int) -> bool:
        raise StoreFrozenError(
            "ShardedBackend is read-only; mutate a DictBackend store and "
            "re-shard (TripleStore.sharded) or recompile the snapshot"
        )

    def contains(self, s: int, p: int, o: int) -> bool:
        return self.segment(self.shard_of_subject(s)).contains(s, p, o)

    def triples_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[IdTriple]:
        if s is not None:
            # Subject-bound patterns are single-segment by construction.
            return self.segment(self.shard_of_subject(s)).triples_ids(s, p, o)
        # Subjects are disjoint across segments, so these merges never
        # deduplicate and equal keys never straddle two segments.
        runs = [segment.triples_ids(s, p, o) for segment in self._all_segments()]
        if p is not None:
            if o is not None:
                # POS with o bound: runs ordered by subject.
                return heapq.merge(*runs, key=itemgetter(0))
            # Bare p: POS runs ordered by (object, subject).
            return heapq.merge(*runs, key=lambda triple: (triple[2], triple[0]))
        if o is not None:
            # OSP runs: ordered by (subject, predicate).
            return heapq.merge(*runs, key=lambda triple: (triple[0], triple[1]))
        return heapq.merge(*runs)  # full scan: natural SPO order

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        if s is not None:
            return self.segment(self.shard_of_subject(s)).count(s, p, o)
        if s is None and p is None and o is None:
            return self._size
        return sum(segment.count(s, p, o) for segment in self._all_segments())

    def objects_ids(self, s: int, p: int) -> AbstractSet[int]:
        return self.segment(self.shard_of_subject(s)).objects_ids(s, p)

    def subjects_ids(self, p: int, o: int) -> AbstractSet[int]:
        found = [
            subjects
            for segment in self._all_segments()
            if (subjects := segment.subjects_ids(p, o))
        ]
        if not found:
            return _EMPTY_SET
        if len(found) == 1:
            return found[0]
        return frozenset().union(*found)

    def out_index(self, s: int) -> Mapping[int, AbstractSet[int]]:
        return self.segment(self.shard_of_subject(s)).out_index(s)

    def in_index(self, o: int) -> Mapping[int, AbstractSet[int]]:
        found = [
            row
            for segment in self._all_segments()
            if (row := segment.in_index(o))
        ]
        if not found:
            return _EMPTY_MAP
        if len(found) == 1:
            return found[0]
        # Subject keys are disjoint across segments; re-sort so the merged
        # row iterates in ascending subject order like a single backend's.
        merged: dict[int, AbstractSet[int]] = {}
        for row in found:
            merged.update(row)
        return dict(sorted(merged.items()))

    def objects_of_predicate(self, p: int) -> Iterator[int]:
        # Objects are *not* disjoint across segments: merge and dedupe.
        return _merge_distinct(
            [segment.objects_of_predicate(p) for segment in self._all_segments()]
        )

    def iter_out_rows(self) -> Iterator[tuple[int, Mapping[int, AbstractSet[int]]]]:
        return heapq.merge(
            *(segment.iter_out_rows() for segment in self._all_segments()),
            key=itemgetter(0),
        )

    def subject_ids(self) -> Iterator[int]:
        # Disjoint by the partition function, but merging distinct is as
        # cheap and keeps the contract obvious.
        return _merge_distinct(
            [segment.subject_ids() for segment in self._all_segments()]
        )

    def predicate_ids(self) -> Iterator[int]:
        return _merge_distinct(
            [segment.predicate_ids() for segment in self._all_segments()]
        )

    def object_ids(self) -> Iterator[int]:
        return _merge_distinct(
            [segment.object_ids() for segment in self._all_segments()]
        )


# --------------------------------------------------------------------- #
# Shard-parallel adjacency-kernel build
# --------------------------------------------------------------------- #

def _partial_rows(
    out_rows: Iterator[tuple[int, Mapping[int, AbstractSet[int]]]],
    structural: frozenset[int],
) -> dict[int, tuple[list[int], list[int]]]:
    """One segment's kernel-row contributions.

    This is the serial :meth:`AdjacencyKernel._build` loop restricted to
    the segment's subjects: identical visit order (subjects ascending,
    predicates ascending, objects ascending), identical appends.  Every
    contribution a subject makes — its own forward steps and the backward
    steps it writes into its objects' rows — happens here, in the one
    segment that owns the subject.
    """
    full: dict[int, tuple[list[int], list[int]]] = {}
    for sid, predicate_row in out_rows:
        srow = full.get(sid)
        if srow is None:
            srow = full[sid] = ([], [])
        s_steps, s_nbrs = srow
        for pid in sorted(predicate_row):
            if pid in structural:
                continue
            fwd = pid + 1
            bwd = -fwd
            for oid in sorted(predicate_row[pid]):
                s_steps.append(fwd)
                s_nbrs.append(oid)
                orow = full.get(oid)
                if orow is None:
                    orow = full[oid] = ([], [])
                orow[0].append(bwd)
                orow[1].append(sid)
    return full


#: Worker state for the kernel-partial pool: (backend, structural ids).
_KERNEL_BUILD_STATE: tuple[ShardedBackend, frozenset[int]] | None = None


def _segment_kernel_partial(index: int) -> dict[int, tuple[list[int], list[int]]]:
    backend, structural = _KERNEL_BUILD_STATE  # type: ignore[misc]
    return _partial_rows(backend.segment(index).iter_out_rows(), structural)


def _entry_source(entry: tuple[int, int, int]) -> int:
    return entry[0]


def sharded_kernel_rows(
    backend: ShardedBackend,
    structural: frozenset[int],
    jobs: int = 1,
) -> dict[int, _Row]:
    """Kernel rows over a sharded backend, byte-identical to the serial build.

    Each segment contributes partial rows independently (``jobs > 1``
    fans segments over a fork pool).  The serial build appends into a
    node's row in ascending *source subject* order — the subject being
    visited when the entry is appended: the node itself for its forward
    steps, the far neighbor for backward steps.  Source subjects map to
    exactly one segment each, so a k-way merge of the per-segment
    contributions by source subject (stable within a segment) reproduces
    the serial append order exactly.
    """
    indices = range(backend.shards)
    if jobs == 0:
        import os

        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, backend.shards))
    if jobs == 1:
        partials = [
            _partial_rows(backend.segment(index).iter_out_rows(), structural)
            for index in indices
        ]
    else:
        global _KERNEL_BUILD_STATE
        _KERNEL_BUILD_STATE = (backend, structural)
        try:
            with _pool_factory(jobs)() as pool:
                partials = list(pool.map(_segment_kernel_partial, indices))
        finally:
            _KERNEL_BUILD_STATE = None

    nodes: set[int] = set()
    for partial in partials:
        nodes.update(partial)
    merged: dict[int, _Row] = {}
    for node in sorted(nodes):
        contributions = []
        for partial in partials:
            row = partial.get(node)
            if row and row[0]:
                steps, neighbors = row
                contributions.append([
                    ((neighbor if step < 0 else node), step, neighbor)
                    for step, neighbor in zip(steps, neighbors)
                ])
        if not contributions:
            continue  # the serial build drops empty rows too
        if len(contributions) == 1:
            entries = contributions[0]
        else:
            entries = list(heapq.merge(*contributions, key=_entry_source))
        merged[node] = (
            tuple(entry[1] for entry in entries),
            tuple(entry[2] for entry in entries),
        )
    return merged
