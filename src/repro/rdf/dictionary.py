"""Dictionary encoding of RDF terms to dense integer ids.

Every term (IRI or literal) that enters the store is assigned a stable,
dense, non-negative integer id.  All graph algorithms in this project
(path mining, subgraph matching, pruning) operate on ids; terms are only
materialised at the API boundary.  This mirrors how production RDF stores
(Virtuoso, gStore) keep their join machinery on fixed-width integers.
"""

from __future__ import annotations

from typing import Iterator

from repro.exceptions import TermNotFoundError
from repro.rdf.terms import Term


class TermDictionary:
    """Bidirectional mapping between RDF terms and dense integer ids.

    Ids are assigned in first-seen order starting at 0 and are never reused,
    so they are valid as indexes into side arrays for the lifetime of the
    dictionary.
    """

    def __init__(self) -> None:
        self._term_to_id: dict[Term, int] = {}
        self._id_to_term: list[Term] = []

    @classmethod
    def from_terms(cls, terms: "list[Term]") -> "TermDictionary":
        """Rebuild a dictionary from its id-ordered term list.

        ``terms[i]`` gets id ``i`` — the id-stable reload path of the
        compiled snapshot format, where every persisted side structure
        (kernel rows, closures, mined paths) indexes by these exact ids.
        """
        dictionary = cls()
        dictionary._id_to_term = list(terms)
        dictionary._term_to_id = {term: i for i, term in enumerate(terms)}
        return dictionary

    def terms_in_id_order(self) -> "list[Term]":
        """The term table, position == id (read-only; snapshot compiler)."""
        return self._id_to_term

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[Term]:
        return iter(self._id_to_term)

    def encode(self, term: Term) -> int:
        """Return the id for ``term``, assigning a fresh one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def lookup(self, term: Term) -> int:
        """Return the id for ``term``; raise if it was never encoded."""
        try:
            return self._term_to_id[term]
        except KeyError:
            raise TermNotFoundError(f"term not in dictionary: {term!r}") from None

    def lookup_or_none(self, term: Term) -> int | None:
        """Return the id for ``term`` or None if it was never encoded."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """Return the term with id ``term_id``; raise if out of range."""
        if 0 <= term_id < len(self._id_to_term):
            return self._id_to_term[term_id]
        raise TermNotFoundError(f"no term with id {term_id}")

    def decode_many(self, term_ids) -> list[Term]:
        """Decode a sequence of ids, preserving order."""
        return [self.decode(term_id) for term_id in term_ids]
