"""Overlay backend: a frozen base plus a small mutable delta.

Live ingest needs a store that accepts writes while serving reads from a
compiled artifact.  :class:`OverlayBackend` composes

* a **frozen base** — a :class:`~repro.rdf.backend.CompactBackend` or
  :class:`~repro.rdf.shard.ShardedBackend`, typically mmap-loaded from a
  snapshot; the overlay never mutates it;
* a **delta** of added triples, and
* a **tombstone set** of removed base triples,

and merges every read view of the :class:`~repro.rdf.backend.StoreBackend`
protocol — ``triples_ids`` in all pattern shapes, counts,
``out_index``/``in_index``, the vocabulary iterators, ``iter_out_rows`` —
so the composite is observably identical to a :class:`~repro.rdf.backend.
DictBackend` rebuilt from the merged triples, at any delta size.

Mutation semantics keep the two sides disjoint: adding a triple the base
already holds un-tombstoned is a no-op; adding a tombstoned triple clears
the tombstone instead of entering the delta; removing a delta triple
drops it from the delta; removing a base triple records a tombstone.
Every successful mutation bumps the monotone ``version`` counter by one
(also in :meth:`add_all_ids` — per-triple monotonicity is what lets the
serve layer's version-keyed answer/link caches invalidate for free).

Concurrency: writers serialize on ``_write_lock``; readers are lock-free.
Both delta indexes publish **copy-on-write rows** — the per-key inner
dicts and their frozenset leaves are never mutated after being assigned
into the outer dict, so a reader holding a row sees one consistent
generation of it.  Full-scan reads snapshot outer key sets before
iterating.  A read that races a write may observe the store just before
or just after that write (either is a linearizable outcome); it never
observes a torn row.

The overlay also records, per node, the version that last touched it
(:meth:`touched_since`), which is what lets
:class:`~repro.rdf.kernel.AdjacencyKernel` patch only the adjacency rows
a delta actually dirtied.  Background re-compaction of base+delta into a
fresh frozen store lives at the serve layer (``QAEngine.compact``); after
the swap a new overlay starts empty over the new base at the same
version, so derived caches stay valid.
"""

from __future__ import annotations

import threading
from typing import AbstractSet, Callable, Iterable, Iterator, Mapping

from repro.contracts import guarded_by
from repro.rdf.backend import IdTriple, StoreBackend

_EMPTY_SET: frozenset[int] = frozenset()

#: outer key → {inner key → frozenset(values)} — one permutation of a delta.
_DeltaPerm = dict[int, dict[int, frozenset[int]]]


class _DeltaIndex:
    """Three permutation indexes with copy-on-write rows.

    The mutable counterpart of a ``DictBackend`` sized for small deltas,
    with one structural difference: mutation never edits a published row
    in place — it builds a replacement dict/frozenset and assigns it into
    the outer index, so lock-free readers always see a complete row.
    All mutation happens under the owning overlay's write lock.
    """

    __slots__ = ("_spo", "_pos", "_osp", "size")

    def __init__(self) -> None:
        self._spo: _DeltaPerm = {}
        self._pos: _DeltaPerm = {}
        self._osp: _DeltaPerm = {}
        self.size = 0

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------ #
    # Mutation (write-lock holders only)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _cow_insert(perm: _DeltaPerm, outer: int, inner: int, value: int) -> None:
        row = perm.get(outer)
        new_row = dict(row) if row else {}
        new_row[inner] = (new_row.get(inner) or _EMPTY_SET) | {value}
        perm[outer] = new_row

    @staticmethod
    def _cow_discard(perm: _DeltaPerm, outer: int, inner: int, value: int) -> None:
        row = perm.get(outer)
        if row is None:
            return
        values = row.get(inner)
        if values is None or value not in values:
            return
        new_row = dict(row)
        remaining = values - {value}
        if remaining:
            new_row[inner] = remaining
        else:
            del new_row[inner]
        if new_row:
            perm[outer] = new_row
        else:
            del perm[outer]

    def insert(self, s: int, p: int, o: int) -> None:
        self._cow_insert(self._spo, s, p, o)
        self._cow_insert(self._pos, p, o, s)
        self._cow_insert(self._osp, o, s, p)
        self.size += 1

    def discard(self, s: int, p: int, o: int) -> None:
        self._cow_discard(self._spo, s, p, o)
        self._cow_discard(self._pos, p, o, s)
        self._cow_discard(self._osp, o, s, p)
        self.size -= 1

    # ------------------------------------------------------------------ #
    # Reads (lock-free)
    # ------------------------------------------------------------------ #

    def contains(self, s: int, p: int, o: int) -> bool:
        row = self._spo.get(s)
        return row is not None and o in (row.get(p) or _EMPTY_SET)

    def pair_spo(self, s: int, p: int) -> frozenset[int]:
        row = self._spo.get(s)
        return (row.get(p) or _EMPTY_SET) if row is not None else _EMPTY_SET

    def pair_pos(self, p: int, o: int) -> frozenset[int]:
        row = self._pos.get(p)
        return (row.get(o) or _EMPTY_SET) if row is not None else _EMPTY_SET

    def pair_osp(self, o: int, s: int) -> frozenset[int]:
        row = self._osp.get(o)
        return (row.get(s) or _EMPTY_SET) if row is not None else _EMPTY_SET

    def out_row(self, s: int) -> dict[int, frozenset[int]] | None:
        return self._spo.get(s)

    def pos_row(self, p: int) -> dict[int, frozenset[int]] | None:
        return self._pos.get(p)

    def in_row(self, o: int) -> dict[int, frozenset[int]] | None:
        return self._osp.get(o)

    def spo_keys(self) -> set[int]:
        return set(self._spo)

    def pos_keys(self) -> set[int]:
        return set(self._pos)

    def osp_keys(self) -> set[int]:
        return set(self._osp)

    def triples(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[IdTriple]:
        """Matching delta triples, same index dispatch as ``DictBackend``."""
        if not self.size:
            return
        if s is not None:
            if p is not None:
                objects = self.pair_spo(s, p)
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                else:
                    for oid in objects:
                        yield (s, p, oid)
            elif o is not None:
                for pid in self.pair_osp(o, s):
                    yield (s, pid, o)
            else:
                row = self._spo.get(s)
                if row:
                    for pid, objects in row.items():
                        for oid in objects:
                            yield (s, pid, oid)
        elif p is not None:
            if o is not None:
                for sid in self.pair_pos(p, o):
                    yield (sid, p, o)
            else:
                row = self._pos.get(p)
                if row:
                    for oid, subjects in row.items():
                        for sid in subjects:
                            yield (sid, p, oid)
        elif o is not None:
            row = self._osp.get(o)
            if row:
                for sid, preds in row.items():
                    for pid in preds:
                        yield (sid, pid, o)
        else:
            for sid in list(self._spo):
                row = self._spo.get(sid)
                if row:
                    for pid, objects in row.items():
                        for oid in objects:
                            yield (sid, pid, oid)

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        if not self.size:
            return 0
        if s is None and p is None and o is None:
            return self.size
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        if s is not None and p is not None:
            return len(self.pair_spo(s, p))
        if p is not None and o is not None:
            return len(self.pair_pos(p, o))
        if s is not None and o is not None:
            return len(self.pair_osp(o, s))
        if s is not None:
            row = self._spo.get(s)
        elif p is not None:
            row = self._pos.get(p)
        else:
            assert o is not None
            row = self._osp.get(o)
        if not row:
            return 0
        return sum(len(values) for values in row.values())


@guarded_by("_write_lock", "_touched")
class OverlayBackend:
    """A writable merged view over a frozen base backend.

    The captured ``base`` must be frozen (``writable`` False) and must
    never be mutated for the overlay's lifetime — the ``frozen-store``
    lint rule enforces the static side of that contract.  See the module
    docstring for merge and concurrency semantics.
    """

    __slots__ = ("_base", "_adds", "_tombs", "_version", "_touched", "_write_lock")

    def __init__(self, base: StoreBackend):
        if base.writable:
            raise ValueError(
                "OverlayBackend requires a frozen base (CompactBackend or "
                "ShardedBackend); compact the store first"
            )
        self._base = base
        self._adds = _DeltaIndex()
        self._tombs = _DeltaIndex()
        self._version = base.version
        self._touched: dict[int, int] = {}
        self._write_lock = threading.Lock()

    def reset_after_fork(self) -> None:
        """Replace the write lock after ``os.fork`` (see fork-safety rule)."""
        self._write_lock = threading.Lock()

    @property
    def base(self) -> StoreBackend:
        """The frozen base this overlay reads through (never mutate it)."""
        return self._base

    @property
    def writable(self) -> bool:
        return True

    @property
    def version(self) -> int:
        return self._version

    def __len__(self) -> int:
        return len(self._base) - self._tombs.size + self._adds.size

    def delta_statistics(self) -> dict[str, int]:
        """Sizes of the overlay's moving parts (serve-layer stats)."""
        return {
            "base_triples": len(self._base),
            "delta_adds": self._adds.size,
            "tombstones": self._tombs.size,
        }

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _apply_add(self, s: int, p: int, o: int) -> bool:
        if self._tombs.contains(s, p, o):
            self._tombs.discard(s, p, o)
            return True
        if self._adds.contains(s, p, o) or self._base.contains(s, p, o):
            return False
        self._adds.insert(s, p, o)
        return True

    def _apply_remove(self, s: int, p: int, o: int) -> bool:
        if self._adds.contains(s, p, o):
            self._adds.discard(s, p, o)
            return True
        if self._base.contains(s, p, o) and not self._tombs.contains(s, p, o):
            self._tombs.insert(s, p, o)
            return True
        return False

    def add(self, s: int, p: int, o: int) -> bool:
        with self._write_lock:
            if not self._apply_add(s, p, o):
                return False
            self._version += 1
            self._touched[s] = self._touched[o] = self._version
            return True

    def add_all_ids(self, triples: Iterable[IdTriple]) -> int:
        """Bulk insert under one lock acquisition.

        The version counter still advances once per *new* triple — batch
        ingestion must not collapse distinct store states into one
        version, or a cache keyed mid-batch could alias the final state.
        """
        added = 0
        with self._write_lock:
            for s, p, o in triples:
                if self._apply_add(s, p, o):
                    self._version += 1
                    self._touched[s] = self._touched[o] = self._version
                    added += 1
        return added

    def remove(self, s: int, p: int, o: int) -> bool:
        with self._write_lock:
            if not self._apply_remove(s, p, o):
                return False
            self._version += 1
            self._touched[s] = self._touched[o] = self._version
            return True

    def touched_since(self, version: int) -> set[int]:
        """Nodes (subjects/objects) touched by mutations after ``version``.

        The incremental kernel patch rebuilds exactly these rows; callers
        must quiesce writers (the engine's ingest path serializes) so the
        rebuilt rows and the reported version describe one store state.
        """
        with self._write_lock:
            return {
                node
                for node, touched in self._touched.items()
                if touched > version
            }

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def contains(self, s: int, p: int, o: int) -> bool:
        if self._adds.contains(s, p, o):
            return True
        return self._base.contains(s, p, o) and not self._tombs.contains(s, p, o)

    def triples_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[IdTriple]:
        tombs = self._tombs
        if tombs.size:
            contains = tombs.contains
            for triple in self._base.triples_ids(s, p, o):
                if not contains(*triple):
                    yield triple
        else:
            yield from self._base.triples_ids(s, p, o)
        yield from self._adds.triples(s, p, o)

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        return (
            self._base.count(s, p, o)
            - self._tombs.count(s, p, o)
            + self._adds.count(s, p, o)
        )

    def objects_ids(self, s: int, p: int) -> AbstractSet[int]:
        added = self._adds.pair_spo(s, p)
        dead = self._tombs.pair_spo(s, p)
        base = self._base.objects_ids(s, p)
        if not added and not dead:
            return base
        merged = frozenset(base)
        if dead:
            merged = merged - dead
        if added:
            merged = merged | added
        return merged

    def subjects_ids(self, p: int, o: int) -> AbstractSet[int]:
        added = self._adds.pair_pos(p, o)
        dead = self._tombs.pair_pos(p, o)
        base = self._base.subjects_ids(p, o)
        if not added and not dead:
            return base
        merged = frozenset(base)
        if dead:
            merged = merged - dead
        if added:
            merged = merged | added
        return merged

    @staticmethod
    def _merge_row(
        base_row: Mapping[int, AbstractSet[int]],
        added: dict[int, frozenset[int]] | None,
        dead: dict[int, frozenset[int]] | None,
    ) -> dict[int, AbstractSet[int]]:
        keys = set(base_row)
        if added:
            keys.update(added)
        merged: dict[int, AbstractSet[int]] = {}
        for key in keys:
            values: AbstractSet[int] = base_row.get(key, _EMPTY_SET)
            if dead:
                dead_values = dead.get(key)
                if dead_values:
                    values = frozenset(values) - dead_values
            if added:
                added_values = added.get(key)
                if added_values:
                    values = frozenset(values) | added_values
            if values:
                merged[key] = values
        return merged

    def out_index(self, s: int) -> Mapping[int, AbstractSet[int]]:
        added = self._adds.out_row(s)
        dead = self._tombs.out_row(s)
        base_row = self._base.out_index(s)
        if added is None and dead is None:
            return base_row
        return self._merge_row(base_row, added, dead)

    def in_index(self, o: int) -> Mapping[int, AbstractSet[int]]:
        added = self._adds.in_row(o)
        dead = self._tombs.in_row(o)
        base_row = self._base.in_index(o)
        if added is None and dead is None:
            return base_row
        return self._merge_row(base_row, added, dead)

    def objects_of_predicate(self, p: int) -> Iterator[int]:
        added_row = self._adds.pos_row(p) or {}
        dead_row = self._tombs.pos_row(p)
        remaining = set(added_row)
        for oid in self._base.objects_of_predicate(p):
            remaining.discard(oid)
            if dead_row:
                dead = dead_row.get(oid)
                if dead:
                    live = self._base.count(None, p, oid) - len(dead)
                    if live <= 0 and not added_row.get(oid):
                        continue
            yield oid
        yield from sorted(remaining)

    def iter_out_rows(self) -> Iterator[tuple[int, Mapping[int, AbstractSet[int]]]]:
        touched = self._adds.spo_keys() | self._tombs.spo_keys()
        remaining = self._adds.spo_keys()
        for sid, row in self._base.iter_out_rows():
            if sid in touched:
                remaining.discard(sid)
                merged = self.out_index(sid)
                if merged:
                    yield sid, merged
            else:
                yield sid, row
        for sid in sorted(remaining):
            merged = self.out_index(sid)
            if merged:
                yield sid, merged

    # ------------------------------------------------------------------ #
    # Vocabulary
    # ------------------------------------------------------------------ #

    def _live_outer(
        self,
        base_ids: Iterator[int],
        added_keys: set[int],
        tomb_row_of: Callable[[int], dict[int, frozenset[int]] | None],
        position: str,
    ) -> Iterator[int]:
        """Base vocabulary ids that still have live triples, then add-only ids.

        A base id disappears only when tombstones cover *every* base
        triple in its row, which the merged count settles exactly.
        """
        remaining = added_keys
        for term_id in base_ids:
            remaining.discard(term_id)
            if tomb_row_of(term_id) is not None:
                if position == "s":
                    live = self.count(s=term_id)
                elif position == "p":
                    live = self.count(p=term_id)
                else:
                    live = self.count(o=term_id)
                if live == 0:
                    continue
            yield term_id
        yield from sorted(remaining)

    def subject_ids(self) -> Iterator[int]:
        return self._live_outer(
            self._base.subject_ids(), self._adds.spo_keys(),
            self._tombs.out_row, "s",
        )

    def predicate_ids(self) -> Iterator[int]:
        return self._live_outer(
            self._base.predicate_ids(), self._adds.pos_keys(),
            self._tombs.pos_row, "p",
        )

    def object_ids(self) -> Iterator[int]:
        return self._live_outer(
            self._base.object_ids(), self._adds.osp_keys(),
            self._tombs.in_row, "o",
        )
