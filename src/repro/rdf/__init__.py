"""RDF substrate: terms, dictionary encoding, triple store, graph view, I/O.

This package is a from-scratch, laptop-scale RDF store.  It plays the role
DBpedia's backing store plays in the paper: everything above it (entity
linking, paraphrase mining, subgraph matching) talks to the knowledge base
only through these APIs.

Quick tour::

    from repro.rdf import IRI, Literal, Triple, TripleStore

    store = TripleStore()
    store.add(Triple(IRI("ex:Antonio_Banderas"), IRI("ex:starring"),
                     IRI("ex:Philadelphia_(film)")))
    list(store.triples(predicate=IRI("ex:starring")))
"""

from repro.rdf.terms import IRI, Literal, Term, Triple
from repro.rdf.vocab import (
    RDF_TYPE,
    RDFS_LABEL,
    RDFS_SUBCLASSOF,
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DECIMAL,
    XSD_INTEGER,
    XSD_STRING,
)
from repro.rdf.backend import CompactBackend, DictBackend, StoreBackend
from repro.rdf.dictionary import TermDictionary
from repro.rdf.overlay import OverlayBackend
from repro.rdf.shard import ShardedBackend
from repro.rdf.store import TripleStore
from repro.rdf.graph import Direction, Edge, KnowledgeGraph
from repro.rdf.ntriples import (
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
    serialize_term,
)

__all__ = [
    "IRI",
    "Literal",
    "Term",
    "Triple",
    "RDF_TYPE",
    "RDFS_LABEL",
    "RDFS_SUBCLASSOF",
    "XSD_BOOLEAN",
    "XSD_DATE",
    "XSD_DECIMAL",
    "XSD_INTEGER",
    "XSD_STRING",
    "TermDictionary",
    "TripleStore",
    "StoreBackend",
    "DictBackend",
    "CompactBackend",
    "OverlayBackend",
    "ShardedBackend",
    "Direction",
    "Edge",
    "KnowledgeGraph",
    "parse_ntriples",
    "parse_ntriples_line",
    "serialize_ntriples",
    "serialize_term",
]
