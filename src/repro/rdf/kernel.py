"""Compact adjacency kernel: the hot-path substrate of graph traversal.

Both hot loops of the system — the offline bidirectional BFS that
enumerates simple predicate paths (Section 3, Algorithm 1) and the online
subgraph matching with TA-style top-k (Section 4.2) — spend their time in
node expansion and path walking.  Doing that over the triple store's
nested dict-of-dict-of-set indexes costs a dict seek, a set iteration, and
an ``Edge`` allocation per step.  The kernel precomputes, once per store
version, a flat per-node adjacency index:

* each node maps to two parallel tuples ``(steps, neighbors)`` where
  ``steps[i]`` is the *signed step* over edge ``i`` (``pid + 1`` following
  the predicate direction, ``-(pid + 1)`` against it — the same encoding
  the mined predicate paths use) and ``neighbors[i]`` is the far endpoint;
* structural predicates (``rdf:type``, ``rdfs:subClassOf``,
  ``rdfs:label``) are filtered out at build time;
* two variants are kept: the **full** index (literal endpoints included —
  what neighborhood pruning checks) and the **entity** index (literal
  endpoints excluded — what the offline path BFS walks).

On top of the index the kernel memoizes the per-node incident-step
signature (Section 4.2.2's pruning test is one frozenset intersection),
LRU-caches :meth:`walk_path`, caches the structural vocabulary ids, and
offers named scratch-cache regions that higher layers (path mining) use
for store-version-scoped memoization.

The kernel is immutable: it never observes store mutation.
:meth:`repro.rdf.graph.KnowledgeGraph.refresh` drops it (and every cache
hanging off it) so the next access rebuilds against the current triples.
``store_version`` stamps the :class:`TripleStore` mutation counter the
kernel was built from, so derived artifacts (the serving layer's answer
cache) can key themselves to one store generation.

Thread safety: the index itself is immutable after construction and safe
to read from any number of threads.  The memoization layers are safe too —
``walk_path`` is an ``functools.lru_cache`` (internally locked),
``incident_steps``/``entity_adjacency`` publish fully-built immutable
values into a dict (the worst interleaving recomputes a value, never
exposes a partial one), and the named scratch regions guard their
create/clear bookkeeping with a lock.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import Iterator

from repro.contracts import guarded_by
from repro.rdf import vocab
from repro.rdf.shard import ShardedBackend, sharded_kernel_rows
from repro.rdf.store import TripleStore

Path = tuple[int, ...]

#: Pair of parallel tuples: signed steps and the matching far endpoints.
AdjacencyRow = tuple[tuple[int, ...], tuple[int, ...]]

_EMPTY_ROW: AdjacencyRow = ((), ())

#: Bound on the memoized walk_path results (distinct (start, path) keys).
_WALK_CACHE_SIZE = 1 << 16

#: A scratch-cache region is cleared wholesale once it exceeds this many
#: entries — a coarse but allocation-free stand-in for LRU eviction.
_REGION_CAP = 1 << 15


# --------------------------------------------------------------------- #
# Signed path-step encoding (the kernel's wire format)
# --------------------------------------------------------------------- #

def forward_step(predicate_id: int) -> int:
    """Encode a step that traverses ``predicate_id`` subject→object."""
    return predicate_id + 1


def backward_step(predicate_id: int) -> int:
    """Encode a step that traverses ``predicate_id`` object→subject."""
    return -(predicate_id + 1)


def step_predicate(step: int) -> int:
    """The predicate id of a signed step."""
    return abs(step) - 1


def step_is_forward(step: int) -> bool:
    return step > 0


def reverse_path(path: Path) -> Path:
    """The same predicate path walked from the far endpoint back."""
    return tuple(-step for step in reversed(path))


@guarded_by("_region_lock", "_regions")
class AdjacencyKernel:
    """Immutable flat adjacency index over one version of a triple store."""

    __slots__ = (
        "store",
        "store_version",
        "structural_predicate_ids",
        "type_id",
        "subclass_id",
        "label_id",
        "_full",
        "_entity",
        "_signatures",
        "_regions",
        "_region_lock",
        "walk_path",
    )

    def __init__(
        self,
        store: TripleStore,
        prebuilt_rows: dict[int, AdjacencyRow] | None = None,
        build_jobs: int = 1,
        patch_from: "AdjacencyKernel | None" = None,
    ):
        self.store = store
        self.store_version = store.version
        lookup = store.dictionary.lookup_or_none
        self.type_id: int | None = lookup(vocab.RDF_TYPE)
        self.subclass_id: int | None = lookup(vocab.RDFS_SUBCLASSOF)
        self.label_id: int | None = lookup(vocab.RDFS_LABEL)
        self.structural_predicate_ids: frozenset[int] = frozenset(
            pid
            for pid in (lookup(pred) for pred in vocab.STRUCTURAL_PREDICATES)
            if pid is not None
        )
        self._full: dict[int, AdjacencyRow] = {}
        self._entity: dict[int, AdjacencyRow] = {}
        if prebuilt_rows is not None:
            # Compiled-snapshot fast path: the rows were persisted from a
            # kernel built against the very same (id-stable) store, so
            # adopting them verbatim reproduces that kernel exactly.
            self._full = prebuilt_rows
        elif patch_from is not None and self._can_patch(patch_from):
            # Incremental path: only rows touched since the old kernel's
            # store version are rebuilt; every other row is the old
            # kernel's tuple, reused by reference.
            self._patch(patch_from)
        elif isinstance(store.backend, ShardedBackend):
            # Shard-parallel build: per-segment partial rows merged per
            # node in source-subject order — byte-identical to _build()
            # over the same triples, at any job count.
            self._full = sharded_kernel_rows(
                store.backend, self.structural_predicate_ids, jobs=build_jobs
            )
        else:
            self._build()
        self._signatures: dict[int, frozenset[int]] = {}
        self._regions: dict[str, dict] = {}
        self._region_lock = threading.Lock()
        self.walk_path = lru_cache(maxsize=_WALK_CACHE_SIZE)(self._walk_path)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build(self) -> None:
        # The (subject, predicate, object) visit order is canonicalized by
        # sorting at every level, so rows come out identical whichever
        # backend (dict insertion order vs. sorted compact columns) the
        # store sits on — the backend-equivalence and snapshot contracts
        # both rely on byte-identical rows.
        structural = self.structural_predicate_ids
        full: dict[int, tuple[list[int], list[int]]] = {}
        for sid, predicate_row in sorted(self.store.iter_out_rows()):
            srow = full.get(sid)
            if srow is None:
                srow = full[sid] = ([], [])
            s_steps, s_nbrs = srow
            for pid in sorted(predicate_row):
                if pid in structural:
                    continue
                fwd = pid + 1
                bwd = -fwd
                for oid in sorted(predicate_row[pid]):
                    s_steps.append(fwd)
                    s_nbrs.append(oid)
                    orow = full.get(oid)
                    if orow is None:
                        orow = full[oid] = ([], [])
                    orow[0].append(bwd)
                    orow[1].append(sid)
        self._full = {
            node: (tuple(steps), tuple(nbrs))
            for node, (steps, nbrs) in full.items()
            if steps
        }

    def full_rows(self) -> dict[int, AdjacencyRow]:
        """The complete per-node row index (read-only; snapshot compiler)."""
        return self._full

    # ------------------------------------------------------------------ #
    # Incremental patching
    # ------------------------------------------------------------------ #

    def _can_patch(self, old: "AdjacencyKernel") -> bool:
        """Whether ``old``'s rows can be carried forward and patched.

        The backend must report which nodes mutations touched
        (:meth:`~repro.rdf.overlay.OverlayBackend.touched_since`), the
        old kernel must not be newer than the store, and the structural
        vocabulary must be unchanged — a first ``rdf:type``/``rdfs:label``
        triple changes which predicates *every* row filters, so patching
        would be unsound and the cold build takes over.
        """
        backend = self.store.backend
        return (
            hasattr(backend, "touched_since")
            and old.store_version <= self.store_version
            and old.structural_predicate_ids == self.structural_predicate_ids
        )

    def _patch(self, old: "AdjacencyKernel") -> None:
        """Adopt ``old``'s rows, rebuilding only the dirtied ones.

        Byte-identical to a cold :meth:`_build` over the current store:
        the per-row rebuild replays the exact canonical visit order (all
        source subjects ascending, predicates ascending, objects
        ascending) restricted to one target node.  Callers must quiesce
        writers for the duration (the engine's ingest lock does).
        """
        dirty = self.store.backend.touched_since(old.store_version)  # type: ignore[attr-defined]
        rows = dict(old.full_rows())
        for node in dirty:
            row = self._rebuild_row(node)
            if row[0]:
                rows[node] = row
            else:
                rows.pop(node, None)
        self._full = rows

    def _rebuild_row(self, node: int) -> AdjacencyRow:
        """One node's row, in the canonical order :meth:`_build` produces.

        A node's row accumulates entries as the full build visits source
        subjects in ascending order: visiting subject ``s`` appends, per
        sorted predicate and sorted object, a forward step to ``s``'s own
        row and a backward step to each object's row (so a self-loop
        contributes its forward then its backward entry adjacently).
        """
        structural = self.structural_predicate_ids
        store = self.store
        out_row = store.out_index(node)
        in_row = store.in_index(node)
        sources = set(in_row)
        if any(pid not in structural for pid in out_row):
            sources.add(node)
        steps: list[int] = []
        nbrs: list[int] = []
        for sid in sorted(sources):
            if sid == node:
                for pid in sorted(out_row):
                    if pid in structural:
                        continue
                    fwd = pid + 1
                    for oid in sorted(out_row[pid]):
                        steps.append(fwd)
                        nbrs.append(oid)
                        if oid == node:
                            steps.append(-fwd)
                            nbrs.append(node)
            else:
                for pid in sorted(in_row[sid]):
                    if pid in structural:
                        continue
                    steps.append(-(pid + 1))
                    nbrs.append(sid)
        return (tuple(steps), tuple(nbrs))

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #

    def adjacency(self, node_id: int) -> AdjacencyRow:
        """``(steps, neighbors)`` with literal endpoints, structural-free."""
        return self._full.get(node_id, _EMPTY_ROW)

    def entity_adjacency(self, node_id: int) -> AdjacencyRow:
        """``(steps, neighbors)`` without literal endpoints or structural
        predicates — the rows the offline path BFS expands.

        Derived lazily from the full row, once per node: most nodes have
        no literal-valued edges and share the full row's tuples outright,
        and nodes the BFS never reaches cost nothing at build time.
        """
        row = self._entity.get(node_id)
        if row is None:
            steps, neighbors = self._full.get(node_id, _EMPTY_ROW)
            if steps:
                is_literal = self.store.is_literal_id
                keep = [
                    index
                    for index, neighbor in enumerate(neighbors)
                    if not is_literal(neighbor)
                ]
                if len(keep) == len(steps):
                    row = (steps, neighbors)
                else:
                    row = (
                        tuple(steps[index] for index in keep),
                        tuple(neighbors[index] for index in keep),
                    )
            else:
                row = _EMPTY_ROW
            self._entity[node_id] = row
        return row

    def neighbors(self, node_id: int) -> Iterator[tuple[int, int]]:
        """(signed step, neighbor) pairs, literals included."""
        return zip(*self._full.get(node_id, _EMPTY_ROW))

    def entity_neighbors(self, node_id: int) -> Iterator[tuple[int, int]]:
        """(signed step, neighbor) pairs, literals excluded."""
        return zip(*self.entity_adjacency(node_id))

    def degree(self, node_id: int) -> int:
        """Incident non-structural edges (either orientation)."""
        return len(self._full.get(node_id, _EMPTY_ROW)[0])

    def incident_steps(self, node_id: int) -> frozenset[int]:
        """Memoized signature: the distinct signed steps incident to a node.

        This is the set the neighborhood-based pruning of Section 4.2.2
        intersects with an edge's admissible first steps; literal-valued
        edges are included, exactly as a Q^S edge can end on a literal.
        """
        signature = self._signatures.get(node_id)
        if signature is None:
            signature = frozenset(self._full.get(node_id, _EMPTY_ROW)[0])
            self._signatures[node_id] = signature
        return signature

    # ------------------------------------------------------------------ #
    # Path walking
    # ------------------------------------------------------------------ #

    def _walk_path(self, start_id: int, path: Path) -> frozenset[int]:
        """All nodes reachable from ``start_id`` by following a signed path.

        Wrapped by an LRU cache as ``self.walk_path`` — match-time checks
        walk the same (seed, mined-path) pairs over and over.  Returns a
        frozenset: cached values are shared, never mutated by callers.
        """
        store = self.store
        if len(path) == 1:
            step = path[0]
            if step > 0:
                return frozenset(store.objects_ids(start_id, step - 1))
            return frozenset(store.subjects_ids(-step - 1, start_id))
        frontier: tuple[int, ...] | set[int] = (start_id,)
        for step in path:
            next_frontier: set[int] = set()
            if step > 0:
                pid = step - 1
                for node in frontier:
                    next_frontier |= store.objects_ids(node, pid)
            else:
                pid = -step - 1
                for node in frontier:
                    next_frontier |= store.subjects_ids(pid, node)
            if not next_frontier:
                return frozenset()
            frontier = next_frontier
        return frozenset(frontier)

    # ------------------------------------------------------------------ #
    # Scratch caches
    # ------------------------------------------------------------------ #

    def cache_region(self, name: str) -> dict:
        """A named memoization dict scoped to this kernel's lifetime.

        Dropped with the kernel on :meth:`KnowledgeGraph.refresh`, so a
        cached value can never outlive the store version it was computed
        from.  Regions self-clear past ``_REGION_CAP`` entries to bound
        memory on large mining runs; creation and the clear decision are
        lock-guarded so concurrent callers never clear a region another
        thread is mid-way through populating for the same lookup.
        """
        with self._region_lock:
            region = self._regions.get(name)
            if region is None:
                region = self._regions[name] = {}
            elif len(region) > _REGION_CAP:
                region.clear()
        return region

    def statistics(self) -> dict[str, int]:
        """Index size counters (exported by the perf baseline).

        Materializes every entity row (they are built lazily), so this is
        a cold-path call for reporting, not a hot-loop one.
        """
        entity_rows = [self.entity_adjacency(node) for node in self._full]
        return {
            "nodes_full": len(self._full),
            "nodes_entity": sum(1 for steps, _n in entity_rows if steps),
            "edge_slots_full": sum(len(s) for s, _n in self._full.values()),
            "edge_slots_entity": sum(len(s) for s, _n in entity_rows),
        }
