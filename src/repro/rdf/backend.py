"""Pluggable storage backends behind the :class:`TripleStore` facade.

The store's id-level read/write surface is captured by the
:class:`StoreBackend` protocol so the physical layout can be chosen per
workload:

* :class:`DictBackend` — three permutation indexes (SPO, POS, OSP) as
  two-level dicts of sets.  Mutable, O(1) add/remove, the right shape for
  the build/mining phase where triples stream in incrementally.
* :class:`CompactBackend` — the same three permutations as parallel
  sorted int64 columns answered by bisect seeks (the RDF-3X layout).
  Frozen after construction, allocation-lean, and directly persistable:
  the compiled-snapshot format (:mod:`repro.rdf.snapshot`) writes the
  column bytes verbatim.  Columns may be **owned** ``array('q')``
  instances or **borrowed** ``memoryview`` casts over an ``mmap`` of the
  snapshot file — the zero-copy path: every bisect seek reads the
  page-cache copy of the file directly, so N forked serving workers
  share one physical copy of the triple columns.

Nothing outside :mod:`repro.rdf` should import this module: all access
goes through the :class:`StoreBackend` protocol via the
:class:`repro.rdf.store.TripleStore` facade.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import AbstractSet, Iterable, Iterator, Mapping, Protocol, runtime_checkable

from repro.exceptions import StoreFrozenError

IdTriple = tuple[int, int, int]

#: A sorted int64 column: an owned ``array('q')`` or a borrowed
#: ``memoryview`` (format ``'q'``) over a snapshot mapping.  Both support
#: ``len``, indexing, slicing, iteration, and ``tobytes()`` — everything
#: the bisect seeks and the snapshot writer need.
IntColumn = array | memoryview

#: Shared empty views returned by the read-only accessors below; callers
#: treat every returned set/mapping as immutable, so one instance suffices.
_EMPTY_SET: frozenset[int] = frozenset()
_EMPTY_MAP: dict[int, frozenset[int]] = {}


@runtime_checkable
class StoreBackend(Protocol):
    """The id-level storage surface every backend provides.

    Mutation (``add``/``remove``) may raise :class:`StoreFrozenError` on
    read-only backends; ``writable`` says so up front.  All returned sets
    and mappings are read-only views — callers must never mutate them.
    """

    @property
    def writable(self) -> bool: ...

    @property
    def version(self) -> int: ...

    def __len__(self) -> int: ...

    def add(self, s: int, p: int, o: int) -> bool: ...

    def add_all_ids(self, triples: Iterable[IdTriple]) -> int: ...

    def remove(self, s: int, p: int, o: int) -> bool: ...

    def contains(self, s: int, p: int, o: int) -> bool: ...

    def triples_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[IdTriple]: ...

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int: ...

    def objects_ids(self, s: int, p: int) -> AbstractSet[int]: ...

    def subjects_ids(self, p: int, o: int) -> AbstractSet[int]: ...

    def out_index(self, s: int) -> Mapping[int, AbstractSet[int]]: ...

    def in_index(self, o: int) -> Mapping[int, AbstractSet[int]]: ...

    def objects_of_predicate(self, p: int) -> Iterator[int]: ...

    def iter_out_rows(self) -> Iterator[tuple[int, Mapping[int, AbstractSet[int]]]]: ...

    def subject_ids(self) -> Iterator[int]: ...

    def predicate_ids(self) -> Iterator[int]: ...

    def object_ids(self) -> Iterator[int]: ...


class DictBackend:
    """Mutable permutation indexes as two-level dicts of sets.

    This is the standard index layout of native RDF stores (gStore,
    RDF-3X keep the full set of permutations; three suffice here because
    each pattern shape has at least one index whose prefix is bound).
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size", "_version")

    def __init__(self) -> None:
        self._spo: dict[int, dict[int, set[int]]] = {}
        self._pos: dict[int, dict[int, set[int]]] = {}
        self._osp: dict[int, dict[int, set[int]]] = {}
        self._size = 0
        self._version = 0

    @property
    def writable(self) -> bool:
        return True

    @property
    def version(self) -> int:
        return self._version

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        self._version += 1
        return True

    def add_all_ids(self, triples: Iterable[IdTriple]) -> int:
        """Bulk insert; returns how many triples were new.

        The version counter advances per new triple (never one bump per
        batch): every intermediate store state stays distinguishable, so
        version-keyed caches can never alias across a batch boundary.
        """
        add = self.add
        return sum(1 for s, p, o in triples if add(s, p, o))

    def remove(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        objects.discard(o)
        self._pos[p][o].discard(s)
        self._osp[o][s].discard(p)
        self._prune_empty(self._spo, s, p)
        self._prune_empty(self._pos, p, o)
        self._prune_empty(self._osp, o, s)
        self._size -= 1
        self._version += 1
        return True

    @staticmethod
    def _prune_empty(index: dict[int, dict[int, set[int]]], outer: int, inner: int) -> None:
        level = index.get(outer)
        if level is None:
            return
        if not level.get(inner):
            level.pop(inner, None)
        if not level:
            index.pop(outer, None)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def contains(self, s: int, p: int, o: int) -> bool:
        return o in self._spo.get(s, {}).get(p, ())

    def triples_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[IdTriple]:
        """Iterate id triples matching a pattern of optional bound ids.

        Chooses the index whose prefix covers the bound positions so every
        shape is answered by direct dict seeks plus one innermost loop.
        """
        if s is not None:
            by_pred = self._spo.get(s, {})
            if p is not None:
                objects = by_pred.get(p, ())
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                else:
                    for oid in objects:
                        yield (s, p, oid)
            elif o is not None:
                for pid in self._osp.get(o, {}).get(s, ()):
                    yield (s, pid, o)
            else:
                for pid, objects in by_pred.items():
                    for oid in objects:
                        yield (s, pid, oid)
        elif p is not None:
            by_obj = self._pos.get(p, {})
            if o is not None:
                for sid in by_obj.get(o, ()):
                    yield (sid, p, o)
            else:
                for oid, subjects in by_obj.items():
                    for sid in subjects:
                        yield (sid, p, oid)
        elif o is not None:
            for sid, preds in self._osp.get(o, {}).items():
                for pid in preds:
                    yield (sid, pid, o)
        else:
            for sid, by_pred in self._spo.items():
                for pid, objects in by_pred.items():
                    for oid in objects:
                        yield (sid, pid, oid)

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        return sum(1 for _ in self.triples_ids(s, p, o))

    def objects_ids(self, s: int, p: int) -> AbstractSet[int]:
        return self._spo.get(s, _EMPTY_MAP).get(p, _EMPTY_SET)

    def subjects_ids(self, p: int, o: int) -> AbstractSet[int]:
        return self._pos.get(p, _EMPTY_MAP).get(o, _EMPTY_SET)

    def out_index(self, s: int) -> Mapping[int, AbstractSet[int]]:
        return self._spo.get(s, _EMPTY_MAP)

    def in_index(self, o: int) -> Mapping[int, AbstractSet[int]]:
        return self._osp.get(o, _EMPTY_MAP)

    def objects_of_predicate(self, p: int) -> Iterator[int]:
        return iter(self._pos.get(p, _EMPTY_MAP))

    def iter_out_rows(self) -> Iterator[tuple[int, Mapping[int, AbstractSet[int]]]]:
        return iter(self._spo.items())

    def subject_ids(self) -> Iterator[int]:
        return iter(self._spo)

    def predicate_ids(self) -> Iterator[int]:
        return iter(self._pos)

    def object_ids(self) -> Iterator[int]:
        return iter(self._osp)


def _run_bounds(column: IntColumn, value: int, lo: int, hi: int) -> tuple[int, int]:
    """The [lo, hi) run of ``value`` inside a sorted column slice."""
    return (
        bisect_left(column, value, lo, hi),
        bisect_right(column, value, lo, hi),
    )


class CompactBackend:
    """Frozen, read-optimized backend: sorted permutation columns.

    Each permutation (SPO, POS, OSP) is three parallel int64 columns
    sorted lexicographically by the permutation's key order; any pattern
    with bound positions narrows to a contiguous run with at most two
    rounds of bisects.  Compared to :class:`DictBackend` this trades
    O(1) point updates (mutation raises :class:`StoreFrozenError`) for a
    fraction of the memory — 9 machine words per triple instead of hash
    tables of boxed ints — and for a layout that serializes as raw bytes.

    Columns are :data:`IntColumn` — either owned ``array('q')``
    instances (``from_triples``, the copying snapshot loader) or
    borrowed ``memoryview`` casts over an ``mmap`` of a snapshot file
    (the zero-copy loader).  The seek code is identical for both; a
    borrowed column keeps the underlying mapping alive for as long as
    the backend exists.

    Every ``count`` shape with one or two bound positions is O(log n):
    it is a run length, never an iteration.
    """

    __slots__ = (
        "_spo_s", "_spo_p", "_spo_o",
        "_pos_p", "_pos_o", "_pos_s",
        "_osp_o", "_osp_s", "_osp_p",
        "_size", "_version",
    )

    def __init__(
        self,
        spo: tuple[IntColumn, IntColumn, IntColumn],
        pos: tuple[IntColumn, IntColumn, IntColumn],
        osp: tuple[IntColumn, IntColumn, IntColumn],
        version: int = 0,
    ):
        self._spo_s, self._spo_p, self._spo_o = spo
        self._pos_p, self._pos_o, self._pos_s = pos
        self._osp_o, self._osp_s, self._osp_p = osp
        self._size = len(self._spo_s)
        self._version = version
        lengths = {
            len(column)
            for column in (
                self._spo_s, self._spo_p, self._spo_o,
                self._pos_p, self._pos_o, self._pos_s,
                self._osp_o, self._osp_s, self._osp_p,
            )
        }
        if lengths != {self._size}:
            raise ValueError("permutation columns disagree on triple count")

    @classmethod
    def from_triples(cls, triples: Iterable[IdTriple], version: int = 0) -> "CompactBackend":
        """Build all three permutations from id triples (deduplicated)."""
        spo = sorted(set(triples))
        pos = sorted((p, o, s) for s, p, o in spo)
        osp = sorted((o, s, p) for s, p, o in spo)

        def columns(rows: list[tuple[int, int, int]]) -> tuple[array, array, array]:
            return (
                array("q", (row[0] for row in rows)),
                array("q", (row[1] for row in rows)),
                array("q", (row[2] for row in rows)),
            )

        return cls(columns(spo), columns(pos), columns(osp), version=version)

    @property
    def writable(self) -> bool:
        return False

    @property
    def version(self) -> int:
        return self._version

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Mutation (rejected)
    # ------------------------------------------------------------------ #

    def add(self, s: int, p: int, o: int) -> bool:
        raise StoreFrozenError(
            "CompactBackend is read-only; mutate a DictBackend store and "
            "recompact (TripleStore.compacted) or recompile the snapshot"
        )

    def add_all_ids(self, triples: Iterable[IdTriple]) -> int:
        raise StoreFrozenError(
            "CompactBackend is read-only; mutate a DictBackend store and "
            "recompact (TripleStore.compacted) or recompile the snapshot"
        )

    def remove(self, s: int, p: int, o: int) -> bool:
        raise StoreFrozenError(
            "CompactBackend is read-only; mutate a DictBackend store and "
            "recompact (TripleStore.compacted) or recompile the snapshot"
        )

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def _spo_run(self, s: int, p: int | None = None) -> tuple[int, int]:
        lo, hi = _run_bounds(self._spo_s, s, 0, self._size)
        if p is not None and lo < hi:
            lo, hi = _run_bounds(self._spo_p, p, lo, hi)
        return lo, hi

    def _pos_run(self, p: int, o: int | None = None) -> tuple[int, int]:
        lo, hi = _run_bounds(self._pos_p, p, 0, self._size)
        if o is not None and lo < hi:
            lo, hi = _run_bounds(self._pos_o, o, lo, hi)
        return lo, hi

    def _osp_run(self, o: int, s: int | None = None) -> tuple[int, int]:
        lo, hi = _run_bounds(self._osp_o, o, 0, self._size)
        if s is not None and lo < hi:
            lo, hi = _run_bounds(self._osp_s, s, lo, hi)
        return lo, hi

    def contains(self, s: int, p: int, o: int) -> bool:
        lo, hi = self._spo_run(s, p)
        position = bisect_left(self._spo_o, o, lo, hi)
        return position < hi and self._spo_o[position] == o

    def triples_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[IdTriple]:
        if s is not None:
            if o is not None and p is None:
                lo, hi = self._osp_run(o, s)
                for index in range(lo, hi):
                    yield (s, self._osp_p[index], o)
                return
            lo, hi = self._spo_run(s, p)
            if o is not None:
                if self.contains(s, p, o):  # type: ignore[arg-type]
                    yield (s, p, o)  # type: ignore[misc]
                return
            for index in range(lo, hi):
                yield (s, self._spo_p[index], self._spo_o[index])
        elif p is not None:
            lo, hi = self._pos_run(p, o)
            for index in range(lo, hi):
                yield (self._pos_s[index], p, self._pos_o[index])
        elif o is not None:
            lo, hi = self._osp_run(o)
            for index in range(lo, hi):
                yield (self._osp_s[index], self._osp_p[index], o)
        else:
            for index in range(self._size):
                yield (self._spo_s[index], self._spo_p[index], self._spo_o[index])

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        # Every remaining shape is a contiguous run in one permutation.
        if s is not None:
            if o is not None:
                lo, hi = self._osp_run(o, s)
            else:
                lo, hi = self._spo_run(s, p)
        elif p is not None:
            lo, hi = self._pos_run(p, o)
        else:
            lo, hi = self._osp_run(o)  # type: ignore[arg-type]
        return hi - lo

    def objects_ids(self, s: int, p: int) -> AbstractSet[int]:
        lo, hi = self._spo_run(s, p)
        if lo == hi:
            return _EMPTY_SET
        return frozenset(self._spo_o[lo:hi])

    def subjects_ids(self, p: int, o: int) -> AbstractSet[int]:
        lo, hi = self._pos_run(p, o)
        if lo == hi:
            return _EMPTY_SET
        return frozenset(self._pos_s[lo:hi])

    def out_index(self, s: int) -> Mapping[int, AbstractSet[int]]:
        lo, hi = self._spo_run(s)
        if lo == hi:
            return _EMPTY_MAP
        return self._group_runs(self._spo_p, self._spo_o, lo, hi)

    def in_index(self, o: int) -> Mapping[int, AbstractSet[int]]:
        lo, hi = self._osp_run(o)
        if lo == hi:
            return _EMPTY_MAP
        return self._group_runs(self._osp_s, self._osp_p, lo, hi)

    @staticmethod
    def _group_runs(
        keys: IntColumn, values: IntColumn, lo: int, hi: int
    ) -> dict[int, frozenset[int]]:
        """Group a sorted [lo, hi) slice into {key: frozenset(values)}."""
        grouped: dict[int, frozenset[int]] = {}
        index = lo
        while index < hi:
            key = keys[index]
            end = bisect_right(keys, key, index, hi)
            grouped[key] = frozenset(values[index:end])
            index = end
        return grouped

    def objects_of_predicate(self, p: int) -> Iterator[int]:
        lo, hi = self._pos_run(p)
        column = self._pos_o
        index = lo
        while index < hi:
            value = column[index]
            yield value
            index = bisect_right(column, value, index, hi)

    def iter_out_rows(self) -> Iterator[tuple[int, Mapping[int, AbstractSet[int]]]]:
        column = self._spo_s
        size = self._size
        index = 0
        while index < size:
            sid = column[index]
            end = bisect_right(column, sid, index, size)
            yield sid, self._group_runs(self._spo_p, self._spo_o, index, end)
            index = end

    @staticmethod
    def _distinct(column: IntColumn) -> Iterator[int]:
        size = len(column)
        index = 0
        while index < size:
            value = column[index]
            yield value
            index = bisect_right(column, value, index, size)

    def subject_ids(self) -> Iterator[int]:
        return self._distinct(self._spo_s)

    def predicate_ids(self) -> Iterator[int]:
        return self._distinct(self._pos_p)

    def object_ids(self) -> Iterator[int]:
        return self._distinct(self._osp_o)

    # ------------------------------------------------------------------ #
    # Persistence surface (repro.rdf.snapshot only)
    # ------------------------------------------------------------------ #

    def permutation_columns(self) -> dict[str, tuple[IntColumn, IntColumn, IntColumn]]:
        """The raw sorted columns, keyed by permutation name.

        Only :mod:`repro.rdf.snapshot` should call this: the columns are
        the live index, returned without copying so the snapshot writer
        can stream ``tobytes()`` straight out.  On an mmap-loaded backend
        the tuples hold borrowed ``memoryview`` columns.
        """
        return {
            "spo": (self._spo_s, self._spo_p, self._spo_o),
            "pos": (self._pos_p, self._pos_o, self._pos_s),
            "osp": (self._osp_o, self._osp_s, self._osp_p),
        }
