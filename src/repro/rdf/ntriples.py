"""N-Triples parsing and serialization.

Implements the line-oriented N-Triples syntax: one triple per line,
``<iri>`` terms, ``"literal"`` with optional ``@lang`` or ``^^<datatype>``,
``#`` comments, and the standard string escapes.  Blank nodes are not
supported (the project's knowledge graphs never use them); encountering one
raises :class:`RDFSyntaxError` rather than silently mangling data.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import RDFSyntaxError
from repro.rdf.terms import IRI, Literal, Term, Triple

_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
}
_REVERSE_ESCAPES = {
    "\t": "\\t",
    "\n": "\\n",
    "\r": "\\r",
    '"': '\\"',
    "\\": "\\\\",
}
# str.splitlines() treats these as line boundaries, so they must never appear
# raw inside a serialized literal or the document stops being line-oriented.
for _boundary in "\v\f\x1c\x1d\x1e\x85\u2028\u2029":
    _REVERSE_ESCAPES[_boundary] = f"\\u{ord(_boundary):04X}"
del _boundary


class _LineScanner:
    """Cursor over a single N-Triples line."""

    def __init__(self, text: str, line_number: int | None):
        self.text = text
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> RDFSyntaxError:
        return RDFSyntaxError(f"{message} (at column {self.pos})", self.line_number)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def read_iri(self) -> IRI:
        self.expect("<")
        end = self.text.find(">", self.pos)
        if end == -1:
            raise self.error("unterminated IRI")
        value = self.text[self.pos : end]
        self.pos = end + 1
        if not value:
            raise self.error("empty IRI")
        return IRI(value)

    def read_literal(self) -> Literal:
        self.expect('"')
        chars: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated literal")
            char = self.text[self.pos]
            self.pos += 1
            if char == '"':
                break
            if char == "\\":
                if self.at_end():
                    raise self.error("dangling escape")
                esc = self.text[self.pos]
                self.pos += 1
                if esc in _ESCAPES:
                    chars.append(_ESCAPES[esc])
                elif esc == "u":
                    chars.append(self._read_unicode_escape(4))
                elif esc == "U":
                    chars.append(self._read_unicode_escape(8))
                else:
                    raise self.error(f"unknown escape \\{esc}")
            else:
                chars.append(char)
        lexical = "".join(chars)
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "-"
            ):
                self.pos += 1
            language = self.text[start : self.pos]
            if not language:
                raise self.error("empty language tag")
            return Literal(lexical, language=language)
        if self.text.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.read_iri()
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def _read_unicode_escape(self, width: int) -> str:
        hex_digits = self.text[self.pos : self.pos + width]
        if len(hex_digits) != width:
            raise self.error("truncated unicode escape")
        try:
            code_point = int(hex_digits, 16)
        except ValueError:
            raise self.error(f"invalid unicode escape {hex_digits!r}") from None
        self.pos += width
        return chr(code_point)

    def read_term(self) -> Term:
        char = self.peek()
        if char == "<":
            return self.read_iri()
        if char == '"':
            return self.read_literal()
        if char == "_":
            raise self.error("blank nodes are not supported")
        raise self.error(f"expected a term, found {char!r}")


def parse_ntriples_line(line: str, line_number: int | None = None) -> Triple | None:
    """Parse one N-Triples line; returns None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    scanner = _LineScanner(stripped, line_number)
    subject = scanner.read_term()
    if not isinstance(subject, IRI):
        raise scanner.error("triple subject must be an IRI")
    scanner.skip_ws()
    predicate = scanner.read_term()
    if not isinstance(predicate, IRI):
        raise scanner.error("triple predicate must be an IRI")
    scanner.skip_ws()
    obj = scanner.read_term()
    scanner.skip_ws()
    scanner.expect(".")
    scanner.skip_ws()
    if not scanner.at_end() and not scanner.text[scanner.pos :].lstrip().startswith("#"):
        raise scanner.error("trailing content after '.'")
    return Triple(subject, predicate, obj)


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Parse an N-Triples document, yielding triples in order."""
    for line_number, line in enumerate(text.splitlines(), start=1):
        triple = parse_ntriples_line(line, line_number)
        if triple is not None:
            yield triple


def _escape(lexical: str) -> str:
    return "".join(_REVERSE_ESCAPES.get(char, char) for char in lexical)


def serialize_term(term: Term) -> str:
    """Serialize a single term in N-Triples syntax."""
    if isinstance(term, IRI):
        return f"<{term.value}>"
    quoted = f'"{_escape(term.lexical)}"'
    if term.language is not None:
        return f"{quoted}@{term.language}"
    if term.datatype is not None:
        return f"{quoted}^^<{term.datatype.value}>"
    return quoted


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples as an N-Triples document (one per line)."""
    lines = [
        f"{serialize_term(t.subject)} {serialize_term(t.predicate)} "
        f"{serialize_term(t.object)} ."
        for t in triples
    ]
    return "\n".join(lines) + ("\n" if lines else "")
