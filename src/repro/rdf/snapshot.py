"""Compiled, id-stable snapshots: the offline phase as an on-disk artifact.

``load_bundle``'s text path re-parses N-Triples, re-assigns every term id,
then rebuilds the adjacency kernel, label/linker indexes, and subclass
closures before the first question is answered.  Native RDF engines
(gStore in the source paper; RDF-3X-style permutation stores) instead
treat the *encoded, indexed* form as the deployment artifact.  A compiled
snapshot is exactly that: one versioned, checksummed binary file holding

* the term dictionary **with its ids frozen** (position == id),
* the three sorted permutation columns of the
  :class:`~repro.rdf.backend.CompactBackend` (raw ``array('q')`` bytes),
* the literal-id set,
* the prebuilt adjacency-kernel rows,
* the class set and both ``rdfs:subClassOf`` closures,
* the graph label index and the entity-linker index entries/postings,
* the mined paraphrase dictionary **by id** (signed steps, no
  portable-JSON re-resolution).

Because every id is stable across the round-trip, loading is direct
reconstruction — dict assembly over borrowed byte ranges — with no
parsing, no re-encoding, no re-mining, and no index rebuild.  See
``scripts/bench_cold_start.py`` for the text-load vs snapshot-load gap.

Loading has two modes (``load_snapshot(path, mode=...)``):

* ``"mmap"`` (default) — the file is memory-mapped and the three
  permutation columns become ``memoryview`` casts straight over the
  mapping: the triple index is **never copied into process memory**.
  The kernel rows, closures, and dictionary are still materialized as
  Python objects, but the columns — the bulk of a large snapshot — stay
  in the page cache, shared read-only between every process that maps
  the same file.  This is what makes pre-fork serving
  (:mod:`repro.serve.prefork`) cheap: N workers, one physical copy.
* ``"copy"`` — the historical behavior: the file is read once and every
  column is an owned ``array('q')``.  The fallback when the snapshot
  was written on a machine of the opposite byte order (views cannot be
  byteswapped in place), and the reference the equivalence tests hold
  the mmap path against.

File layout::

    MAGIC | u32 format | u8 byteorder | u64 meta_len | meta JSON
    | u32 section_count | sections... | sha256 digest (32 bytes)

where each section is ``u8 name_len | name | u64 payload_len | payload``.
The digest covers everything between the fixed header and itself; a
flipped bit anywhere surfaces as :class:`~repro.exceptions.SnapshotError`
at load time, never as silently wrong answers.

**Sharded snapshots** (``compile_snapshot(..., shards=K)``, ``repro
compile --shards K``) split the artifact so segments load on demand:

* ``graph.snap`` — a small JSON **manifest** naming the members, the
  partition scheme, and per-segment triple counts;
* ``graph.state.snap`` — one ``REPROSNAP`` container with every
  non-column section (terms, literals, kernel rows, closures, labels,
  linker, dictionary), decoded eagerly at load;
* ``graph.segNNN.snap`` — one ``REPROSNAP`` container per shard holding
  only that segment's three permutation columns.

``load_snapshot`` sniffs the leading bytes, so manifest and single-file
snapshots load through the same call.  A sharded load builds a
:class:`~repro.rdf.shard.ShardedBackend` whose segments are mmapped (and
checksum-verified) on **first touch**: a subject-local workload only ever
makes 1/K of the triple columns resident, and :meth:`ShardedBackend.
evict` hands a segment's pages back.  Each segment file is verified
independently, so lazy loading never trades away corruption detection.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import struct
import sys
from array import array
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING

from repro.exceptions import SnapshotError
from repro.rdf.backend import CompactBackend
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.kernel import AdjacencyKernel, AdjacencyRow
from repro.rdf.shard import (
    PARTITION_SCHEME,
    ShardedBackend,
    build_segments,
    partition_triples,
)
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal, Term

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (linking sits above rdf)
    from repro.linking.linker import EntityLinker
    from repro.paraphrase.dictionary import ParaphraseDictionary

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_VERSION",
    "SnapshotInfo",
    "CompiledState",
    "compile_snapshot",
    "load_snapshot",
]

_MAGIC = b"REPROSNAP\x00"
FORMAT_VERSION = 1
#: Version of the sharded-manifest JSON layout.
MANIFEST_VERSION = 1
_MANIFEST_FORMAT = "reprosnap-manifest"

_KIND_IRI = 0
_KIND_PLAIN = 1
_KIND_TYPED = 2
_KIND_LANG = 3

#: Fixed section order; load rejects files missing any of these.
_SECTIONS = (
    "terms", "literals", "spo", "pos", "osp",
    "kernel", "classes", "closures", "labels", "linker", "dictionary",
)
#: Sections of a sharded snapshot's state container (everything but the
#: triple columns, which live in the per-shard segment containers).
_STATE_SECTIONS = (
    "terms", "literals",
    "kernel", "classes", "closures", "labels", "linker", "dictionary",
)
#: Sections of one segment container: that shard's permutation columns.
_SEGMENT_SECTIONS = ("spo", "pos", "osp")


# --------------------------------------------------------------------- #
# Primitive packing
# --------------------------------------------------------------------- #

def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    return struct.pack("<I", len(data)) + data


def _pack_array(values) -> bytes:
    """Length-prefixed int64 column bytes (owned array or borrowed view)."""
    return struct.pack("<Q", len(values)) + values.tobytes()


class _Reader:
    """Sequential decoder over one section payload."""

    __slots__ = ("_view", "_offset", "_swap")

    def __init__(self, payload: memoryview, swap: bool):
        self._view = payload
        self._offset = 0
        self._swap = swap

    def _take(self, size: int) -> memoryview:
        end = self._offset + size
        if end > len(self._view):
            raise SnapshotError("snapshot section truncated")
        chunk = self._view[self._offset:end]
        self._offset = end
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def text(self) -> str:
        return bytes(self._take(self.u32())).decode("utf-8")

    def int_array(self) -> array:
        count = self.u64()
        values = array("q")
        values.frombytes(self._take(count * values.itemsize))
        if self._swap:
            values.byteswap()
        return values

    def int_column(self):
        """A zero-copy int64 view over the payload (array when swapping).

        The returned ``memoryview`` borrows the underlying buffer — on
        the mmap path that is the file mapping itself, so consuming it
        reads page-cache bytes with no intermediate copy.  A snapshot of
        foreign byte order cannot be viewed in place and falls back to
        the owned, byteswapped :meth:`int_array`.
        """
        if self._swap:
            return self.int_array()
        count = self.u64()
        return self._take(count * 8).cast("q")

    def done(self) -> bool:
        return self._offset == len(self._view)


# --------------------------------------------------------------------- #
# Term table
# --------------------------------------------------------------------- #

def _encode_terms(terms: list[Term]) -> bytes:
    parts = [struct.pack("<Q", len(terms))]
    for term in terms:
        if isinstance(term, IRI):
            parts.append(bytes((_KIND_IRI,)))
            parts.append(_pack_str(term.value))
        elif term.datatype is not None:
            parts.append(bytes((_KIND_TYPED,)))
            parts.append(_pack_str(term.lexical))
            parts.append(_pack_str(term.datatype.value))
        elif term.language is not None:
            parts.append(bytes((_KIND_LANG,)))
            parts.append(_pack_str(term.lexical))
            parts.append(_pack_str(term.language))
        else:
            parts.append(bytes((_KIND_PLAIN,)))
            parts.append(_pack_str(term.lexical))
    return b"".join(parts)


def _decode_terms(reader: _Reader) -> list[Term]:
    count = reader.u64()
    terms: list[Term] = []
    for _ in range(count):
        kind = reader.u8()
        if kind == _KIND_IRI:
            terms.append(IRI(reader.text()))
        elif kind == _KIND_PLAIN:
            terms.append(Literal(reader.text()))
        elif kind == _KIND_TYPED:
            lexical = reader.text()
            terms.append(Literal(lexical, datatype=IRI(reader.text())))
        elif kind == _KIND_LANG:
            lexical = reader.text()
            terms.append(Literal(lexical, language=reader.text()))
        else:
            raise SnapshotError(f"unknown term kind {kind}")
    return terms


# --------------------------------------------------------------------- #
# Id-set maps (closures)
# --------------------------------------------------------------------- #

def _encode_closure(closure: dict[int, frozenset[int]]) -> bytes:
    keys = sorted(closure)
    lens = array("q", (len(closure[key]) for key in keys))
    flat = array("q")
    for key in keys:
        flat.extend(sorted(closure[key]))
    return _pack_array(array("q", keys)) + _pack_array(lens) + _pack_array(flat)


def _decode_closure(reader: _Reader) -> dict[int, frozenset[int]]:
    keys = reader.int_column()
    lens = reader.int_column()
    flat = reader.int_column()
    closure: dict[int, frozenset[int]] = {}
    offset = 0
    for key, length in zip(keys, lens):
        closure[key] = frozenset(flat[offset:offset + length])
        offset += length
    return closure


# --------------------------------------------------------------------- #
# Info / state containers
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class SnapshotInfo:
    """Manifest-level facts about one compiled snapshot (file or shard set)."""

    path: Path
    format_version: int
    created: str
    store_version: int
    triples: int
    terms: int
    phrases: int
    section_bytes: dict[str, int]
    #: Segment count: 1 for a single-file snapshot, K for a sharded one
    #: (where ``section_bytes`` also carries one aggregate entry per
    #: segment file).
    shards: int = 1

    @property
    def total_bytes(self) -> int:
        return sum(self.section_bytes.values())


@dataclass(slots=True)
class CompiledState:
    """Everything a serving replica needs, reconstructed from a snapshot.

    ``mapping`` is the ``mmap`` the triple columns borrow from when the
    snapshot was loaded zero-copy (None on the copying path).  It is
    kept here — and implicitly by every ``memoryview`` column — so the
    mapping outlives the state; dropping the state releases it.
    """

    kg: KnowledgeGraph
    dictionary: "ParaphraseDictionary"
    info: SnapshotInfo
    linker_entries: list[tuple[int, str, str, bool]]
    linker_postings: dict[str, tuple[int, ...]]
    linker_max_degree: int
    mapping: mmap.mmap | None = None

    def build_linker(self, **kwargs) -> "EntityLinker":
        """An :class:`EntityLinker` over the compiled label-index entries.

        Skips the linker's scan-everything index build *and* its
        max-degree sweep — both were done at compile time.
        """
        from repro.linking.index import LabelIndex
        from repro.linking.linker import EntityLinker

        index = LabelIndex.from_compiled(
            self.kg, self.linker_entries, self.linker_postings
        )
        return EntityLinker(
            self.kg,
            index=index,
            max_degree=self.linker_max_degree,
            **kwargs,
        )


# --------------------------------------------------------------------- #
# Compile
# --------------------------------------------------------------------- #

def _write_container(
    path: Path, sections: dict[str, bytes], order: tuple[str, ...], meta: dict
) -> dict[str, int]:
    """Write one checksummed ``REPROSNAP`` container; return section sizes."""
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    body = bytearray()
    body += struct.pack("<Q", len(meta_bytes))
    body += meta_bytes
    body += struct.pack("<I", len(order))
    for name in order:
        payload = sections[name]
        body += struct.pack("<B", len(name))
        body += name.encode("ascii")
        body += struct.pack("<Q", len(payload))
        body += payload
    head = _MAGIC + struct.pack("<IB", FORMAT_VERSION, sys.byteorder == "big")
    digest = hashlib.sha256(bytes(body)).digest()
    path.write_bytes(head + bytes(body) + digest)
    return {name: len(sections[name]) for name in order}


def _sharded_member_paths(path: Path, shards: int) -> tuple[Path, list[Path]]:
    """Sibling file names of a sharded snapshot's state and segments.

    ``graph.snap`` → ``graph.state.snap`` + ``graph.seg000.snap`` …; the
    manifest records bare names, so the whole set moves as a directory.
    """
    suffix = path.suffix or ".snap"
    stem = path.stem if path.suffix else path.name
    state = path.with_name(f"{stem}.state{suffix}")
    segments = [
        path.with_name(f"{stem}.seg{index:03d}{suffix}") for index in range(shards)
    ]
    return state, segments


def _encode_state_sections(
    kg: KnowledgeGraph, dictionary: "ParaphraseDictionary"
) -> dict[str, bytes]:
    """Encode every non-column section from the forced-warm graph state."""
    from repro.linking.linker import EntityLinker

    store = kg.store
    kernel = kg.kernel
    class_ids = kg.class_ids
    for class_id in class_ids:
        kg.superclasses_of(class_id)
        kg.subclasses_of(class_id)
    label_index = kg.label_index
    linker = EntityLinker(kg)

    sections: dict[str, bytes] = {}
    sections["terms"] = _encode_terms(store.dictionary.terms_in_id_order())
    sections["literals"] = _pack_array(array("q", sorted(store.iter_literal_ids())))

    rows = kernel.full_rows()
    node_ids = array("q", sorted(rows))
    row_lens = array("q", (len(rows[node][0]) for node in node_ids))
    flat_steps = array("q")
    flat_neighbors = array("q")
    for node in node_ids:
        steps, neighbors = rows[node]
        flat_steps.extend(steps)
        flat_neighbors.extend(neighbors)
    sections["kernel"] = (
        _pack_array(node_ids) + _pack_array(row_lens)
        + _pack_array(flat_steps) + _pack_array(flat_neighbors)
    )

    superclass_closure, subclass_closure = kg.closure_caches()
    sections["classes"] = _pack_array(array("q", sorted(class_ids)))
    sections["closures"] = (
        _encode_closure(superclass_closure) + _encode_closure(subclass_closure)
    )

    label_parts = [struct.pack("<Q", len(label_index))]
    for node, label in sorted(label_index.items()):
        label_parts.append(struct.pack("<q", node))
        label_parts.append(_pack_str(label))
    sections["labels"] = b"".join(label_parts)

    entries = linker.index.entries()
    postings = linker.index.word_postings()
    linker_parts = [struct.pack("<Q", len(entries))]
    for entry in entries:
        linker_parts.append(struct.pack("<qB", entry.node_id, int(entry.is_class)))
        linker_parts.append(_pack_str(entry.label))
        linker_parts.append(_pack_str(entry.normalized))
    linker_parts.append(struct.pack("<Q", len(postings)))
    for word in sorted(postings):
        linker_parts.append(_pack_str(word))
        linker_parts.append(_pack_array(array("q", sorted(postings[word]))))
    linker_parts.append(struct.pack("<q", linker.max_degree))
    sections["linker"] = b"".join(linker_parts)

    phrases = sorted(dictionary.phrases())
    dict_parts = [struct.pack("<Q", len(phrases))]
    for phrase in phrases:
        mappings = dictionary.lookup(phrase)
        dict_parts.append(_pack_str(" ".join(phrase)))
        dict_parts.append(struct.pack("<I", len(mappings)))
        for mapping in mappings:
            dict_parts.append(struct.pack("<d", mapping.confidence))
            dict_parts.append(_pack_array(array("q", mapping.path)))
    sections["dictionary"] = b"".join(dict_parts)
    return sections


def _segment_sections(segment: CompactBackend) -> dict[str, bytes]:
    columns = segment.permutation_columns()
    return {
        name: b"".join(_pack_array(column) for column in columns[name])
        for name in _SEGMENT_SECTIONS
    }


def compile_snapshot(
    path: str | Path,
    kg: KnowledgeGraph,
    dictionary: "ParaphraseDictionary",
    shards: int | None = None,
    jobs: int = 1,
) -> SnapshotInfo:
    """Compile the warm state of ``kg`` + ``dictionary`` into a snapshot.

    Forces every lazily-built structure (kernel, class set, closures,
    label index, linker index) so what gets persisted is exactly what a
    warm engine would have built.

    ``shards=None`` (default) writes the single-file container, byte
    layout unchanged.  ``shards=K`` writes the sharded form instead: a
    JSON manifest at ``path``, a state container next to it, and one
    segment container per shard (subject-hash partitioned; ``jobs``
    parallelizes the per-segment column builds).  Both forms load through
    :func:`load_snapshot` and answer identically.
    """
    path = Path(path)
    store = kg.store
    sections = _encode_state_sections(kg, dictionary)
    meta = {
        "format_version": FORMAT_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "store_version": store.version,
        "triples": len(store),
        "terms": len(store.dictionary),
        "phrases": len(dictionary),
    }

    if shards is None:
        backend = store.backend
        if not isinstance(backend, CompactBackend):
            backend = CompactBackend.from_triples(
                store.triples_ids(), version=store.version
            )
        columns = backend.permutation_columns()
        for name in _SEGMENT_SECTIONS:
            sections[name] = b"".join(
                _pack_array(column) for column in columns[name]
            )
        section_bytes = _write_container(path, sections, _SECTIONS, meta)
        return SnapshotInfo(
            path=path,
            format_version=FORMAT_VERSION,
            created=meta["created"],
            store_version=meta["store_version"],
            triples=meta["triples"],
            terms=meta["terms"],
            phrases=meta["phrases"],
            section_bytes=section_bytes,
        )

    if shards < 1:
        raise ValueError("shards must be a positive segment count")
    backend = store.backend
    if isinstance(backend, ShardedBackend) and backend.shards == shards:
        # Already partitioned under the same scheme: persist the live
        # segments instead of re-sorting every column.
        segments = [backend.segment(index) for index in range(shards)]
    else:
        segments = build_segments(
            partition_triples(store.triples_ids(), shards),
            version=store.version,
            jobs=jobs,
        )

    state_path, segment_paths = _sharded_member_paths(path, shards)
    section_bytes = _write_container(
        state_path, sections, _STATE_SECTIONS,
        meta | {"kind": "state", "shards": shards},
    )
    for index, (segment, segment_path) in enumerate(zip(segments, segment_paths)):
        segment_meta = {
            "format_version": FORMAT_VERSION,
            "kind": "segment",
            "shard": index,
            "shards": shards,
            "triples": len(segment),
            "store_version": store.version,
        }
        written = _write_container(
            segment_path, _segment_sections(segment),
            _SEGMENT_SECTIONS, segment_meta,
        )
        section_bytes[segment_path.name] = sum(written.values())

    manifest = {
        "format": _MANIFEST_FORMAT,
        "manifest_version": MANIFEST_VERSION,
        "created": meta["created"],
        "partition": PARTITION_SCHEME,
        "shards": shards,
        "state": state_path.name,
        "segments": [segment_path.name for segment_path in segment_paths],
        "segment_triples": [len(segment) for segment in segments],
        "triples": meta["triples"],
        "terms": meta["terms"],
        "phrases": meta["phrases"],
        "store_version": meta["store_version"],
    }
    path.write_text(
        json.dumps(manifest, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return SnapshotInfo(
        path=path,
        format_version=FORMAT_VERSION,
        created=meta["created"],
        store_version=meta["store_version"],
        triples=meta["triples"],
        terms=meta["terms"],
        phrases=meta["phrases"],
        section_bytes=section_bytes,
        shards=shards,
    )


# --------------------------------------------------------------------- #
# Load
# --------------------------------------------------------------------- #

def _split_sections(
    path: Path, mode: str, required: tuple[str, ...] = _SECTIONS
) -> tuple[dict, dict[str, memoryview], bool, mmap.mmap | None]:
    """Verify the container; return (meta, name → payload view, swap, mapping).

    ``mode="mmap"`` maps the file read-only and every payload view
    borrows from the mapping (returned so callers keep it alive);
    ``mode="copy"`` reads the file into one bytes object — the only
    materialization, the per-section views borrow from it.  Either way
    the sha256 digest is verified over the body before any decoding, so
    a flipped bit surfaces here, never as silently wrong answers.
    """
    if mode == "mmap":
        try:
            with open(path, "rb") as handle:
                mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        data = memoryview(mapping)
    else:
        mapping = None
        try:
            data = memoryview(path.read_bytes())
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    head_len = len(_MAGIC) + 5
    if len(data) < head_len + 32 or bytes(data[: len(_MAGIC)]) != _MAGIC:
        raise SnapshotError(f"not a compiled snapshot: {path}")
    format_version, big_endian = struct.unpack_from("<IB", data, len(_MAGIC))
    if format_version != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format {format_version} "
            f"(this build reads format {FORMAT_VERSION}); recompile with "
            f"`repro compile`"
        )
    view = data[head_len:len(data) - 32]
    if hashlib.sha256(view).digest() != bytes(data[len(data) - 32:]):
        raise SnapshotError(
            f"snapshot checksum mismatch: {path} is truncated or corrupt"
        )
    (meta_len,) = struct.unpack_from("<Q", view, 0)
    offset = 8
    meta = json.loads(bytes(view[offset:offset + meta_len]).decode("utf-8"))
    offset += meta_len
    (section_count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    payloads: dict[str, memoryview] = {}
    for _ in range(section_count):
        name_len = view[offset]
        offset += 1
        name = bytes(view[offset:offset + name_len]).decode("ascii")
        offset += name_len
        (payload_len,) = struct.unpack_from("<Q", view, offset)
        offset += 8
        payloads[name] = view[offset:offset + payload_len]
        offset += payload_len
    missing = [name for name in required if name not in payloads]
    if missing:
        raise SnapshotError(f"snapshot missing sections: {', '.join(missing)}")
    swap = bool(big_endian) != (sys.byteorder == "big")
    return meta, payloads, swap, mapping


@dataclass(slots=True)
class _DecodedState:
    """The non-column sections of a snapshot, decoded into live objects."""

    dictionary: TermDictionary
    literal_ids: set[int]
    rows: dict[int, AdjacencyRow]
    class_ids: set[int]
    superclass_closure: dict[int, frozenset[int]]
    subclass_closure: dict[int, frozenset[int]]
    label_index: dict[int, str]
    linker_entries: list[tuple[int, str, str, bool]]
    linker_postings: dict[str, tuple[int, ...]]
    linker_max_degree: int
    paraphrases: "ParaphraseDictionary"


def _decode_state_sections(
    meta: dict, payloads: dict[str, memoryview], swap: bool
) -> _DecodedState:
    """Decode every non-column section (shared by both snapshot forms)."""
    from repro.paraphrase.dictionary import ParaphraseDictionary, PredicateMapping

    def reader(name: str) -> _Reader:
        return _Reader(payloads[name], swap)

    terms = _decode_terms(reader("terms"))
    dictionary = TermDictionary.from_terms(terms)
    literal_ids = set(reader("literals").int_column())

    kernel_reader = reader("kernel")
    node_ids = kernel_reader.int_column()
    row_lens = kernel_reader.int_column()
    flat_steps = kernel_reader.int_column()
    flat_neighbors = kernel_reader.int_column()
    rows: dict[int, AdjacencyRow] = {}
    offset = 0
    for node, length in zip(node_ids, row_lens):
        end = offset + length
        rows[node] = (tuple(flat_steps[offset:end]), tuple(flat_neighbors[offset:end]))
        offset = end

    class_ids = set(reader("classes").int_column())
    closure_reader = reader("closures")
    superclass_closure = _decode_closure(closure_reader)
    subclass_closure = _decode_closure(closure_reader)

    label_reader = reader("labels")
    label_index = {
        label_reader.i64(): label_reader.text()
        for _ in range(label_reader.u64())
    }

    linker_reader = reader("linker")
    entries: list[tuple[int, str, str, bool]] = []
    for _ in range(linker_reader.u64()):
        node_id = linker_reader.i64()
        is_class = bool(linker_reader.u8())
        label = linker_reader.text()
        normalized = linker_reader.text()
        entries.append((node_id, label, normalized, is_class))
    postings: dict[str, tuple[int, ...]] = {}
    for _ in range(linker_reader.u64()):
        word = linker_reader.text()
        postings[word] = tuple(linker_reader.int_column())
    max_degree = linker_reader.i64()

    dict_reader = reader("dictionary")
    paraphrases = ParaphraseDictionary()
    for _ in range(dict_reader.u64()):
        phrase = tuple(dict_reader.text().split())
        mappings = []
        for _ in range(dict_reader.u32()):
            confidence = dict_reader.f64()
            steps = tuple(dict_reader.int_array())
            mappings.append(PredicateMapping(steps, confidence))
        paraphrases.add(phrase, mappings)
    if len(paraphrases) != meta["phrases"]:
        raise SnapshotError(
            f"snapshot holds {len(paraphrases)} phrases, manifest says "
            f"{meta['phrases']} — inconsistent file"
        )

    return _DecodedState(
        dictionary=dictionary,
        literal_ids=literal_ids,
        rows=rows,
        class_ids=class_ids,
        superclass_closure=superclass_closure,
        subclass_closure=subclass_closure,
        label_index=label_index,
        linker_entries=entries,
        linker_postings=postings,
        linker_max_degree=max_degree,
        paraphrases=paraphrases,
    )


def _assemble_state(
    store: TripleStore,
    state: _DecodedState,
    info: SnapshotInfo,
    mapping: mmap.mmap | None,
) -> CompiledState:
    """Wire a store and decoded sections into the warm CompiledState."""
    kg = KnowledgeGraph(store)
    kernel = AdjacencyKernel(store, prebuilt_rows=state.rows)
    kg.preload(
        kernel=kernel,
        class_ids=state.class_ids,
        label_index=state.label_index,
        superclass_closure=state.superclass_closure,
        subclass_closure=state.subclass_closure,
    )
    return CompiledState(
        kg=kg,
        dictionary=state.paraphrases,
        info=info,
        linker_entries=state.linker_entries,
        linker_postings=state.linker_postings,
        linker_max_degree=state.linker_max_degree,
        mapping=mapping,
    )


def _segment_permutations(
    payloads: dict[str, memoryview], swap: bool, mode: str
) -> list[tuple]:
    """The three permutation column triples of one container's sections."""
    permutations = []
    for name in _SEGMENT_SECTIONS:
        # The zero-copy path: each column is a memoryview cast over the
        # mapping (no frombytes, no materialization).  Copy mode keeps
        # owned arrays; a byte-order mismatch forces them in either mode.
        section = _Reader(payloads[name], swap)
        take = section.int_column if mode == "mmap" else section.int_array
        permutations.append((take(), take(), take()))
    return permutations


def _load_single(path: Path, mode: str) -> CompiledState:
    """Decode the classic one-file snapshot."""
    meta, payloads, swap, mapping = _split_sections(path, mode)
    state = _decode_state_sections(meta, payloads, swap)
    spo, pos, osp = _segment_permutations(payloads, swap, mode)
    backend = CompactBackend(spo, pos, osp, version=meta["store_version"])
    store = TripleStore(
        backend=backend,
        dictionary=state.dictionary,
        literal_ids=state.literal_ids,
    )
    if len(store) != meta["triples"]:
        raise SnapshotError(
            f"snapshot holds {len(store)} triples, manifest says "
            f"{meta['triples']} — inconsistent file"
        )
    info = SnapshotInfo(
        path=path,
        format_version=meta["format_version"],
        created=meta.get("created", ""),
        store_version=meta["store_version"],
        triples=meta["triples"],
        terms=meta["terms"],
        phrases=meta["phrases"],
        section_bytes={name: len(payloads[name]) for name in payloads},
    )
    return _assemble_state(store, state, info, mapping)


def _load_sharded(path: Path, manifest: dict, mode: str) -> CompiledState:
    """Decode a sharded manifest: eager state, lazily mmapped segments."""
    if manifest.get("manifest_version") != MANIFEST_VERSION:
        raise SnapshotError(
            f"unsupported manifest version {manifest.get('manifest_version')} "
            f"(this build reads manifest version {MANIFEST_VERSION}); "
            f"recompile with `repro compile --shards`"
        )
    if manifest.get("partition") != PARTITION_SCHEME:
        raise SnapshotError(
            f"snapshot was partitioned by {manifest.get('partition')!r}, "
            f"this build places subjects by {PARTITION_SCHEME!r} — recompile"
        )
    shards = manifest.get("shards")
    segment_names = manifest.get("segments")
    segment_triples = manifest.get("segment_triples")
    if (
        not isinstance(shards, int)
        or shards < 1
        or not isinstance(segment_names, list)
        or not isinstance(segment_triples, list)
        or len(segment_names) != shards
        or len(segment_triples) != shards
    ):
        raise SnapshotError(f"malformed sharded-snapshot manifest: {path}")
    if sum(segment_triples) != manifest.get("triples"):
        raise SnapshotError(
            f"manifest segment counts sum to {sum(segment_triples)}, "
            f"manifest says {manifest.get('triples')} triples — inconsistent"
        )

    state_path = path.with_name(manifest["state"])
    meta, payloads, swap, mapping = _split_sections(state_path, mode, _STATE_SECTIONS)
    if meta.get("kind") != "state" or meta.get("shards") != shards:
        raise SnapshotError(
            f"{state_path} is not the state container of {path}"
        )
    state = _decode_state_sections(meta, payloads, swap)
    store_version = meta["store_version"]
    if manifest.get("store_version") != store_version:
        raise SnapshotError(
            f"manifest and state container disagree on store version "
            f"({manifest.get('store_version')} vs {store_version})"
        )
    segment_paths = [path.with_name(name) for name in segment_names]

    def load_segment(index: int) -> tuple[CompactBackend, object | None]:
        # Runs under the ShardedBackend lock on first touch of a segment;
        # each file carries its own checksum, so lazy loading keeps full
        # corruption detection without reading the untouched shards.
        segment_path = segment_paths[index]
        seg_meta, seg_payloads, seg_swap, seg_mapping = _split_sections(
            segment_path, mode, _SEGMENT_SECTIONS
        )
        if (
            seg_meta.get("kind") != "segment"
            or seg_meta.get("shard") != index
            or seg_meta.get("shards") != shards
            or seg_meta.get("store_version") != store_version
        ):
            raise SnapshotError(
                f"{segment_path} is not segment {index} of {path}"
            )
        spo, pos, osp = _segment_permutations(seg_payloads, seg_swap, mode)
        segment = CompactBackend(spo, pos, osp, version=store_version)
        return segment, seg_mapping

    backend = ShardedBackend.lazy(
        shards, segment_triples, load_segment, version=store_version
    )
    store = TripleStore(
        backend=backend,
        dictionary=state.dictionary,
        literal_ids=state.literal_ids,
    )

    section_bytes = {name: len(payloads[name]) for name in payloads}
    for segment_path in segment_paths:
        try:
            section_bytes[segment_path.name] = segment_path.stat().st_size
        except OSError as exc:
            raise SnapshotError(
                f"cannot read snapshot segment {segment_path}: {exc}"
            ) from exc
    info = SnapshotInfo(
        path=path,
        format_version=meta["format_version"],
        created=manifest.get("created", ""),
        store_version=store_version,
        triples=manifest["triples"],
        terms=manifest["terms"],
        phrases=manifest["phrases"],
        section_bytes=section_bytes,
        shards=shards,
    )
    return _assemble_state(store, state, info, mapping)


def load_snapshot(path: str | Path, mode: str = "mmap") -> CompiledState:
    """Reconstruct the full warm state from a compiled snapshot.

    The returned :class:`CompiledState` carries a frozen store whose term
    ids are identical to the compile-time store's, a kernel adopted from
    the persisted rows, preloaded graph caches, the id-level paraphrase
    dictionary, and the material to build an entity linker without an
    index scan.

    ``path`` may be either snapshot form — the leading bytes decide:

    * a ``REPROSNAP`` container loads as a single frozen
      :class:`~repro.rdf.backend.CompactBackend`;
    * a JSON **manifest** (``compile_snapshot(..., shards=K)``) loads the
      state container eagerly and hands the store a
      :class:`~repro.rdf.shard.ShardedBackend` whose segment files are
      mapped and checksum-verified on first touch.

    ``mode="mmap"`` (default) maps each file and hands the backend
    zero-copy ``memoryview`` columns — the triple index is never
    duplicated into process memory, and concurrent processes mapping the
    same file share one page-cache copy.  ``mode="copy"`` reads files
    once and builds owned ``array('q')`` columns (the pre-mmap behavior,
    kept as the cross-endian fallback and the equivalence reference).
    """
    if mode not in ("mmap", "copy"):
        raise ValueError(f"unknown snapshot load mode {mode!r} (mmap|copy)")
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(_MAGIC))
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if head == _MAGIC:
        return _load_single(path, mode)
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"not a compiled snapshot: {path}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != _MANIFEST_FORMAT:
        raise SnapshotError(f"not a compiled snapshot: {path}")
    return _load_sharded(path, manifest, mode)
