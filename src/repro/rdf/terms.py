"""RDF term model: IRIs, literals, and triples.

Terms are immutable and hashable so they can serve as dictionary keys and be
deduplicated by the term dictionary.  A :class:`Triple` is a plain
(subject, predicate, object) record; subjects and predicates are IRIs,
objects are IRIs or literals (the store enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class IRI:
    """An IRI reference, stored as its full lexical form.

    The mini knowledge bases in this project use compact ``ex:``-style names
    for readability; nothing in the store assumes a particular scheme.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("IRI value must be a non-empty string")

    def __str__(self) -> str:
        return self.value

    @property
    def local_name(self) -> str:
        """The part after the last '/', '#', or ':' — a readable short name."""
        value = self.value
        for sep in ("#", "/", ":"):
            if sep in value:
                value = value.rsplit(sep, 1)[1]
                break
        return value


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with optional datatype IRI and language tag.

    Only one of ``datatype`` / ``language`` may be set (RDF 1.1 semantics:
    language-tagged strings have the implicit rdf:langString datatype).
    """

    lexical: str
    datatype: IRI | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.language is not None:
            raise ValueError("a literal cannot have both a datatype and a language tag")

    def __str__(self) -> str:
        return self.lexical

    def to_python(self) -> object:
        """Best-effort conversion to a Python value based on the datatype.

        Unknown datatypes and plain literals come back as the lexical string.
        """
        from repro.rdf import vocab

        if self.datatype == vocab.XSD_INTEGER:
            return int(self.lexical)
        if self.datatype in (vocab.XSD_DECIMAL, vocab.XSD_DOUBLE):
            return float(self.lexical)
        if self.datatype == vocab.XSD_BOOLEAN:
            return self.lexical in ("true", "1")
        return self.lexical


Term = Union[IRI, Literal]


@dataclass(frozen=True, slots=True)
class Triple:
    """A single RDF statement."""

    subject: IRI
    predicate: IRI
    object: Term

    def __post_init__(self) -> None:
        if not isinstance(self.subject, IRI):
            raise TypeError(f"triple subject must be an IRI, got {type(self.subject).__name__}")
        if not isinstance(self.predicate, IRI):
            raise TypeError(
                f"triple predicate must be an IRI, got {type(self.predicate).__name__}"
            )
        if not isinstance(self.object, (IRI, Literal)):
            raise TypeError(
                f"triple object must be an IRI or Literal, got {type(self.object).__name__}"
            )

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def __str__(self) -> str:
        return f"({self.subject} {self.predicate} {self.object})"
