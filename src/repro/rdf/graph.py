"""Graph view over a :class:`TripleStore` for the matching/mining algorithms.

The paper treats the RDF dataset as a graph: subjects/objects are vertices,
predicates are edge labels.  :class:`KnowledgeGraph` exposes exactly the
operations the algorithms need —

* entity vs class vertices (Definition 3 condition 2: a vertex is a *class*
  if it has an incoming ``rdf:type`` or ``rdfs:subClassOf`` edge, per
  Section 2.2),
* typed neighbour expansion in both directions (Definition 3 condition 3
  accepts either edge orientation),
* direction-ignoring adjacency for the offline bidirectional BFS
  (Section 3 "we ignore edge directions in a BFS process"),
* labels for entity linking.

Predicate-path steps are encoded as signed integers: ``pid + 1`` for a step
that follows the edge direction, ``-(pid + 1)`` against it.  The +1 offset
keeps predicate id 0 representable in both directions.  (The encoding
helpers live in :mod:`repro.rdf.kernel` — the compact adjacency index that
backs every hot path here — and are re-exported for compatibility.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.rdf.kernel import (
    AdjacencyKernel,
    backward_step,
    forward_step,
    reverse_path,
    step_is_forward,
    step_predicate,
)
from repro.contracts import guarded_by
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Term

__all__ = [
    "AdjacencyKernel",
    "Direction",
    "Edge",
    "KnowledgeGraph",
    "backward_step",
    "encode_step",
    "forward_step",
    "reverse_path",
    "step_is_forward",
    "step_predicate",
]


class Direction(Enum):
    """Orientation of an edge relative to the node it was expanded from."""

    OUT = "out"
    IN = "in"

    def flipped(self) -> "Direction":
        return Direction.IN if self is Direction.OUT else Direction.OUT


@dataclass(frozen=True, slots=True)
class Edge:
    """One incident edge: its predicate, the far endpoint, and orientation."""

    predicate: int
    node: int
    direction: Direction


def encode_step(predicate_id: int, direction: Direction) -> int:
    if direction is Direction.OUT:
        return forward_step(predicate_id)
    return backward_step(predicate_id)


def _step_to_edge(step: int, node: int) -> Edge:
    if step > 0:
        return Edge(step - 1, node, Direction.OUT)
    return Edge(-step - 1, node, Direction.IN)


@guarded_by("_kernel_lock", "_kernel")
class KnowledgeGraph:
    """Algorithm-facing view of a triple store.

    Structural caches (the adjacency kernel, class set, label index,
    subclass closures) are built lazily on first use; call :meth:`refresh`
    after mutating the underlying store.
    """

    def __init__(self, store: TripleStore):
        self.store = store
        self._kernel_lock = threading.Lock()
        self._kernel: AdjacencyKernel | None = None
        self._class_ids: set[int] | None = None
        self._label_index: dict[int, str] | None = None
        self._literals_by_lexical: dict[str, set[int]] | None = None
        self._superclass_closure: dict[int, frozenset[int]] = {}
        self._subclass_closure: dict[int, frozenset[int]] = {}
        self._instances: dict[tuple[int, bool], frozenset[int]] = {}
        self._incident: dict[int, frozenset[tuple[int, Direction]]] = {}

    def refresh(self, incremental: bool = False) -> None:
        """Drop caches so they rebuild against the store's current contents.

        This also drops the adjacency kernel, which transitively invalidates
        everything hanging off it: the walk-path LRU, the incident-step
        signatures, and the mining scratch regions.

        ``incremental=True`` (the live-ingest path) replaces the kernel
        eagerly by *patching* the previous one — only rows for nodes the
        store reports as touched are rebuilt, the rest are reused by
        reference — instead of scheduling a cold rebuild.  Falls back to
        the cold build when the backend cannot report touched nodes or
        the structural vocabulary changed.  Callers must quiesce writers
        while this runs (the serve layer's ingest path serializes).
        """
        with self._kernel_lock:
            stale = self._kernel
            self._kernel = None
            if incremental and stale is not None:
                self._kernel = AdjacencyKernel(self.store, patch_from=stale)
        self._class_ids = None
        self._label_index = None
        self._literals_by_lexical = None
        self._superclass_closure = {}
        self._subclass_closure = {}
        self._instances = {}
        self._incident = {}

    def preload(
        self,
        *,
        kernel: AdjacencyKernel | None = None,
        class_ids: set[int] | None = None,
        label_index: dict[int, str] | None = None,
        superclass_closure: dict[int, frozenset[int]] | None = None,
        subclass_closure: dict[int, frozenset[int]] | None = None,
    ) -> None:
        """Install precomputed structural caches (compiled-snapshot load).

        The inverse of :meth:`refresh`: instead of dropping caches so they
        lazily rebuild, adopt ones that were computed at compile time
        against the same id-stable store.  Only the provided pieces are
        installed; everything else keeps its lazy-build behavior.
        """
        if kernel is not None:
            with self._kernel_lock:
                self._kernel = kernel
        if class_ids is not None:
            self._class_ids = class_ids
        if label_index is not None:
            self._label_index = label_index
        if superclass_closure is not None:
            self._superclass_closure = dict(superclass_closure)
        if subclass_closure is not None:
            self._subclass_closure = dict(subclass_closure)

    def closure_caches(self) -> tuple[dict[int, frozenset[int]], dict[int, frozenset[int]]]:
        """The (superclass, subclass) closure caches as built so far.

        The snapshot compiler forces these for every class id and then
        persists them; read-only views.
        """
        return self._superclass_closure, self._subclass_closure

    # ------------------------------------------------------------------ #
    # Kernel / vocabulary / id helpers
    # ------------------------------------------------------------------ #

    @property
    def kernel(self) -> AdjacencyKernel:
        """The compact adjacency index for the store's current version.

        Construction is guarded by a lock so concurrent first accesses (the
        serving layer answers questions from a thread pool) build exactly
        one kernel — two racing builds would each be correct but would
        split the walk-path LRU and the memoized signatures between them.
        """
        # Double-checked fast path: the one deliberate unlocked read.
        kernel = self._kernel  # lint: ignore[lock-discipline]
        if kernel is None:
            with self._kernel_lock:
                kernel = self._kernel
                if kernel is None:
                    kernel = self._kernel = AdjacencyKernel(self.store)
        return kernel

    @property
    def store_version(self) -> int:
        """The underlying store's mutation counter (see TripleStore.version)."""
        return self.store.version

    @property
    def structural_predicate_ids(self) -> frozenset[int]:
        return self.kernel.structural_predicate_ids

    def id_of(self, term: Term) -> int | None:
        return self.store.dictionary.lookup_or_none(term)

    def term_of(self, term_id: int) -> Term:
        return self.store.dictionary.decode(term_id)

    def iri_of(self, term_id: int) -> IRI:
        term = self.term_of(term_id)
        if not isinstance(term, IRI):
            raise TypeError(f"term id {term_id} is a literal, not an IRI")
        return term

    # ------------------------------------------------------------------ #
    # Entities and classes
    # ------------------------------------------------------------------ #

    @property
    def class_ids(self) -> set[int]:
        """Ids of class vertices.

        Following Section 2.2: a vertex is a class if it has an incoming
        ``rdf:type`` edge or appears in the ``rdfs:subClassOf`` hierarchy.
        """
        if self._class_ids is None:
            classes: set[int] = set()
            type_id = self.kernel.type_id
            if type_id is not None:
                classes.update(self.store.objects_of_predicate(type_id))
            sub_id = self.kernel.subclass_id
            if sub_id is not None:
                for sid, _pid, oid in self.store.triples_ids(p=sub_id):
                    classes.add(sid)
                    classes.add(oid)
            self._class_ids = classes
        return self._class_ids

    def is_class(self, node_id: int) -> bool:
        return node_id in self.class_ids

    def is_entity(self, node_id: int) -> bool:
        return (
            not self.store.is_literal_id(node_id)
            and node_id not in self.class_ids
        )

    def entity_ids(self) -> set[int]:
        """All non-class, non-literal graph nodes."""
        return {
            node_id
            for node_id in self.store.node_ids()
            if node_id not in self.class_ids
        }

    def types_of(self, entity_id: int) -> set[int]:
        """Direct ``rdf:type`` classes of an entity."""
        type_id = self.kernel.type_id
        if type_id is None:
            return set()
        return set(self.store.objects_ids(entity_id, type_id))

    def superclasses_of(self, class_id: int) -> frozenset[int]:
        """``rdfs:subClassOf`` closure of a class, including itself.

        Cached per class (and cycle-safe), so the transitive type test of
        Definition 3 condition 2 costs one set lookup after warm-up.
        """
        closure = self._superclass_closure.get(class_id)
        if closure is None:
            sub_id = self.kernel.subclass_id
            found = {class_id}
            if sub_id is not None:
                objects_ids = self.store.objects_ids
                frontier = [class_id]
                while frontier:
                    cls = frontier.pop()
                    for parent in objects_ids(cls, sub_id):
                        if parent not in found:
                            found.add(parent)
                            frontier.append(parent)
            closure = frozenset(found)
            self._superclass_closure[class_id] = closure
        return closure

    def types_of_transitive(self, entity_id: int) -> set[int]:
        """Classes of an entity, closed under ``rdfs:subClassOf``."""
        found: set[int] = set()
        for cls in self.types_of(entity_id):
            found |= self.superclasses_of(cls)
        return found

    def has_type(self, entity_id: int, class_id: int) -> bool:
        """Whether ``entity_id rdf:type class_id`` holds (with subclass closure).

        Single pass: each direct type's cached superclass closure already
        contains the type itself, so the direct and transitive checks
        collapse into one membership test per direct type.
        """
        type_id = self.kernel.type_id
        if type_id is None:
            return False
        for cls in self.store.objects_ids(entity_id, type_id):
            if cls == class_id or class_id in self.superclasses_of(cls):
                return True
        return False

    def subclasses_of(self, class_id: int) -> frozenset[int]:
        """``rdfs:subClassOf`` descendants of a class, including itself."""
        closure = self._subclass_closure.get(class_id)
        if closure is None:
            sub_id = self.kernel.subclass_id
            found = {class_id}
            if sub_id is not None:
                subjects_ids = self.store.subjects_ids
                frontier = [class_id]
                while frontier:
                    cls = frontier.pop()
                    for child in subjects_ids(sub_id, cls):
                        if child not in found:
                            found.add(child)
                            frontier.append(child)
            closure = frozenset(found)
            self._subclass_closure[class_id] = closure
        return closure

    def instances_of(self, class_id: int, transitive: bool = True) -> frozenset[int]:
        """Entities whose type is ``class_id`` (optionally via subclasses).

        Cached per (class, transitive) pair: class candidates are re-seeded
        for every exploration in the top-k search, so recomputing the
        instance set per seed dominated class-heavy queries.  The returned
        frozenset is shared — treat it as read-only.
        """
        cached = self._instances.get((class_id, transitive))
        if cached is not None:
            return cached
        type_id = self.kernel.type_id
        if type_id is None:
            instances: frozenset[int] = frozenset()
        else:
            classes = self.subclasses_of(class_id) if transitive else (class_id,)
            found: set[int] = set()
            for cls in classes:
                found |= self.store.subjects_ids(type_id, cls)
            instances = frozenset(found)
        self._instances[(class_id, transitive)] = instances
        return instances

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #

    @property
    def label_index(self) -> dict[int, str]:
        """node id → preferred rdfs:label lexical form (first one stored)."""
        if self._label_index is None:
            index: dict[int, str] = {}
            label_id = self.kernel.label_id
            if label_id is not None:
                for sid, _pid, oid in self.store.triples_ids(p=label_id):
                    if sid not in index:
                        term = self.store.dictionary.decode(oid)
                        index[sid] = str(term)
            self._label_index = index
        return self._label_index

    def label_of(self, node_id: int) -> str | None:
        """The node's rdfs:label, falling back to the IRI local name."""
        label = self.label_index.get(node_id)
        if label is not None:
            return label
        term = self.term_of(node_id)
        if isinstance(term, IRI):
            return term.local_name.replace("_", " ")
        return str(term)

    def all_labels(self, node_id: int) -> list[str]:
        """Every rdfs:label of the node (entity linking indexes all of them)."""
        label_id = self.kernel.label_id
        if label_id is None:
            return []
        decode = self.store.dictionary.decode
        return [
            str(decode(oid))
            for _s, _p, oid in self.store.triples_ids(s=node_id, p=label_id)
        ]

    def literal_ids_by_lexical(self, lexical: str) -> set[int]:
        """Ids of every stored literal with the given lexical form.

        Textual sources (relation-phrase support sets) carry values without
        datatypes; this lets them find the typed literals in the graph.
        """
        if self._literals_by_lexical is None:
            index: dict[str, set[int]] = {}
            decode = self.store.dictionary.decode
            for literal_id in self.store.iter_literal_ids():
                index.setdefault(str(decode(literal_id)), set()).add(literal_id)
            self._literals_by_lexical = index
        return set(self._literals_by_lexical.get(lexical, ()))

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #

    def edges(
        self,
        node_id: int,
        include_structural: bool = False,
        include_literals: bool = True,
    ) -> Iterator[Edge]:
        """All incident edges of a node, both orientations.

        The structural-free variants stream straight off the kernel's
        precomputed rows; ``include_structural=True`` is the cold path
        (linker salience only) and walks the store indexes.
        """
        if include_structural:
            yield from self._edges_with_structural(node_id, include_literals)
            return
        kernel = self.kernel
        row = kernel.entity_adjacency(node_id) if not include_literals \
            else kernel.adjacency(node_id)
        for step, node in zip(*row):
            yield _step_to_edge(step, node)

    def _edges_with_structural(
        self, node_id: int, include_literals: bool
    ) -> Iterator[Edge]:
        is_literal = self.store.is_literal_id
        for pid, objects in self.store.out_index(node_id).items():
            for oid in objects:
                if not include_literals and is_literal(oid):
                    continue
                yield Edge(pid, oid, Direction.OUT)
        for sid, preds in self.store.in_index(node_id).items():
            for pid in preds:
                yield Edge(pid, sid, Direction.IN)

    def undirected_neighbors(self, node_id: int) -> Iterator[Edge]:
        """Entity-to-entity adjacency for the offline path BFS.

        Skips structural predicates and literal endpoints: a predicate path
        through ``rdfs:label`` or a literal never denotes a domain relation.
        """
        for step, node in zip(*self.kernel.entity_adjacency(node_id)):
            yield _step_to_edge(step, node)

    def degree(self, node_id: int, include_structural: bool = False) -> int:
        if not include_structural:
            return self.kernel.degree(node_id)
        return sum(1 for _ in self._edges_with_structural(node_id, True))

    def incident_predicates(self, node_id: int) -> frozenset[tuple[int, Direction]]:
        """(predicate, direction) pairs incident to a node.

        This is the signature the neighborhood-based pruning of
        Section 4.2.2 checks: a candidate vertex without an adjacent
        predicate that some Q^S edge can map to cannot be in any match.
        Derived from the kernel's memoized signed-step signature; the
        returned frozenset is shared — treat it as read-only.
        """
        cached = self._incident.get(node_id)
        if cached is None:
            cached = frozenset(
                (step - 1, Direction.OUT) if step > 0 else (-step - 1, Direction.IN)
                for step in self.kernel.incident_steps(node_id)
            )
            self._incident[node_id] = cached
        return cached

    def walk_path(self, start_id: int, path: tuple[int, ...]) -> set[int]:
        """All nodes reachable from ``start_id`` by following a signed path.

        Used at match time to check a Q^S edge that was mapped to a
        multi-hop predicate path instead of a single predicate.  Delegates
        to the kernel's LRU-cached walker; the copy here keeps the public
        mutable-set contract, hot callers use ``kg.kernel.walk_path``.
        """
        return set(self.kernel.walk_path(start_id, path))

    def path_connects(self, start_id: int, end_id: int, path: tuple[int, ...]) -> bool:
        """Whether the signed path leads from ``start_id`` to ``end_id``."""
        return end_id in self.kernel.walk_path(start_id, path)
