"""Graph view over a :class:`TripleStore` for the matching/mining algorithms.

The paper treats the RDF dataset as a graph: subjects/objects are vertices,
predicates are edge labels.  :class:`KnowledgeGraph` exposes exactly the
operations the algorithms need —

* entity vs class vertices (Definition 3 condition 2: a vertex is a *class*
  if it has an incoming ``rdf:type`` or ``rdfs:subClassOf`` edge, per
  Section 2.2),
* typed neighbour expansion in both directions (Definition 3 condition 3
  accepts either edge orientation),
* direction-ignoring adjacency for the offline bidirectional BFS
  (Section 3 "we ignore edge directions in a BFS process"),
* labels for entity linking.

Predicate-path steps are encoded as signed integers: ``pid + 1`` for a step
that follows the edge direction, ``-(pid + 1)`` against it.  The +1 offset
keeps predicate id 0 representable in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.rdf import vocab
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Term


class Direction(Enum):
    """Orientation of an edge relative to the node it was expanded from."""

    OUT = "out"
    IN = "in"

    def flipped(self) -> "Direction":
        return Direction.IN if self is Direction.OUT else Direction.OUT


@dataclass(frozen=True, slots=True)
class Edge:
    """One incident edge: its predicate, the far endpoint, and orientation."""

    predicate: int
    node: int
    direction: Direction


# --------------------------------------------------------------------- #
# Signed path-step encoding
# --------------------------------------------------------------------- #

def forward_step(predicate_id: int) -> int:
    """Encode a step that traverses ``predicate_id`` subject→object."""
    return predicate_id + 1


def backward_step(predicate_id: int) -> int:
    """Encode a step that traverses ``predicate_id`` object→subject."""
    return -(predicate_id + 1)


def step_predicate(step: int) -> int:
    """The predicate id of a signed step."""
    return abs(step) - 1


def step_is_forward(step: int) -> bool:
    return step > 0


def encode_step(predicate_id: int, direction: Direction) -> int:
    if direction is Direction.OUT:
        return forward_step(predicate_id)
    return backward_step(predicate_id)


def reverse_path(path: tuple[int, ...]) -> tuple[int, ...]:
    """The same predicate path walked from the far endpoint back."""
    return tuple(-step for step in reversed(path))


class KnowledgeGraph:
    """Algorithm-facing view of a triple store.

    Structural caches (class set, label index, structural predicate ids) are
    built lazily on first use; call :meth:`refresh` after mutating the
    underlying store.
    """

    def __init__(self, store: TripleStore):
        self.store = store
        self._class_ids: set[int] | None = None
        self._label_index: dict[int, str] | None = None
        self._structural_pred_ids: set[int] | None = None
        self._literals_by_lexical: dict[str, set[int]] | None = None

    def refresh(self) -> None:
        """Drop caches so they rebuild against the store's current contents."""
        self._class_ids = None
        self._label_index = None
        self._structural_pred_ids = None
        self._literals_by_lexical = None

    # ------------------------------------------------------------------ #
    # Vocabulary / id helpers
    # ------------------------------------------------------------------ #

    @property
    def structural_predicate_ids(self) -> set[int]:
        if self._structural_pred_ids is None:
            lookup = self.store.dictionary.lookup_or_none
            ids = (lookup(pred) for pred in vocab.STRUCTURAL_PREDICATES)
            self._structural_pred_ids = {pid for pid in ids if pid is not None}
        return self._structural_pred_ids

    def id_of(self, term: Term) -> int | None:
        return self.store.dictionary.lookup_or_none(term)

    def term_of(self, term_id: int) -> Term:
        return self.store.dictionary.decode(term_id)

    def iri_of(self, term_id: int) -> IRI:
        term = self.term_of(term_id)
        if not isinstance(term, IRI):
            raise TypeError(f"term id {term_id} is a literal, not an IRI")
        return term

    # ------------------------------------------------------------------ #
    # Entities and classes
    # ------------------------------------------------------------------ #

    @property
    def class_ids(self) -> set[int]:
        """Ids of class vertices.

        Following Section 2.2: a vertex is a class if it has an incoming
        ``rdf:type`` edge or appears in the ``rdfs:subClassOf`` hierarchy.
        """
        if self._class_ids is None:
            classes: set[int] = set()
            type_id = self.id_of(vocab.RDF_TYPE)
            if type_id is not None:
                classes.update(self.store._pos.get(type_id, {}).keys())
            sub_id = self.id_of(vocab.RDFS_SUBCLASSOF)
            if sub_id is not None:
                for sid, pid, oid in self.store.triples_ids(p=sub_id):
                    classes.add(sid)
                    classes.add(oid)
            self._class_ids = classes
        return self._class_ids

    def is_class(self, node_id: int) -> bool:
        return node_id in self.class_ids

    def is_entity(self, node_id: int) -> bool:
        return (
            not self.store.is_literal_id(node_id)
            and node_id not in self.class_ids
        )

    def entity_ids(self) -> set[int]:
        """All non-class, non-literal graph nodes."""
        return {
            node_id
            for node_id in self.store.node_ids()
            if node_id not in self.class_ids
        }

    def types_of(self, entity_id: int) -> set[int]:
        """Direct ``rdf:type`` classes of an entity."""
        type_id = self.id_of(vocab.RDF_TYPE)
        if type_id is None:
            return set()
        return set(self.store._spo.get(entity_id, {}).get(type_id, ()))

    def types_of_transitive(self, entity_id: int) -> set[int]:
        """Classes of an entity, closed under ``rdfs:subClassOf``."""
        found = self.types_of(entity_id)
        frontier = list(found)
        sub_id = self.id_of(vocab.RDFS_SUBCLASSOF)
        if sub_id is None:
            return found
        while frontier:
            cls = frontier.pop()
            for parent in self.store._spo.get(cls, {}).get(sub_id, ()):
                if parent not in found:
                    found.add(parent)
                    frontier.append(parent)
        return found

    def has_type(self, entity_id: int, class_id: int) -> bool:
        """Whether ``entity_id rdf:type class_id`` holds (with subclass closure)."""
        if class_id in self.types_of(entity_id):
            return True
        return class_id in self.types_of_transitive(entity_id)

    def instances_of(self, class_id: int, transitive: bool = True) -> set[int]:
        """Entities whose type is ``class_id`` (optionally via subclasses)."""
        type_id = self.id_of(vocab.RDF_TYPE)
        if type_id is None:
            return set()
        classes = {class_id}
        if transitive:
            sub_id = self.id_of(vocab.RDFS_SUBCLASSOF)
            if sub_id is not None:
                frontier = [class_id]
                while frontier:
                    cls = frontier.pop()
                    for child in self.store._pos.get(sub_id, {}).get(cls, ()):
                        if child not in classes:
                            classes.add(child)
                            frontier.append(child)
        instances: set[int] = set()
        for cls in classes:
            instances.update(self.store._pos.get(type_id, {}).get(cls, ()))
        return instances

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #

    @property
    def label_index(self) -> dict[int, str]:
        """node id → preferred rdfs:label lexical form (first one stored)."""
        if self._label_index is None:
            index: dict[int, str] = {}
            label_id = self.id_of(vocab.RDFS_LABEL)
            if label_id is not None:
                for sid, _pid, oid in self.store.triples_ids(p=label_id):
                    if sid not in index:
                        term = self.store.dictionary.decode(oid)
                        index[sid] = str(term)
            self._label_index = index
        return self._label_index

    def label_of(self, node_id: int) -> str | None:
        """The node's rdfs:label, falling back to the IRI local name."""
        label = self.label_index.get(node_id)
        if label is not None:
            return label
        term = self.term_of(node_id)
        if isinstance(term, IRI):
            return term.local_name.replace("_", " ")
        return str(term)

    def all_labels(self, node_id: int) -> list[str]:
        """Every rdfs:label of the node (entity linking indexes all of them)."""
        label_id = self.id_of(vocab.RDFS_LABEL)
        if label_id is None:
            return []
        decode = self.store.dictionary.decode
        return [
            str(decode(oid))
            for _s, _p, oid in self.store.triples_ids(s=node_id, p=label_id)
        ]

    def literal_ids_by_lexical(self, lexical: str) -> set[int]:
        """Ids of every stored literal with the given lexical form.

        Textual sources (relation-phrase support sets) carry values without
        datatypes; this lets them find the typed literals in the graph.
        """
        if self._literals_by_lexical is None:
            index: dict[str, set[int]] = {}
            for literal_id in self.store._literal_ids:
                term = self.store.dictionary.decode(literal_id)
                index.setdefault(str(term), set()).add(literal_id)
            self._literals_by_lexical = index
        return set(self._literals_by_lexical.get(lexical, ()))

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #

    def edges(
        self,
        node_id: int,
        include_structural: bool = False,
        include_literals: bool = True,
    ) -> Iterator[Edge]:
        """All incident edges of a node, both orientations."""
        skip = () if include_structural else self.structural_predicate_ids
        for pid, objects in self.store._spo.get(node_id, {}).items():
            if pid in skip:
                continue
            for oid in objects:
                if not include_literals and self.store.is_literal_id(oid):
                    continue
                yield Edge(pid, oid, Direction.OUT)
        for sid, preds in self.store._osp.get(node_id, {}).items():
            for pid in preds:
                if pid in skip:
                    continue
                yield Edge(pid, sid, Direction.IN)

    def undirected_neighbors(self, node_id: int) -> Iterator[Edge]:
        """Entity-to-entity adjacency for the offline path BFS.

        Skips structural predicates and literal endpoints: a predicate path
        through ``rdfs:label`` or a literal never denotes a domain relation.
        """
        for edge in self.edges(node_id, include_structural=False, include_literals=False):
            yield edge

    def degree(self, node_id: int, include_structural: bool = False) -> int:
        return sum(1 for _ in self.edges(node_id, include_structural=include_structural))

    def incident_predicates(self, node_id: int) -> set[tuple[int, Direction]]:
        """(predicate, direction) pairs incident to a node.

        This is the signature the neighborhood-based pruning of
        Section 4.2.2 checks: a candidate vertex without an adjacent
        predicate that some Q^S edge can map to cannot be in any match.
        """
        return {
            (edge.predicate, edge.direction)
            for edge in self.edges(node_id, include_structural=False)
        }

    def walk_path(self, start_id: int, path: tuple[int, ...]) -> set[int]:
        """All nodes reachable from ``start_id`` by following a signed path.

        Used at match time to check a Q^S edge that was mapped to a
        multi-hop predicate path instead of a single predicate.
        """
        frontier = {start_id}
        for step in path:
            pid = step_predicate(step)
            next_frontier: set[int] = set()
            if step_is_forward(step):
                for node in frontier:
                    next_frontier.update(self.store._spo.get(node, {}).get(pid, ()))
            else:
                for node in frontier:
                    next_frontier.update(self.store._pos.get(pid, {}).get(node, ()))
            if not next_frontier:
                return set()
            frontier = next_frontier
        return frontier

    def path_connects(self, start_id: int, end_id: int, path: tuple[int, ...]) -> bool:
        """Whether the signed path leads from ``start_id`` to ``end_id``."""
        return end_id in self.walk_path(start_id, path)
