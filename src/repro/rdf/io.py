"""File-level load/save for triple stores.

Convenience wrappers over the N-Triples parser/serializer so a knowledge
base round-trips through a single file — the adoption path for users with
their own data (see ``examples/custom_knowledge_base.py``).
"""

from __future__ import annotations

from pathlib import Path

from repro.rdf.graph import KnowledgeGraph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.store import TripleStore


def load_store(path: str | Path, compact: bool = False) -> TripleStore:
    """Load a triple store from an N-Triples file.

    ``compact=True`` re-encodes the loaded store onto the read-optimized
    sorted-column backend (see :mod:`repro.rdf.backend`) — frozen, much
    smaller, and faster to scan.  Use it for read-only workloads such as
    serving; leave it off when the store will be mutated afterwards.
    """
    text = Path(path).read_text(encoding="utf-8")
    store = TripleStore()
    store.add_all(parse_ntriples(text))
    return store.compacted() if compact else store


def load_knowledge_graph(path: str | Path, compact: bool = False) -> KnowledgeGraph:
    """Load a knowledge graph (store + algorithm view) from N-Triples."""
    return KnowledgeGraph(load_store(path, compact=compact))


def save_store(store: TripleStore, path: str | Path) -> int:
    """Write a store to an N-Triples file; returns the triple count.

    Triples are sorted for deterministic, diff-friendly output.
    """
    triples = sorted(
        store.triples(),
        key=lambda t: (t.subject.value, t.predicate.value, str(t.object)),
    )
    Path(path).write_text(serialize_ntriples(triples), encoding="utf-8")
    return len(triples)
