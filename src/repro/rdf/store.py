"""Triple store facade over a pluggable storage backend.

The store answers any triple pattern with one or two bound positions by a
direct seek instead of a scan, via three permutation indexes (SPO, POS,
OSP).  The physical index layout is a :class:`repro.rdf.backend.
StoreBackend` chosen per workload:

* the default :class:`~repro.rdf.backend.DictBackend` is mutable —
  the right shape while triples stream in during build/mining;
* :class:`~repro.rdf.backend.CompactBackend` (see :meth:`TripleStore.
  compacted`) is a frozen, sorted-column layout for serve-time replicas
  and the compiled-snapshot format;
* :class:`~repro.rdf.shard.ShardedBackend` (see :meth:`TripleStore.
  sharded`) hash-partitions the triples by subject into K frozen compact
  segments — the layout for graphs past one segment's RAM budget, with
  per-segment snapshot files loaded on demand.

The public API accepts and returns :class:`Triple` objects with real
terms; the ``*_ids`` methods expose the integer layer that the matching
and mining algorithms use directly.  All mutation goes through
:meth:`add`/:meth:`remove`; frozen backends raise
:class:`~repro.exceptions.StoreFrozenError`.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Mapping

from repro.exceptions import StoreFrozenError
from repro.rdf.backend import CompactBackend, DictBackend, StoreBackend
from repro.rdf.dictionary import TermDictionary
from repro.rdf.overlay import OverlayBackend
from repro.rdf.shard import ShardedBackend
from repro.rdf.terms import IRI, Literal, Term, Triple

_IdTriple = tuple[int, int, int]


class TripleStore:
    """An in-memory, dictionary-encoded RDF triple store.

    Parameters
    ----------
    backend:
        The physical index (defaults to a fresh mutable
        :class:`~repro.rdf.backend.DictBackend`).
    dictionary:
        The term dictionary to encode against.  Sharing one between
        stores keeps ids stable — how :meth:`compacted` and the snapshot
        loader preserve every id-indexed side structure.
    literal_ids:
        The ids of literal terms already present in ``backend``.
    """

    def __init__(
        self,
        backend: StoreBackend | None = None,
        dictionary: TermDictionary | None = None,
        literal_ids: Iterable[int] | None = None,
    ) -> None:
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self._backend: StoreBackend = backend if backend is not None else DictBackend()
        self._literal_ids: set[int] = set(literal_ids) if literal_ids is not None else set()

    @property
    def backend(self) -> StoreBackend:
        """The physical index this facade delegates to (read-only handle)."""
        return self._backend

    @property
    def writable(self) -> bool:
        return self._backend.writable

    @property
    def version(self) -> int:
        """Monotone mutation counter: bumps on every successful add/remove.

        Anything derived from the store's contents — the adjacency kernel,
        the serving layer's answer cache — keys or stamps itself with this
        value, so a stale derivation is detectable by a plain int compare.
        A frozen (compacted/snapshot-loaded) store keeps the version it
        was built from.
        """
        return self._backend.version

    def compacted(self) -> "TripleStore":
        """A frozen, read-optimized copy of this store.

        The term dictionary is *shared* (ids stay stable, so every mined
        path, kernel row, and index entry keyed by id remains valid) and
        the triples are re-laid-out into a
        :class:`~repro.rdf.backend.CompactBackend`.  The copy carries the
        current version forward.
        """
        backend = CompactBackend.from_triples(
            self._backend.triples_ids(), version=self._backend.version
        )
        return TripleStore(
            backend=backend,
            dictionary=self.dictionary,
            literal_ids=self._literal_ids,
        )

    def sharded(self, shards: int, jobs: int = 1) -> "TripleStore":
        """A frozen copy partitioned into ``shards`` compact segments.

        Like :meth:`compacted` — shared dictionary, stable ids, version
        carried forward — but the physical index is a
        :class:`~repro.rdf.shard.ShardedBackend`: triples hash-partitioned
        by subject into K frozen segments with merged read views.
        ``jobs > 1`` builds segments across a fork pool (0 = one per CPU);
        the result is identical at any job count.
        """
        backend = ShardedBackend.from_triples(
            self._backend.triples_ids(),
            shards=shards,
            version=self._backend.version,
            jobs=jobs,
        )
        return TripleStore(
            backend=backend,
            dictionary=self.dictionary,
            literal_ids=self._literal_ids,
        )

    def overlay(self) -> "TripleStore":
        """A writable overlay store over this store's frozen backend.

        The base must already be frozen (``compacted()``, ``sharded()``,
        or snapshot-loaded); the overlay captures it read-only and layers
        a mutable delta plus tombstones on top — see
        :class:`~repro.rdf.overlay.OverlayBackend`.  Dictionary shared,
        version carried forward, literal bookkeeping copied.
        """
        return TripleStore(
            backend=OverlayBackend(self._backend),
            dictionary=self.dictionary,
            literal_ids=self._literal_ids,
        )

    def swap_backend(self, backend: StoreBackend) -> None:
        """Atomically replace the physical index with an equivalent one.

        This is the in-process compaction swap: the caller compacts
        base+delta into a fresh frozen backend (optionally a new overlay
        over it) holding *identical* content at the *same* version, then
        swaps it in under live readers.  In-flight iterators keep the old
        backend alive until they finish (its mmap is released when the
        last reference drains); new reads bind the new backend.  Length
        and version must match — content equivalence is the caller's
        contract, these two are the cheap guards on it.
        """
        if len(backend) != len(self._backend):
            raise ValueError(
                f"swap_backend size mismatch: {len(backend)} != "
                f"{len(self._backend)} triples"
            )
        if backend.version < self._backend.version:
            raise ValueError(
                f"swap_backend would rewind version "
                f"{self._backend.version} -> {backend.version}"
            )
        self._backend = backend

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Triple) -> bool:
        """Insert a triple.  Returns True if it was new, False if present."""
        if not self._backend.writable:
            raise StoreFrozenError("cannot add to a frozen store")
        s = self.dictionary.encode(triple.subject)
        p = self.dictionary.encode(triple.predicate)
        o = self.dictionary.encode(triple.object)
        if isinstance(triple.object, Literal):
            self._literal_ids.add(o)
        return self._backend.add(s, p, o)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number that were new.

        Bulk fast path: terms are encoded and literals booked in one pass
        here, then the id triples go to the backend's ``add_all_ids``
        (one lock acquisition on an overlay, still one version bump per
        new triple).
        """
        if not self._backend.writable:
            raise StoreFrozenError("cannot add to a frozen store")
        encode = self.dictionary.encode
        literal_ids = self._literal_ids
        encoded: list[_IdTriple] = []
        for triple in triples:
            o = encode(triple.object)
            if isinstance(triple.object, Literal):
                literal_ids.add(o)
            encoded.append((encode(triple.subject), encode(triple.predicate), o))
        return self._backend.add_all_ids(encoded)

    def remove(self, triple: Triple) -> bool:
        """Delete a triple.  Returns True if it was present."""
        if not self._backend.writable:
            raise StoreFrozenError("cannot remove from a frozen store")
        s = self.dictionary.lookup_or_none(triple.subject)
        p = self.dictionary.lookup_or_none(triple.predicate)
        o = self.dictionary.lookup_or_none(triple.object)
        if s is None or p is None or o is None:
            return False
        removed = self._backend.remove(s, p, o)
        # A literal only exists as an object; once its OSP row empties no
        # triple mentions it and the literal bookkeeping must forget it,
        # or is_literal_id/literal_count/statistics report stale literals.
        if removed and o in self._literal_ids and not self._backend.in_index(o):
            self._literal_ids.discard(o)
        return removed

    # ------------------------------------------------------------------ #
    # Size / membership
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._backend)

    def __contains__(self, triple: Triple) -> bool:
        s = self.dictionary.lookup_or_none(triple.subject)
        p = self.dictionary.lookup_or_none(triple.predicate)
        o = self.dictionary.lookup_or_none(triple.object)
        if s is None or p is None or o is None:
            return False
        return self._backend.contains(s, p, o)

    def contains_ids(self, s: int, p: int, o: int) -> bool:
        return self._backend.contains(s, p, o)

    def is_literal_id(self, term_id: int) -> bool:
        return term_id in self._literal_ids

    # ------------------------------------------------------------------ #
    # Pattern matching
    # ------------------------------------------------------------------ #

    def triples(
        self,
        subject: IRI | None = None,
        predicate: IRI | None = None,
        object: Term | None = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching a pattern; None positions are wildcards."""
        s = self._bound_id(subject)
        p = self._bound_id(predicate)
        o = self._bound_id(object)
        if -1 in (s, p, o):  # a bound term that was never stored matches nothing
            return
        decode = self.dictionary.decode
        for sid, pid, oid in self._backend.triples_ids(s, p, o):
            yield Triple(decode(sid), decode(pid), decode(oid))

    def _bound_id(self, term: Term | None) -> int | None:
        """Map a pattern position to an id; -1 marks an unknown bound term."""
        if term is None:
            return None
        found = self.dictionary.lookup_or_none(term)
        return -1 if found is None else found

    def triples_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[_IdTriple]:
        """Iterate id triples matching a pattern of optional bound ids."""
        return self._backend.triples_ids(s, p, o)

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        """Number of triples matching an id pattern (O(1)/O(log n) for
        common shapes, depending on the backend)."""
        return self._backend.count(s, p, o)

    # ------------------------------------------------------------------ #
    # Read-only index views
    # ------------------------------------------------------------------ #
    #
    # These expose the permutation indexes at the id layer without leaking
    # the backend's physical layout: callers get read-only *views* that
    # must not be mutated.  The adjacency kernel and the graph view build
    # their caches from these instead of reaching into backend internals.

    def objects_ids(self, s: int, p: int) -> AbstractSet[int]:
        """Objects of ``(s, p, ?)`` — a read-only view, possibly empty."""
        return self._backend.objects_ids(s, p)

    def subjects_ids(self, p: int, o: int) -> AbstractSet[int]:
        """Subjects of ``(?, p, o)`` — a read-only view, possibly empty."""
        return self._backend.subjects_ids(p, o)

    def out_index(self, s: int) -> Mapping[int, AbstractSet[int]]:
        """The SPO row of a subject: predicate → object set (read-only)."""
        return self._backend.out_index(s)

    def in_index(self, o: int) -> Mapping[int, AbstractSet[int]]:
        """The OSP row of an object: subject → predicate set (read-only)."""
        return self._backend.in_index(o)

    def objects_of_predicate(self, p: int) -> Iterator[int]:
        """Distinct object ids appearing with predicate ``p``."""
        return self._backend.objects_of_predicate(p)

    def iter_out_rows(self) -> Iterator[tuple[int, Mapping[int, AbstractSet[int]]]]:
        """Every subject's SPO row: ``(subject, predicate → object set)``.

        The bulk form of :meth:`out_index` — one pass over the whole graph
        grouped by subject, so a consumer (the adjacency kernel build)
        amortizes per-subject work over all its triples.  Rows are
        read-only views.
        """
        return self._backend.iter_out_rows()

    def iter_literal_ids(self) -> Iterator[int]:
        """Ids of every stored literal term."""
        return iter(self._literal_ids)

    def literal_count(self) -> int:
        return len(self._literal_ids)

    # ------------------------------------------------------------------ #
    # Vocabulary accessors
    # ------------------------------------------------------------------ #

    def subject_ids(self) -> Iterator[int]:
        return self._backend.subject_ids()

    def predicate_ids(self) -> Iterator[int]:
        return self._backend.predicate_ids()

    def object_ids(self) -> Iterator[int]:
        return self._backend.object_ids()

    def subjects(self) -> Iterator[Term]:
        return (self.dictionary.decode(sid) for sid in self._backend.subject_ids())

    def predicates(self) -> Iterator[Term]:
        return (self.dictionary.decode(pid) for pid in self._backend.predicate_ids())

    def objects(self) -> Iterator[Term]:
        return (self.dictionary.decode(oid) for oid in self._backend.object_ids())

    def node_ids(self) -> set[int]:
        """Ids of all graph nodes (subjects and non-literal objects)."""
        nodes = set(self._backend.subject_ids())
        nodes.update(
            oid for oid in self._backend.object_ids() if oid not in self._literal_ids
        )
        return nodes

    def statistics(self) -> dict[str, int]:
        """Headline dataset statistics, in the shape of the paper's Table 4."""
        return {
            "triples": len(self._backend),
            "nodes": len(self.node_ids()),
            "predicates": sum(1 for _ in self._backend.predicate_ids()),
            "literals": len(self._literal_ids),
        }
