"""Triple store with three permutation indexes over dictionary-encoded ids.

The store keeps SPO, POS, and OSP indexes as two-level dicts of sets, which
answers any triple pattern with one or two bound positions by a direct seek
instead of a scan.  This is the standard index layout of native RDF stores
(e.g. gStore, RDF-3X keep the full set of permutations; three suffice here
because each pattern shape has at least one index whose prefix is bound).

All mutation goes through :meth:`add`; the store is append-only except for
:meth:`remove`, which the paraphrase-dictionary maintenance tests exercise.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Mapping

from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import IRI, Literal, Term, Triple

_IdTriple = tuple[int, int, int]

#: Shared empty views returned by the read-only accessors below; callers
#: treat every returned set/mapping as immutable, so one instance suffices.
_EMPTY_SET: frozenset[int] = frozenset()
_EMPTY_MAP: dict[int, frozenset[int]] = {}


class TripleStore:
    """An in-memory, dictionary-encoded RDF triple store.

    The public API accepts and returns :class:`Triple` objects with real
    terms; the ``*_ids`` methods expose the integer layer that the matching
    and mining algorithms use directly.
    """

    def __init__(self) -> None:
        self.dictionary = TermDictionary()
        self._spo: dict[int, dict[int, set[int]]] = {}
        self._pos: dict[int, dict[int, set[int]]] = {}
        self._osp: dict[int, dict[int, set[int]]] = {}
        self._size = 0
        self._literal_ids: set[int] = set()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone mutation counter: bumps on every successful add/remove.

        Anything derived from the store's contents — the adjacency kernel,
        the serving layer's answer cache — keys or stamps itself with this
        value, so a stale derivation is detectable by a plain int compare.
        """
        return self._version

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Triple) -> bool:
        """Insert a triple.  Returns True if it was new, False if present."""
        s = self.dictionary.encode(triple.subject)
        p = self.dictionary.encode(triple.predicate)
        o = self.dictionary.encode(triple.object)
        if isinstance(triple.object, Literal):
            self._literal_ids.add(o)
        return self._add_ids(s, p, o)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number that were new."""
        return sum(1 for triple in triples if self.add(triple))

    def _add_ids(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        self._version += 1
        return True

    def remove(self, triple: Triple) -> bool:
        """Delete a triple.  Returns True if it was present."""
        s = self.dictionary.lookup_or_none(triple.subject)
        p = self.dictionary.lookup_or_none(triple.predicate)
        o = self.dictionary.lookup_or_none(triple.object)
        if s is None or p is None or o is None:
            return False
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        objects.discard(o)
        self._pos[p][o].discard(s)
        self._osp[o][s].discard(p)
        self._prune_empty(self._spo, s, p)
        self._prune_empty(self._pos, p, o)
        self._prune_empty(self._osp, o, s)
        self._size -= 1
        self._version += 1
        return True

    @staticmethod
    def _prune_empty(index: dict[int, dict[int, set[int]]], outer: int, inner: int) -> None:
        level = index.get(outer)
        if level is None:
            return
        if not level.get(inner):
            level.pop(inner, None)
        if not level:
            index.pop(outer, None)

    # ------------------------------------------------------------------ #
    # Size / membership
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        s = self.dictionary.lookup_or_none(triple.subject)
        p = self.dictionary.lookup_or_none(triple.predicate)
        o = self.dictionary.lookup_or_none(triple.object)
        if s is None or p is None or o is None:
            return False
        return o in self._spo.get(s, {}).get(p, ())

    def contains_ids(self, s: int, p: int, o: int) -> bool:
        return o in self._spo.get(s, {}).get(p, ())

    def is_literal_id(self, term_id: int) -> bool:
        return term_id in self._literal_ids

    # ------------------------------------------------------------------ #
    # Pattern matching
    # ------------------------------------------------------------------ #

    def triples(
        self,
        subject: IRI | None = None,
        predicate: IRI | None = None,
        object: Term | None = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching a pattern; None positions are wildcards."""
        s = self._bound_id(subject)
        p = self._bound_id(predicate)
        o = self._bound_id(object)
        if -1 in (s, p, o):  # a bound term that was never stored matches nothing
            return
        decode = self.dictionary.decode
        for sid, pid, oid in self.triples_ids(s, p, o):
            yield Triple(decode(sid), decode(pid), decode(oid))

    def _bound_id(self, term: Term | None) -> int | None:
        """Map a pattern position to an id; -1 marks an unknown bound term."""
        if term is None:
            return None
        found = self.dictionary.lookup_or_none(term)
        return -1 if found is None else found

    def triples_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[_IdTriple]:
        """Iterate id triples matching a pattern of optional bound ids.

        Chooses the index whose prefix covers the bound positions so every
        shape is answered by direct dict seeks plus one innermost loop.
        """
        if s is not None:
            by_pred = self._spo.get(s, {})
            if p is not None:
                objects = by_pred.get(p, ())
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                else:
                    for oid in objects:
                        yield (s, p, oid)
            elif o is not None:
                for pid in self._osp.get(o, {}).get(s, ()):
                    yield (s, pid, o)
            else:
                for pid, objects in by_pred.items():
                    for oid in objects:
                        yield (s, pid, oid)
        elif p is not None:
            by_obj = self._pos.get(p, {})
            if o is not None:
                for sid in by_obj.get(o, ()):
                    yield (sid, p, o)
            else:
                for oid, subjects in by_obj.items():
                    for sid in subjects:
                        yield (sid, p, oid)
        elif o is not None:
            for sid, preds in self._osp.get(o, {}).items():
                for pid in preds:
                    yield (sid, pid, o)
        else:
            for sid, by_pred in self._spo.items():
                for pid, objects in by_pred.items():
                    for oid in objects:
                        yield (sid, pid, oid)

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        """Number of triples matching an id pattern (O(1) for common shapes)."""
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        return sum(1 for _ in self.triples_ids(s, p, o))

    # ------------------------------------------------------------------ #
    # Read-only index views
    # ------------------------------------------------------------------ #
    #
    # These expose the permutation indexes at the id layer without leaking
    # the private dict-of-dict-of-set layout: callers get live *views* that
    # must not be mutated.  The adjacency kernel and the graph view build
    # their caches from these instead of reaching into ``_spo``/``_pos``/
    # ``_osp``/``_literal_ids`` directly.

    def objects_ids(self, s: int, p: int) -> AbstractSet[int]:
        """Objects of ``(s, p, ?)`` — a read-only view, possibly empty."""
        return self._spo.get(s, _EMPTY_MAP).get(p, _EMPTY_SET)

    def subjects_ids(self, p: int, o: int) -> AbstractSet[int]:
        """Subjects of ``(?, p, o)`` — a read-only view, possibly empty."""
        return self._pos.get(p, _EMPTY_MAP).get(o, _EMPTY_SET)

    def out_index(self, s: int) -> Mapping[int, AbstractSet[int]]:
        """The SPO row of a subject: predicate → object set (read-only)."""
        return self._spo.get(s, _EMPTY_MAP)

    def in_index(self, o: int) -> Mapping[int, AbstractSet[int]]:
        """The OSP row of an object: subject → predicate set (read-only)."""
        return self._osp.get(o, _EMPTY_MAP)

    def objects_of_predicate(self, p: int) -> Iterator[int]:
        """Distinct object ids appearing with predicate ``p``."""
        return iter(self._pos.get(p, _EMPTY_MAP))

    def iter_out_rows(self) -> Iterator[tuple[int, Mapping[int, AbstractSet[int]]]]:
        """Every subject's SPO row: ``(subject, predicate → object set)``.

        The bulk form of :meth:`out_index` — one pass over the whole graph
        grouped by subject, so a consumer (the adjacency kernel build)
        amortizes per-subject work over all its triples.  Rows are
        read-only views.
        """
        return iter(self._spo.items())

    def iter_literal_ids(self) -> Iterator[int]:
        """Ids of every stored literal term."""
        return iter(self._literal_ids)

    def literal_count(self) -> int:
        return len(self._literal_ids)

    # ------------------------------------------------------------------ #
    # Vocabulary accessors
    # ------------------------------------------------------------------ #

    def subject_ids(self) -> Iterator[int]:
        return iter(self._spo)

    def predicate_ids(self) -> Iterator[int]:
        return iter(self._pos)

    def object_ids(self) -> Iterator[int]:
        return iter(self._osp)

    def subjects(self) -> Iterator[Term]:
        return (self.dictionary.decode(sid) for sid in self._spo)

    def predicates(self) -> Iterator[Term]:
        return (self.dictionary.decode(pid) for pid in self._pos)

    def objects(self) -> Iterator[Term]:
        return (self.dictionary.decode(oid) for oid in self._osp)

    def node_ids(self) -> set[int]:
        """Ids of all graph nodes (subjects and non-literal objects)."""
        nodes = set(self._spo)
        nodes.update(oid for oid in self._osp if oid not in self._literal_ids)
        return nodes

    def statistics(self) -> dict[str, int]:
        """Headline dataset statistics, in the shape of the paper's Table 4."""
        return {
            "triples": self._size,
            "nodes": len(self.node_ids()),
            "predicates": len(self._pos),
            "literals": len(self._literal_ids),
        }
