"""Evaluation: QALD metrics, the end-to-end harness, and table formatting.

Implements the scoring used in Section 6.3: per-question precision/recall/
F1 against the gold standard, QALD-3 macro-averaging over all questions,
the right/partial counts of Table 8, and the failure classification of
Table 10.
"""

from repro.eval.metrics import (
    QuestionScore,
    classify_failure,
    question_score,
    summarize,
)
from repro.eval.harness import EvaluationRun, QuestionOutcome, evaluate_system
from repro.eval.reporting import format_table

__all__ = [
    "QuestionScore",
    "classify_failure",
    "question_score",
    "summarize",
    "EvaluationRun",
    "QuestionOutcome",
    "evaluate_system",
    "format_table",
]
