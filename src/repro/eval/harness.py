"""End-to-end evaluation harness: run a QA system over a question set.

A *system* is anything with an ``answer(question_text) -> Answer``-shaped
method returning per-question answers, an optional boolean, per-stage
timings, and a failure tag — :class:`repro.core.GAnswer` and the DEANNA
baseline both qualify.  The harness scores every question against the
gold standard and aggregates Table 8 / Table 10 / Figure 6 material.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro import obs
from repro.datasets.qald import QALDQuestion
from repro.eval.metrics import (
    QuestionScore,
    Summary,
    classify_failure,
    question_score,
    summarize,
)


class AnswerLike(Protocol):
    answers: list
    boolean: bool | None
    failure: str | None
    understanding_time: float
    evaluation_time: float


class SystemLike(Protocol):
    def answer(self, question: str) -> AnswerLike: ...


@dataclass(slots=True)
class QuestionOutcome:
    """Everything recorded for one question in one run."""

    question: QALDQuestion
    score: QuestionScore
    failure_class: str | None
    understanding_time: float
    evaluation_time: float
    answers: list = field(default_factory=list)
    boolean: bool | None = None
    pipeline_failure: str | None = None

    @property
    def total_time(self) -> float:
        return self.understanding_time + self.evaluation_time


@dataclass(slots=True)
class EvaluationRun:
    """A full run of one system over a question set."""

    system_name: str
    outcomes: list[QuestionOutcome] = field(default_factory=list)

    @property
    def summary(self) -> Summary:
        return summarize([outcome.score for outcome in self.outcomes])

    def right_questions(self) -> list[QuestionOutcome]:
        return [o for o in self.outcomes if o.score.is_right]

    def failure_counts(self) -> dict[str, int]:
        """Table 10: failure class → count (right questions excluded)."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.failure_class is not None:
                counts[outcome.failure_class] = counts.get(outcome.failure_class, 0) + 1
        return counts

    def outcome_for(self, qid: int) -> QuestionOutcome:
        for outcome in self.outcomes:
            if outcome.question.qid == qid:
                return outcome
        raise KeyError(f"no outcome for question {qid}")

    def timing_summary(self) -> dict:
        """Machine-readable per-stage wall times across the run.

        The shape benchmark runs serialize next to their tables: per stage
        ``{total_s, mean_s, max_s}`` over every question answered.
        """
        understanding = [o.understanding_time for o in self.outcomes]
        evaluation = [o.evaluation_time for o in self.outcomes]
        totals = [o.total_time for o in self.outcomes]
        return {
            "system": self.system_name,
            "questions": len(self.outcomes),
            "stages": {
                "understanding": _stage_stats(understanding),
                "evaluation": _stage_stats(evaluation),
                "total": _stage_stats(totals),
            },
        }


def _stage_stats(times: list[float]) -> dict:
    if not times:
        return {"total_s": 0.0, "mean_s": 0.0, "max_s": 0.0}
    return {
        "total_s": sum(times),
        "mean_s": sum(times) / len(times),
        "max_s": max(times),
    }


def evaluate_engine(
    engine,
    questions: list[QALDQuestion],
    system_name: str = "gAnswer (served)",
    tracer=None,
) -> EvaluationRun:
    """Run the evaluation through a serving engine's full request path.

    ``engine`` is duck-typed as :class:`repro.serve.QAEngine` (anything
    with ``as_system()``): every question goes through admission control,
    the worker pool, and the answer cache — so this run exercises exactly
    what production requests exercise, and its summary must match a
    direct-pipeline :func:`evaluate_system` run on the same questions.
    """
    return evaluate_system(engine.as_system(), questions, system_name, tracer)


def evaluate_system(
    system: SystemLike,
    questions: list[QALDQuestion],
    system_name: str = "system",
    tracer=None,
) -> EvaluationRun:
    """Run ``system`` over ``questions`` and score every answer.

    Each question is answered inside a ``question`` span (qid attribute),
    so a recording tracer — injected here or installed process-wide —
    groups the per-stage spans of each question under one subtree.
    """
    if tracer is None:
        tracer = obs.get_tracer()
    run = EvaluationRun(system_name=system_name)
    for question in questions:
        with tracer.span("question", qid=question.qid, system=system_name):
            result = system.answer(question.text)
        score = question_score(question, result.answers, result.boolean)
        run.outcomes.append(
            QuestionOutcome(
                question=question,
                score=score,
                failure_class=classify_failure(question, score, result.failure),
                understanding_time=result.understanding_time,
                evaluation_time=result.evaluation_time,
                answers=list(result.answers),
                boolean=result.boolean,
                pipeline_failure=result.failure,
            )
        )
    return run
