"""Plain-text table formatting for benchmark output.

Every benchmark prints its table through :func:`format_table` so the
regenerated rows line up with the paper's presentation.
"""

from __future__ import annotations


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: list[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_bar_chart(
    labels: list[str],
    values: list[float],
    title: str | None = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (the repo's 'figures').

    Bars scale to the maximum value; zero/negative values render as empty
    bars.  Useful for Figure 6-style per-question comparisons in terminal
    output and text artefacts.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    parts: list[str] = []
    if title:
        parts.append(title)
    if not values:
        return "\n".join(parts) if parts else ""
    peak = max(max(values), 0.0)
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        filled = 0 if peak <= 0 else round(max(value, 0.0) / peak * width)
        bar = "█" * filled
        parts.append(f"{label.ljust(label_width)} |{bar.ljust(width)} {value:g}{unit}")
    return "\n".join(parts)
