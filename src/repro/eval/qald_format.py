"""Export evaluation runs in the QALD-3 result format.

The paper: "We report the query result (i.e., precision, recall,
F-measure) of each question in the same format with QALD-3 result format
in the full version of this paper."  This module produces that artefact:
a JSON document with one record per question — id, question string, the
system's answers, per-question precision/recall/F1 — plus the global
summary, suitable for diffing across runs and for external scoring.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.eval.harness import EvaluationRun
from repro.eval.metrics import term_to_gold


def run_to_qald_json(run: EvaluationRun) -> str:
    """Serialize an evaluation run as a QALD-style JSON document."""
    questions = []
    for outcome in run.outcomes:
        question = outcome.question
        record = {
            "id": question.qid,
            "question": question.text,
            "answers": sorted(term_to_gold(term) for term in outcome.answers),
            "gold": sorted(question.gold),
            "precision": round(outcome.score.precision, 4),
            "recall": round(outcome.score.recall, 4),
            "f1": round(outcome.score.f1, 4),
            "answered": outcome.score.answered,
            "time_ms": round(outcome.total_time * 1000, 2),
        }
        if question.is_boolean:
            record["boolean"] = outcome.boolean
            record["gold_boolean"] = question.gold_boolean
        if outcome.failure_class is not None:
            record["failure_class"] = outcome.failure_class
        questions.append(record)
    summary = run.summary
    payload = {
        "dataset": "qald-mini",
        "system": run.system_name,
        "summary": {
            "total": summary.total,
            "processed": summary.processed,
            "right": summary.right,
            "partially": summary.partial,
            "precision": round(summary.precision, 4),
            "recall": round(summary.recall, 4),
            "f1": round(summary.f1, 4),
        },
        "questions": questions,
    }
    return json.dumps(payload, indent=1, sort_keys=False)


def write_qald_results(run: EvaluationRun, path: str | Path) -> Path:
    """Write the QALD-format results to a file; returns the path."""
    path = Path(path)
    path.write_text(run_to_qald_json(run) + "\n", encoding="utf-8")
    return path
