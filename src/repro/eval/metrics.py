"""QALD scoring: per-question P/R/F1, summary counts, failure classes.

Scoring follows the QALD-3 campaign rules the paper reports under
(Table 8): per-question precision and recall against the gold set, macro-
averaged over *all* questions (unanswered questions contribute zeros);
a question is *right* when F1 = 1 and *partially* right when 0 < F1 < 1.
Yes/no questions score 1/1 on a correct boolean and 0/0 otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.qald import QALDQuestion
from repro.exceptions import EvaluationError
from repro.rdf.terms import IRI, Literal, Term


def term_to_gold(term: Term) -> str:
    """Canonical gold-standard string form of an answer term."""
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, Literal):
        return term.lexical
    raise EvaluationError(f"unexpected answer term: {term!r}")


@dataclass(frozen=True, slots=True)
class QuestionScore:
    """Precision/recall/F1 of one system answer against one gold standard."""

    precision: float
    recall: float
    answered: bool

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    @property
    def is_right(self) -> bool:
        return self.answered and self.f1 == 1.0

    @property
    def is_partial(self) -> bool:
        return self.answered and 0.0 < self.f1 < 1.0


def question_score(
    question: QALDQuestion,
    answers: list[Term],
    boolean: bool | None,
) -> QuestionScore:
    """Score one system output against the question's gold standard."""
    if question.is_boolean:
        if boolean is None:
            return QuestionScore(0.0, 0.0, answered=False)
        correct = boolean == question.gold_boolean
        value = 1.0 if correct else 0.0
        return QuestionScore(value, value, answered=True)

    if not answers:
        return QuestionScore(0.0, 0.0, answered=False)
    produced = {term_to_gold(term) for term in answers}
    gold = set(question.gold)
    if not gold:
        raise EvaluationError(f"question {question.qid} has no gold standard")
    overlap = len(produced & gold)
    precision = overlap / len(produced)
    recall = overlap / len(gold)
    return QuestionScore(precision, recall, answered=True)


def classify_failure(question: QALDQuestion, score: QuestionScore, failure: str | None) -> str | None:
    """Table 10 failure class of a non-right outcome (None when right).

    Aggregation questions that go wrong are aggregation failures no matter
    where the pipeline tripped; otherwise the pipeline's own failure tag
    decides, and anything unexplained is "other".
    """
    from repro.datasets import qald as categories
    from repro.nlp.questions import analyze_question

    if score.is_right:
        return None
    if analyze_question(question.text).is_aggregation:
        return categories.AGGREGATION
    if failure == "entity_linking":
        return categories.LINKING
    if failure in ("relation_extraction", "parse"):
        return categories.RELATION
    if score.is_partial:
        return categories.PARTIAL
    return categories.OTHER


@dataclass(slots=True)
class Summary:
    """Table 8-shaped aggregate over a question set."""

    total: int = 0
    processed: int = 0
    right: int = 0
    partial: int = 0
    precision: float = 0.0
    recall: float = 0.0

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def summarize(scores: list[QuestionScore]) -> Summary:
    """QALD macro-average and counts over all questions."""
    summary = Summary(total=len(scores))
    if not scores:
        return summary
    summary.processed = sum(1 for s in scores if s.answered)
    summary.right = sum(1 for s in scores if s.is_right)
    summary.partial = sum(1 for s in scores if s.is_partial)
    summary.precision = sum(s.precision for s in scores) / len(scores)
    summary.recall = sum(s.recall for s in scores) / len(scores)
    return summary
