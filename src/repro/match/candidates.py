"""Candidate space for subgraph matching.

A query (the semantic query graph Q^S, reduced to its structure) is a set
of vertices and edges.  Each vertex carries a candidate list C_v — entities
and classes with confidence probabilities δ(arg, u) — or is a *wildcard*
(a wh-word, which "can match all entities and classes", Section 2.2).
Each edge carries a candidate list C_e of signed predicate paths with
confidences δ(rel, L) from the paraphrase dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

Path = tuple[int, ...]


@dataclass(frozen=True, slots=True)
class VertexCandidate:
    """One candidate mapping of a query vertex to a graph node.

    ``is_class`` selects Definition 3's condition 2: the query vertex then
    matches any *instance* of ``node_id`` rather than the node itself.
    """

    node_id: int
    confidence: float
    is_class: bool = False


@dataclass(frozen=True, slots=True)
class EdgeCandidate:
    """One candidate mapping of a query edge to a signed predicate path."""

    path: Path
    confidence: float


@dataclass(slots=True)
class QueryVertex:
    """A query vertex: either a wildcard or a ranked candidate list.

    ``wildcard_filter`` optionally restricts what a wildcard may bind
    (answer typing: "when" binds date literals, "who" binds non-literals).
    """

    vertex_id: int
    candidates: list[VertexCandidate] = field(default_factory=list)
    wildcard: bool = False
    wildcard_filter: Callable[[int], bool] | None = None

    def __post_init__(self) -> None:
        self.candidates.sort(key=lambda c: (-c.confidence, c.node_id))

    def best_confidence(self) -> float:
        if self.wildcard:
            return 1.0
        return self.candidates[0].confidence if self.candidates else 0.0


@dataclass(slots=True)
class QueryEdge:
    """A query edge between two query vertices with path candidates."""

    source: int
    target: int
    candidates: list[EdgeCandidate] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.candidates.sort(key=lambda c: (-c.confidence, len(c.path), c.path))

    def best_confidence(self) -> float:
        return self.candidates[0].confidence if self.candidates else 0.0

    def other(self, vertex_id: int) -> int:
        return self.target if vertex_id == self.source else self.source


@dataclass(slots=True)
class CandidateSpace:
    """The full matching problem: query structure plus candidate lists."""

    vertices: dict[int, QueryVertex] = field(default_factory=dict)
    edges: list[QueryEdge] = field(default_factory=list)

    def add_vertex(self, vertex: QueryVertex) -> None:
        self.vertices[vertex.vertex_id] = vertex

    def add_edge(self, edge: QueryEdge) -> None:
        if edge.source not in self.vertices or edge.target not in self.vertices:
            raise ValueError("edge endpoints must be added before the edge")
        if edge.source == edge.target:
            # Subgraph isomorphism binds distinct vertices; a self-loop edge
            # would silently never be checked by the exploration matcher.
            raise ValueError("self-loop query edges are not supported")
        self.edges.append(edge)

    def edges_of(self, vertex_id: int) -> list[QueryEdge]:
        return [
            edge for edge in self.edges if vertex_id in (edge.source, edge.target)
        ]

    def is_connected(self) -> bool:
        """Whether the query graph is connected (singleton = connected)."""
        if not self.vertices:
            return True
        seen: set[int] = set()
        frontier = [next(iter(self.vertices))]
        while frontier:
            vertex_id = frontier.pop()
            if vertex_id in seen:
                continue
            seen.add(vertex_id)
            for edge in self.edges_of(vertex_id):
                frontier.append(edge.other(vertex_id))
        return seen == set(self.vertices)

    def components(self) -> list["CandidateSpace"]:
        """Split into connected components (each a standalone space)."""
        remaining = set(self.vertices)
        parts: list[CandidateSpace] = []
        while remaining:
            seed = next(iter(remaining))
            component: set[int] = set()
            frontier = [seed]
            while frontier:
                vertex_id = frontier.pop()
                if vertex_id in component:
                    continue
                component.add(vertex_id)
                for edge in self.edges_of(vertex_id):
                    frontier.append(edge.other(vertex_id))
            space = CandidateSpace(
                vertices={v: self.vertices[v] for v in component},
                edges=[e for e in self.edges if e.source in component],
            )
            parts.append(space)
            remaining -= component
        return parts

    def has_empty_list(self) -> bool:
        """True when some non-wildcard vertex or some edge has no candidates
        — no match can exist (Definition 3 conditions are unsatisfiable)."""
        for vertex in self.vertices.values():
            if not vertex.wildcard and not vertex.candidates:
                return True
        return any(not edge.candidates for edge in self.edges)
