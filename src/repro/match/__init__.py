"""Subgraph matching substrate for semantic query graphs.

Implements the query-evaluation machinery of Section 4.2.2 in three layers:

* :mod:`repro.match.candidates` — the candidate space: per query vertex a
  confidence-ranked list of entities/classes (or a wh wildcard), per query
  edge a confidence-ranked list of signed predicate paths;
* :mod:`repro.match.pruning` — neighborhood-based pruning: a vertex
  candidate with no incident predicate compatible with some adjacent query
  edge cannot participate in any match and is dropped;
* :mod:`repro.match.matcher` — VF2-style exploration from a seed binding,
  enumerating subgraph matches per Definition 3 (entity candidates bind
  exactly; class candidates bind any instance; edges accept either
  orientation via their signed paths).
"""

from repro.match.candidates import (
    CandidateSpace,
    EdgeCandidate,
    QueryEdge,
    QueryVertex,
    VertexCandidate,
)
from repro.match.pruning import neighborhood_prune
from repro.match.matcher import GraphMatch, SubgraphMatcher
from repro.match.validation import validate_match

__all__ = [
    "validate_match",
    "CandidateSpace",
    "EdgeCandidate",
    "QueryEdge",
    "QueryVertex",
    "VertexCandidate",
    "neighborhood_prune",
    "GraphMatch",
    "SubgraphMatcher",
]
