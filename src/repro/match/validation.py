"""Independent validation of matches against Definition 3.

The matcher is search-optimised; this module re-checks its output from
first principles, condition by condition:

1. a vertex mapped under an entity candidate binds exactly that node;
2. a vertex mapped under a class candidate binds an *instance* of the
   class;
3. every query edge is realised by one of its candidate paths, in either
   orientation, between the bound endpoints;
plus injectivity (a subgraph has distinct vertices) and score correctness
(Definition 6: the sum of log confidences).

Used by tests and property-based checks; also handy for debugging custom
candidate spaces.
"""

from __future__ import annotations

import math

from repro.match.candidates import CandidateSpace
from repro.match.matcher import GraphMatch, _MIN_CONFIDENCE
from repro.rdf.graph import KnowledgeGraph, reverse_path


def validate_match(
    kg: KnowledgeGraph, space: CandidateSpace, match: GraphMatch
) -> list[str]:
    """All Definition 3 violations of a match (empty list = valid)."""
    problems: list[str] = []
    bindings = dict(match.bindings)
    confidences = dict(match.vertex_confidences)

    if set(bindings) != set(space.vertices):
        problems.append("bindings do not cover exactly the query vertices")
    if len(set(bindings.values())) != len(bindings):
        problems.append("bindings are not injective")

    for vertex_id, node in bindings.items():
        vertex = space.vertices.get(vertex_id)
        if vertex is None:
            continue
        confidence = confidences.get(vertex_id)
        if vertex.wildcard:
            if vertex.wildcard_filter is not None and not vertex.wildcard_filter(node):
                problems.append(f"vertex {vertex_id}: wildcard filter rejects node")
            if confidence != 1.0:
                problems.append(f"vertex {vertex_id}: wildcard confidence must be 1.0")
            continue
        admitted = []
        for candidate in vertex.candidates:
            if candidate.is_class:
                if not kg.store.is_literal_id(node) and kg.has_type(node, candidate.node_id):
                    admitted.append(candidate.confidence)
            elif candidate.node_id == node:
                admitted.append(candidate.confidence)
        if not admitted:
            problems.append(
                f"vertex {vertex_id}: node not admitted by any candidate "
                "(Definition 3 conditions 1–2)"
            )
        elif confidence is None or not math.isclose(confidence, max(admitted)):
            problems.append(
                f"vertex {vertex_id}: recorded confidence {confidence} is not "
                f"the best admitting candidate's {max(admitted)}"
            )

    assignments = {index: (path, conf) for index, path, conf in match.edge_assignments}
    for index, edge in enumerate(space.edges):
        if index not in assignments:
            problems.append(f"edge {index}: no path assignment")
            continue
        path, confidence = assignments[index]
        allowed = {c.path: c.confidence for c in edge.candidates}
        mined = path if path in allowed else reverse_path(path)
        if mined not in allowed:
            problems.append(f"edge {index}: assigned path is not a candidate")
            continue
        source = bindings.get(edge.source)
        target = bindings.get(edge.target)
        if source is None or target is None:
            continue
        if not kg.path_connects(source, target, path):
            problems.append(
                f"edge {index}: path does not connect the bound endpoints "
                "(Definition 3 condition 3)"
            )

    expected_score = sum(
        math.log(max(conf, _MIN_CONFIDENCE)) for conf in confidences.values()
    ) + sum(
        math.log(max(conf, _MIN_CONFIDENCE)) for _p, conf in assignments.values()
    )
    if not math.isclose(expected_score, match.score, abs_tol=1e-9):
        problems.append(
            f"score {match.score} differs from Definition 6 sum {expected_score}"
        )
    return problems
