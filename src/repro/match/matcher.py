"""VF2-style exploration matcher for candidate spaces (Definition 3).

Matching starts from a *seed* — one query vertex bound to one concrete
graph node — and grows the binding along query edges, exactly the
"exploration based subgraph isomorphism algorithm from cursor c_j" of
Algorithm 3.  At every expansion the new node must:

1. be admitted by the target vertex's candidate list (entity candidates
   bind that exact node; class candidates bind any instance of the class,
   Definition 3 condition 2; wildcards bind anything),
2. be reachable from an already-bound neighbour via one of the edge's
   candidate predicate paths, in either orientation (condition 3),
3. be distinct from all bound nodes (subgraph isomorphism is injective).

A completed binding yields a :class:`GraphMatch` whose score follows
Definition 6: the sum of log confidences of the chosen vertex and edge
mappings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.match.candidates import (
    CandidateSpace,
    QueryEdge,
    QueryVertex,
    VertexCandidate,
)
from repro.rdf.graph import KnowledgeGraph, reverse_path

Path = tuple[int, ...]

#: Confidences are clamped away from zero before taking logs so a single
#: zero-confidence mapping cannot produce -inf and poison score arithmetic.
_MIN_CONFIDENCE = 1e-9


def _log(confidence: float) -> float:
    return math.log(max(confidence, _MIN_CONFIDENCE))


@dataclass(frozen=True, slots=True)
class GraphMatch:
    """One subgraph match of the query with its Definition 6 score."""

    bindings: tuple[tuple[int, int], ...]       # (query vertex, graph node)
    vertex_confidences: tuple[tuple[int, float], ...]
    edge_assignments: tuple[tuple[int, Path, float], ...]  # (edge idx, path, conf)
    score: float
    #: vertex → node lookup table, precomputed once so the hot callers
    #: (SPARQL generation, answer read-off) avoid a linear scan per lookup.
    #: Derived from ``bindings``, hence excluded from equality and hashing.
    _binding_map: dict[int, int] = field(
        init=False, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "_binding_map", dict(self.bindings))

    def binding_of(self, vertex_id: int) -> int | None:
        return self._binding_map.get(vertex_id)

    def key(self) -> frozenset[tuple[int, int]]:
        """Identity of the match: the vertex→node binding set."""
        return frozenset(self.bindings)


class SubgraphMatcher:
    """Enumerates matches of a connected candidate space over a graph."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        space: CandidateSpace,
        max_matches: int = 10_000,
        directed_edges: bool = False,
    ):
        self.kg = kg
        self.space = space
        self.max_matches = max_matches
        # Definition 3 accepts either edge orientation; SPARQL compilation
        # (graph_executor) needs the directional semantics instead.
        self.directed_edges = directed_edges
        # Search-effort counters, accumulated locally (plain int adds keep
        # the hot loop free of tracer calls) and reported by the top-k
        # layer as ``matcher.expansions`` / ``matcher.rejected_bindings``.
        self.expansions = 0
        self.rejected_bindings = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def matches_from_seed(
        self, vertex_id: int, candidate: VertexCandidate
    ) -> list[GraphMatch]:
        """All matches in which ``vertex_id`` maps under ``candidate``.

        A class candidate seeds one exploration per instance of the class.
        """
        results: list[GraphMatch] = []
        if candidate.is_class:
            seed_nodes = sorted(self.kg.instances_of(candidate.node_id))
        else:
            seed_nodes = [candidate.node_id]
        for node in seed_nodes:
            self._explore(
                order=self._expansion_order(vertex_id),
                position=1,
                bindings={vertex_id: node},
                vertex_confidences={vertex_id: candidate.confidence},
                edge_assignments={},
                results=results,
            )
            if len(results) >= self.max_matches:
                break
        return results

    def all_matches(self) -> list[GraphMatch]:
        """Exhaustive enumeration (used by tests and the no-TA ablation)."""
        seen: set[frozenset[tuple[int, int]]] = set()
        results: list[GraphMatch] = []
        start_id = self._best_start_vertex()
        start = self.space.vertices[start_id]
        seeds: list[VertexCandidate]
        if start.wildcard:
            seeds = [
                VertexCandidate(node, 1.0)
                for node in sorted(self.kg.store.node_ids())
            ]
        else:
            seeds = start.candidates
        for candidate in seeds:
            for match in self.matches_from_seed(start_id, candidate):
                if match.key() not in seen:
                    seen.add(match.key())
                    results.append(match)
        results.sort(key=lambda m: -m.score)
        return results

    # ------------------------------------------------------------------ #
    # Exploration
    # ------------------------------------------------------------------ #

    def _best_start_vertex(self) -> int:
        """Prefer a non-wildcard vertex with the fewest candidates."""
        def sort_key(item):
            vertex_id, vertex = item
            return (vertex.wildcard, len(vertex.candidates), vertex_id)

        return min(self.space.vertices.items(), key=sort_key)[0]

    def _expansion_order(self, seed: int) -> list[int]:
        """Query vertices in BFS order from the seed (query is connected)."""
        order = [seed]
        seen = {seed}
        cursor = 0
        while cursor < len(order):
            vertex_id = order[cursor]
            cursor += 1
            for edge in self.space.edges_of(vertex_id):
                other = edge.other(vertex_id)
                if other not in seen:
                    seen.add(other)
                    order.append(other)
        return order

    def _explore(
        self,
        order: list[int],
        position: int,
        bindings: dict[int, int],
        vertex_confidences: dict[int, float],
        edge_assignments: dict[int, tuple[Path, float]],
        results: list[GraphMatch],
    ) -> None:
        if len(results) >= self.max_matches:
            return
        if position == len(order):
            results.append(self._finalize(bindings, vertex_confidences, edge_assignments))
            return
        vertex_id = order[position]
        vertex = self.space.vertices[vertex_id]

        connecting = [
            (index, edge)
            for index, edge in enumerate(self.space.edges)
            if vertex_id in (edge.source, edge.target)
            and edge.other(vertex_id) in bindings
        ]
        # The query is connected and `order` is BFS, so connecting is
        # non-empty for every position > 0.
        reachable = self._reachable_nodes(connecting, bindings, vertex_id)
        if reachable is None:
            return
        used_nodes = set(bindings.values())
        for node, per_edge in sorted(reachable.items()):
            if node in used_nodes:
                self.rejected_bindings += 1
                continue
            confidence = self._admission_confidence(vertex, node)
            if confidence is None:
                self.rejected_bindings += 1
                continue
            self.expansions += 1
            bindings[vertex_id] = node
            vertex_confidences[vertex_id] = confidence
            for edge_index, (path, edge_confidence) in per_edge.items():
                edge_assignments[edge_index] = (path, edge_confidence)
            self._explore(
                order, position + 1, bindings, vertex_confidences,
                edge_assignments, results,
            )
            del bindings[vertex_id]
            del vertex_confidences[vertex_id]
            for edge_index in per_edge:
                edge_assignments.pop(edge_index, None)

    def _reachable_nodes(
        self,
        connecting: list[tuple[int, QueryEdge]],
        bindings: dict[int, int],
        vertex_id: int,
    ) -> dict[int, dict[int, tuple[Path, float]]] | None:
        """Nodes reachable from every bound neighbour, with the best path
        per connecting edge.  None when some edge admits no node at all."""
        result: dict[int, dict[int, tuple[Path, float]]] | None = None
        walk_path = self.kg.kernel.walk_path  # LRU-cached, returns a shared frozenset
        for edge_index, edge in connecting:
            bound_node = bindings[edge.other(vertex_id)]
            walk_from_source = edge.target == vertex_id
            per_node: dict[int, tuple[Path, float]] = {}
            for candidate in edge.candidates:  # confidence-descending
                # Definition 3 condition 3 accepts either orientation of the
                # edge; try the path as mined and flipped.  The assignment
                # records the orientation actually used, source → target,
                # so SPARQL emission walks the right way.
                orientations = [candidate.path]
                if not self.directed_edges:
                    flipped = reverse_path(candidate.path)
                    if flipped != candidate.path:
                        orientations.append(flipped)
                for oriented in orientations:
                    walk = oriented if walk_from_source else reverse_path(oriented)
                    for node in walk_path(bound_node, walk):
                        if node not in per_node:  # first hit = best confidence
                            per_node[node] = (oriented, candidate.confidence)
            if not per_node:
                return None
            if result is None:
                result = {
                    node: {edge_index: assignment}
                    for node, assignment in per_node.items()
                }
            else:
                merged: dict[int, dict[int, tuple[Path, float]]] = {}
                for node, assignments in result.items():
                    if node in per_node:
                        assignments[edge_index] = per_node[node]
                        merged[node] = assignments
                result = merged
                if not result:
                    return None
        return result if result is not None else {}

    def _admission_confidence(self, vertex: QueryVertex, node: int) -> float | None:
        """δ(arg, node) if the vertex admits the node, else None."""
        if vertex.wildcard:
            if vertex.wildcard_filter is not None and not vertex.wildcard_filter(node):
                return None
            return 1.0
        best: float | None = None
        for candidate in vertex.candidates:
            if candidate.is_class:
                if self.kg.store.is_literal_id(node):
                    continue
                if self.kg.has_type(node, candidate.node_id):
                    admitted = candidate.confidence
                else:
                    continue
            elif candidate.node_id == node:
                admitted = candidate.confidence
            else:
                continue
            if best is None or admitted > best:
                best = admitted
        return best

    def _finalize(
        self,
        bindings: dict[int, int],
        vertex_confidences: dict[int, float],
        edge_assignments: dict[int, tuple[Path, float]],
    ) -> GraphMatch:
        score = sum(_log(conf) for conf in vertex_confidences.values())
        score += sum(_log(conf) for _path, conf in edge_assignments.values())
        return GraphMatch(
            bindings=tuple(sorted(bindings.items())),
            vertex_confidences=tuple(sorted(vertex_confidences.items())),
            edge_assignments=tuple(
                (index, path, conf)
                for index, (path, conf) in sorted(edge_assignments.items())
            ),
            score=score,
        )
