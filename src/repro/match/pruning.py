"""Neighborhood-based pruning (Section 4.2.2, first pruning method).

A vertex candidate u for query vertex v can only participate in a match if,
for every query edge incident to v, u has an incident predicate that some
candidate path of that edge can start (or end) with, in a compatible
direction.  Candidates failing this test — like u₅ in the paper's Figure 2,
which has no adjacent predicate mapping "play in" — are dropped before the
expensive search.

The test runs on the adjacency kernel's signed-step signatures: an edge's
admissible first steps and a node's incident steps are both small frozen
sets of signed ints (``pid + 1`` outgoing, ``-(pid + 1)`` incoming — see
:mod:`repro.rdf.kernel`), so each check is one memoized-set intersection.
Literal-valued edges are part of the signature, covering Q^S edges that
end on a literal.

Class candidates are checked against the union of their instances'
neighbourhoods (any instance with a compatible edge keeps the class alive).
"""

from __future__ import annotations

from repro.match.candidates import CandidateSpace, QueryEdge, VertexCandidate
from repro.rdf.graph import KnowledgeGraph


def _required_first_steps(edge: QueryEdge) -> frozenset[int]:
    """Signed steps that can start the edge's candidate paths when walked
    outward from either endpoint.

    Definition 3 accepts either edge orientation, which makes this set
    symmetric in the endpoints: outward from one end the path starts with
    its first step, from the other with its reversed last step.
    """
    required: set[int] = set()
    for candidate in edge.candidates:
        if not candidate.path:
            continue
        required.add(candidate.path[0])       # orientation as mined
        required.add(-candidate.path[-1])     # flipped orientation
    return frozenset(required)


def _node_satisfies(
    kg: KnowledgeGraph, node_id: int, required: frozenset[int]
) -> bool:
    if not required:
        return False
    return not required.isdisjoint(kg.kernel.incident_steps(node_id))


def _candidate_alive(
    kg: KnowledgeGraph,
    candidate: VertexCandidate,
    required_per_edge: list[frozenset[int]],
) -> bool:
    if candidate.is_class:
        instances = kg.instances_of(candidate.node_id)
        return any(
            all(_node_satisfies(kg, instance, required) for required in required_per_edge)
            for instance in instances
        )
    return all(
        _node_satisfies(kg, candidate.node_id, required)
        for required in required_per_edge
    )


def neighborhood_prune(
    kg: KnowledgeGraph, space: CandidateSpace, tracer=None
) -> int:
    """Prune vertex candidates in place; returns the number removed.

    Safe: only candidates that provably cannot appear in any match are
    dropped, so top-k results are unchanged.  When a recording ``tracer``
    is supplied, per-vertex removal counts go to the
    ``pruning.removed_per_vertex`` histogram.
    """
    if tracer is None:
        from repro import obs

        tracer = obs.get_tracer()
    removed = 0
    for vertex in space.vertices.values():
        if vertex.wildcard or not vertex.candidates:
            continue
        incident_edges = space.edges_of(vertex.vertex_id)
        if not incident_edges:
            continue
        required_per_edge = [_required_first_steps(edge) for edge in incident_edges]
        kept = [
            candidate
            for candidate in vertex.candidates
            if _candidate_alive(kg, candidate, required_per_edge)
        ]
        removed_here = len(vertex.candidates) - len(kept)
        if removed_here:
            tracer.metrics.observe("pruning.removed_per_vertex", removed_here)
        removed += removed_here
        vertex.candidates = kept
    return removed
