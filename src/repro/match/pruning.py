"""Neighborhood-based pruning (Section 4.2.2, first pruning method).

A vertex candidate u for query vertex v can only participate in a match if,
for every query edge incident to v, u has an incident predicate that some
candidate path of that edge can start (or end) with, in a compatible
direction.  Candidates failing this test — like u₅ in the paper's Figure 2,
which has no adjacent predicate mapping "play in" — are dropped before the
expensive search.

Class candidates are checked against the union of their instances'
neighbourhoods (any instance with a compatible edge keeps the class alive).
"""

from __future__ import annotations

from repro.match.candidates import CandidateSpace, QueryEdge, VertexCandidate
from repro.rdf.graph import Direction, KnowledgeGraph, step_is_forward, step_predicate


def _required_first_steps(edge: QueryEdge) -> set[tuple[int, Direction]]:
    """(predicate, direction) pairs that can start the edge's candidate
    paths when walked outward from either endpoint.

    Definition 3 accepts either edge orientation, which makes this set
    symmetric in the endpoints: outward from one end the path starts with
    its first step, from the other with its reversed last step.
    """
    required: set[tuple[int, Direction]] = set()
    for candidate in edge.candidates:
        if not candidate.path:
            continue
        outward_steps = (
            (candidate.path[0], True),      # orientation as mined
            (candidate.path[-1], False),    # flipped orientation
        )
        for step, as_mined in outward_steps:
            forward = step_is_forward(step)
            if not as_mined:
                forward = not forward  # walking the path from the far end
            direction = Direction.OUT if forward else Direction.IN
            required.add((step_predicate(step), direction))
    return required


def _node_satisfies(
    kg: KnowledgeGraph, node_id: int, required: set[tuple[int, Direction]]
) -> bool:
    if not required:
        return False
    incident = kg.incident_predicates(node_id)
    # Literal-valued edges are not in incident_predicates' undirected view;
    # check outgoing structural-free predicates directly.
    return bool(incident & required) or _literal_edge_satisfies(kg, node_id, required)


def _literal_edge_satisfies(
    kg: KnowledgeGraph, node_id: int, required: set[tuple[int, Direction]]
) -> bool:
    for edge in kg.edges(node_id, include_structural=False, include_literals=True):
        if (edge.predicate, edge.direction) in required:
            return True
    return False


def _candidate_alive(
    kg: KnowledgeGraph,
    candidate: VertexCandidate,
    required_per_edge: list[set[tuple[int, Direction]]],
) -> bool:
    if candidate.is_class:
        instances = kg.instances_of(candidate.node_id)
        return any(
            all(_node_satisfies(kg, instance, required) for required in required_per_edge)
            for instance in instances
        )
    return all(
        _node_satisfies(kg, candidate.node_id, required)
        for required in required_per_edge
    )


def neighborhood_prune(
    kg: KnowledgeGraph, space: CandidateSpace, tracer=None
) -> int:
    """Prune vertex candidates in place; returns the number removed.

    Safe: only candidates that provably cannot appear in any match are
    dropped, so top-k results are unchanged.  When a recording ``tracer``
    is supplied, per-vertex removal counts go to the
    ``pruning.removed_per_vertex`` histogram.
    """
    if tracer is None:
        from repro import obs

        tracer = obs.get_tracer()
    removed = 0
    for vertex in space.vertices.values():
        if vertex.wildcard or not vertex.candidates:
            continue
        incident_edges = space.edges_of(vertex.vertex_id)
        if not incident_edges:
            continue
        required_per_edge = [_required_first_steps(edge) for edge in incident_edges]
        kept = [
            candidate
            for candidate in vertex.candidates
            if _candidate_alive(kg, candidate, required_per_edge)
        ]
        removed_here = len(vertex.candidates) - len(kept)
        if removed_here:
            tracer.metrics.observe("pruning.removed_per_vertex", removed_here)
        removed += removed_here
        vertex.candidates = kept
    return removed
