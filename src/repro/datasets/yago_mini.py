"""A second, YAGO2-flavoured knowledge base (generalization check).

Section 6 notes "we also evaluate our method in other RDF repositories,
such as Yago2" (results omitted for space).  This module is that second
repository in miniature: YAGO's camelCase predicate vocabulary
(wasBornIn, isMarriedTo, hasWonPrize, ...), a scientists/prizes/places
domain disjoint from the mini-DBpedia content, its own relation-phrase
dataset, and a 20-question benchmark with gold answers.  The
generalization test: the *same* pipeline code, with nothing tuned, mines
this KB's dictionary and answers its questions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.paraphrase.miner import RelationPhraseDataset
from repro.rdf import (
    IRI,
    KnowledgeGraph,
    Literal,
    RDF_TYPE,
    RDFS_LABEL,
    Triple,
    TripleStore,
)
from repro.rdf import vocab

YAGO = "yago:"


def yago(name: str) -> IRI:
    return IRI(YAGO + name)


_CLASSES = {
    "Scientist": ["scientist"],
    "Physicist": ["physicist"],
    "City": ["city"],
    "Country": ["country"],
    "University": ["university"],
    "Prize": ["prize"],
}

_ENTITIES: dict[str, tuple[str, ...]] = {
    "Albert_Einstein": ("Physicist",),
    "Mileva_Maric": ("Scientist",),
    "Marie_Curie": ("Physicist",),
    "Pierre_Curie": ("Physicist",),
    "Niels_Bohr": ("Physicist",),
    "Max_Planck": ("Physicist",),
    "Ulm": ("City",),
    "Warsaw": ("City",),
    "Copenhagen": ("City",),
    "Princeton": ("City",),
    "Paris": ("City",),
    "Germany": ("Country",),
    "Poland": ("Country",),
    "Denmark": ("Country",),
    "United_States": ("Country",),
    "France": ("Country",),
    "ETH_Zurich": ("University",),
    "University_of_Paris": ("University",),
    "University_of_Copenhagen": ("University",),
    "Nobel_Prize_in_Physics": ("Prize",),
    "Nobel_Prize_in_Chemistry": ("Prize",),
}

_FACTS = [
    ("Albert_Einstein", "wasBornIn", "Ulm"),
    ("Albert_Einstein", "diedIn", "Princeton"),
    ("Albert_Einstein", "isMarriedTo", "Mileva_Maric"),
    ("Albert_Einstein", "graduatedFrom", "ETH_Zurich"),
    ("Albert_Einstein", "hasWonPrize", "Nobel_Prize_in_Physics"),
    ("Marie_Curie", "wasBornIn", "Warsaw"),
    ("Marie_Curie", "diedIn", "Passy"),
    ("Marie_Curie", "isMarriedTo", "Pierre_Curie"),
    ("Marie_Curie", "graduatedFrom", "University_of_Paris"),
    ("Marie_Curie", "hasWonPrize", "Nobel_Prize_in_Physics"),
    ("Marie_Curie", "hasWonPrize", "Nobel_Prize_in_Chemistry"),
    ("Pierre_Curie", "hasWonPrize", "Nobel_Prize_in_Physics"),
    ("Niels_Bohr", "wasBornIn", "Copenhagen"),
    ("Niels_Bohr", "graduatedFrom", "University_of_Copenhagen"),
    ("Niels_Bohr", "hasWonPrize", "Nobel_Prize_in_Physics"),
    ("Max_Planck", "hasWonPrize", "Nobel_Prize_in_Physics"),
    ("Ulm", "isLocatedIn", "Germany"),
    ("Warsaw", "isLocatedIn", "Poland"),
    ("Copenhagen", "isLocatedIn", "Denmark"),
    ("Princeton", "isLocatedIn", "United_States"),
    ("Paris", "isLocatedIn", "France"),
    ("Germany", "hasCapital", "Berlin_(Yago)"),
    ("Denmark", "hasCapital", "Copenhagen"),
    ("France", "hasCapital", "Paris"),
]


def build_yago_mini() -> KnowledgeGraph:
    """Build the YAGO2-flavoured knowledge graph (deterministic)."""
    store = TripleStore()
    for class_name, labels in _CLASSES.items():
        for label in {class_name.lower(), *labels}:
            store.add(Triple(yago(class_name), RDFS_LABEL, Literal(label)))
    store.add(Triple(yago("Physicist"), vocab.RDFS_SUBCLASSOF, yago("Scientist")))

    mentioned = set(_ENTITIES)
    for subject, _p, obj in _FACTS:
        mentioned.add(subject)
        mentioned.add(obj)
    for name in sorted(mentioned):
        entity = yago(name)
        label = name.replace("_", " ").split("(")[0].strip()
        store.add(Triple(entity, RDFS_LABEL, Literal(label)))
        for type_name in _ENTITIES.get(name, ()):
            store.add(Triple(entity, RDF_TYPE, yago(type_name)))

    for subject, predicate, obj in _FACTS:
        store.add(Triple(yago(subject), yago(predicate), yago(obj)))
    return KnowledgeGraph(store)


def yago_phrase_dataset() -> RelationPhraseDataset:
    """The relation-phrase dataset aligned with the YAGO-style facts."""
    dataset = RelationPhraseDataset()
    pairs = {
        "was born in": [
            ("Albert_Einstein", "Ulm"), ("Marie_Curie", "Warsaw"),
        ],
        # "Where was X born?" has no 'in' to embed; YAGO-style phrase sets
        # include the bare participle form too.
        "was born": [("Albert_Einstein", "Ulm"), ("Marie_Curie", "Warsaw")],
        "died in": [("Albert_Einstein", "Princeton")],
        "died": [("Albert_Einstein", "Princeton")],
        "is married to": [("Albert_Einstein", "Mileva_Maric")],
        "wife of": [("Mileva_Maric", "Albert_Einstein")],
        "husband of": [("Albert_Einstein", "Mileva_Maric")],
        "graduated from": [
            ("Albert_Einstein", "ETH_Zurich"),
            ("Niels_Bohr", "University_of_Copenhagen"),
        ],
        "won": [
            ("Albert_Einstein", "Nobel_Prize_in_Physics"),
            ("Marie_Curie", "Nobel_Prize_in_Chemistry"),
        ],
        "is the capital of": [("Paris", "France"), ("Copenhagen", "Denmark")],
        "cities in": [("Warsaw", "Poland"), ("Ulm", "Germany")],
        # The multi-hop check: "born in the country" = wasBornIn·isLocatedIn.
        "comes from": [
            ("Marie_Curie", "Poland"), ("Niels_Bohr", "Denmark"),
        ],
    }
    for phrase, support in pairs.items():
        dataset.add(phrase, [(yago(a), yago(b)) for a, b in support])
    return dataset


@dataclass(frozen=True, slots=True)
class YagoQuestion:
    text: str
    gold: frozenset[str]


def yago_questions() -> list[YagoQuestion]:
    """20 questions over the YAGO-style KB, all answerable."""
    def q(text, *gold):
        return YagoQuestion(text, frozenset(gold))

    return [
        q("Where was Albert Einstein born?", "yago:Ulm"),
        q("Where did Albert Einstein die?", "yago:Princeton"),
        q("Who is married to Albert Einstein?", "yago:Mileva_Maric"),
        q("Who was married to Marie Curie?", "yago:Pierre_Curie"),
        q("Where was Marie Curie born?", "yago:Warsaw"),
        q("Which university did Albert Einstein graduate from?", "yago:ETH_Zurich"),
        q("Which university did Niels Bohr graduate from?",
          "yago:University_of_Copenhagen"),
        q("Which prizes did Marie Curie win?",
          "yago:Nobel_Prize_in_Physics", "yago:Nobel_Prize_in_Chemistry"),
        q("Who won the Nobel Prize in Chemistry?", "yago:Marie_Curie"),
        q("What is the capital of France?", "yago:Paris"),
        q("What is the capital of Denmark?", "yago:Copenhagen"),
        q("Give me all cities in Germany.", "yago:Ulm"),
        q("Give me all cities in Poland.", "yago:Warsaw"),
        q("Which country does Marie Curie come from?", "yago:Poland"),
        q("Which country does Niels Bohr come from?", "yago:Denmark"),
        q("Which physicists won the Nobel Prize in Physics?",
          "yago:Albert_Einstein", "yago:Marie_Curie", "yago:Pierre_Curie",
          "yago:Niels_Bohr", "yago:Max_Planck"),
        q("Where was the wife of Pierre Curie born?", "yago:Warsaw"),
        q("Which scientists were born in Copenhagen?", "yago:Niels_Bohr"),
        q("Who graduated from the University of Paris?", "yago:Marie_Curie"),
        q("Where did the husband of Mileva Maric die?", "yago:Princeton"),
    ]
