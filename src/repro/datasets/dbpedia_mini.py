"""The curated DBpedia-like knowledge graph behind all benchmarks.

Stands in for the 60 M-triple DBpedia dump the paper evaluates on.  The
graph is small (hundreds of triples) but preserves what the algorithms
exercise:

* the **ambiguity structure** of Figure 1 — three nodes answer to
  "Philadelphia" (city, film, 76ers); "play in" maps to starring,
  playForTeam, and director; "actor" is both a class and part of a book
  title (An Actor Prepares);
* the **facts behind the 32 correctly-answered QALD-3 questions** of
  Table 11, plus distractors so matching is non-trivial;
* the **failure traps** of Table 10 — MI6 is labelled only "Secret
  Intelligence Service" (entity-linking failure), launch pads exist but
  their relation phrase is withheld from the phrase dataset
  (relation-extraction failure), and superlative questions have multiple
  base matches (aggregation failure);
* **multi-hop relations** — a Premier League player connects to his
  league through a (team, league) path, like the paper's "uncle of".

Entities live under ``res:``, predicates under ``ont:``; labels default to
the local name with underscores → spaces and parentheticals stripped.
"""

from __future__ import annotations

from repro.rdf import (
    IRI,
    KnowledgeGraph,
    Literal,
    RDF_TYPE,
    RDFS_LABEL,
    RDFS_SUBCLASSOF,
    Triple,
    TripleStore,
)
from repro.rdf import vocab

RES = "res:"
ONT = "ont:"


def res(name: str) -> IRI:
    """The IRI of a mini-DBpedia entity or class."""
    return IRI(RES + name)


def ont(name: str) -> IRI:
    """The IRI of a mini-DBpedia predicate."""
    return IRI(ONT + name)


def _date(lexical: str) -> Literal:
    return Literal(lexical, datatype=vocab.XSD_DATE)


def _num(lexical: str) -> Literal:
    return Literal(lexical, datatype=vocab.XSD_DECIMAL)


def _int(lexical: str) -> Literal:
    return Literal(lexical, datatype=vocab.XSD_INTEGER)


# --------------------------------------------------------------------- #
# Classes: name → extra labels (the local name is always a label).
# --------------------------------------------------------------------- #

_CLASSES: dict[str, list[str]] = {
    "Person": ["person", "people"],
    "Actor": ["actor"],
    "Film": ["film", "movie"],
    "City": ["city"],
    "Country": ["country"],
    "BasketballTeam": ["basketball team"],
    "BasketballPlayer": ["basketball player"],
    "SoccerPlayer": ["soccer player", "player"],
    "SoccerClub": ["soccer club", "club"],
    "SoccerLeague": ["soccer league"],
    "Company": ["company"],
    "Automobile": ["car", "automobile"],
    "Band": ["band"],
    "Book": ["book"],
    "River": ["river"],
    "Mountain": ["mountain"],
    "State": ["state", "U.S. state"],
    "University": ["university"],
    "Politician": ["politician"],
    "Writer": ["writer"],
    "LaunchPad": ["launch pad"],
    "TimeZone": ["time zone"],
    "ComicsCharacter": ["comics character", "comic"],
}

_SUBCLASSES = [
    ("Actor", "Person"),
    ("Politician", "Person"),
    ("Writer", "Person"),
    ("BasketballPlayer", "Person"),
    ("SoccerPlayer", "Person"),
]

# --------------------------------------------------------------------- #
# Entities: name → (types, extra labels).
# --------------------------------------------------------------------- #

_ENTITIES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    # -- the running example -------------------------------------------- #
    "Antonio_Banderas": (("Actor",), ()),
    "Melanie_Griffith": (("Actor",), ()),
    "Philadelphia_(film)": (("Film",), ()),
    "Philadelphia": (("City",), ()),
    "Philadelphia_76ers": (("BasketballTeam",), ("76ers",)),
    "Aaron_McKie": (("BasketballPlayer",), ()),
    "Tom_Hanks": (("Actor",), ()),
    "Jonathan_Demme": (("Person",), ()),
    "An_Actor_Prepares": (("Book",), ()),
    # -- movies ---------------------------------------------------------- #
    "Francis_Ford_Coppola": (("Person",), ()),
    "The_Godfather": (("Film",), ()),
    "The_Godfather_Part_II": (("Film",), ()),
    "Apocalypse_Now": (("Film",), ()),
    "Tom_Cruise": (("Actor",), ()),
    "Top_Gun": (("Film",), ()),
    "Mission_Impossible": (("Film",), ()),
    "Vanilla_Sky": (("Film",), ()),
    "Minority_Report": (("Film",), ()),
    "The_Secret_in_Their_Eyes": (("Film",), ()),
    "Nine_Queens": (("Film",), ()),
    "Wild_Tales": (("Film",), ()),
    "Leonardo_DiCaprio": (("Actor",), ()),
    "Titanic_(film)": (("Film",), ()),
    "Inception": (("Film",), ()),
    # -- politics --------------------------------------------------------- #
    "John_F._Kennedy": (("Politician",), ("JFK",)),
    "Lyndon_B._Johnson": (("Politician",), ()),
    "Klaus_Wowereit": (("Politician",), ()),
    "Matt_Mead": (("Politician",), ()),
    "Sean_Parnell": (("Politician",), ()),
    "Queen_Elizabeth_II": (("Person",), ("Elizabeth II",)),
    "George_VI": (("Person",), ()),
    "Angela_Merkel": (("Politician",), ()),
    "Margaret_Thatcher": (("Politician",), ()),
    "Mark_Thatcher": (("Person",), ()),
    "Carol_Thatcher": (("Person",), ()),
    "Barack_Obama": (("Politician",), ()),
    "Michelle_Obama": (("Person",), ()),
    "Juliana_of_the_Netherlands": (("Person",), ("Juliana",)),
    "Al_Capone": (("Person",), ()),
    # -- geography --------------------------------------------------------- #
    "Canada": (("Country",), ()),
    "Ottawa": (("City",), ()),
    "Australia": (("Country",), ()),
    "Sydney": (("City",), ()),
    "Melbourne": (("City",), ()),
    "Germany": (("Country",), ()),
    "France": (("Country",), ()),
    "Switzerland": (("Country",), ()),
    "Netherlands": (("Country",), ()),
    "Argentina": (("Country",), ()),
    "United_States": (("Country",), ("USA", "U.S.")),
    "United_Kingdom": (("Country",), ("UK",)),
    "Berlin": (("City",), ()),
    "Munich": (("City",), ()),
    "Hamburg": (("City",), ()),
    "Vienna": (("City",), ()),
    "Bremen": (("City",), ()),
    "Bremerhaven": (("City",), ()),
    "Minden": (("City",), ()),
    "Delft": (("City",), ()),
    "London": (("City",), ()),
    "San_Francisco": (("City",), ()),
    "Salt_Lake_City": (("City",), ()),
    "Brno": (("City",), ()),
    "Leipzig": (("City",), ()),
    "Weser": (("River",), ()),
    "Rhine": (("River",), ()),
    "Elbe": (("River",), ()),
    "Mount_Everest": (("Mountain",), ()),
    "Zugspitze": (("Mountain",), ()),
    "Watzmann": (("Mountain",), ()),
    "Wyoming": (("State",), ()),
    "Alaska": (("State",), ()),
    "Mountain_Time_Zone": (("TimeZone",), ()),
    # -- music -------------------------------------------------------------- #
    "The_Prodigy": (("Band",), ("Prodigy",)),
    "Liam_Howlett": (("Person",), ()),
    "Keith_Flint": (("Person",), ()),
    "Maxim_(musician)": (("Person",), ("Maxim",)),
    "Amanda_Palmer": (("Person",), ()),
    "Neil_Gaiman": (("Writer",), ()),
    "Michael_Jackson": (("Person",), ()),
    # -- companies ------------------------------------------------------------ #
    "Intel": (("Company",), ()),
    "Robert_Noyce": (("Person",), ()),
    "Gordon_Moore": (("Person",), ()),
    "BMW": (("Company",), ()),
    "Siemens": (("Company",), ()),
    "Allianz": (("Company",), ()),
    "Mojang": (("Company",), ()),
    "Minecraft": (("Company",), ()),  # videogame; Company type kept minimal
    "Orangina": (("Company",), ()),
    "Suntory": (("Company",), ()),
    "BMW_M3": (("Automobile",), ()),
    "Volkswagen_Golf": (("Automobile",), ()),
    "Porsche_911": (("Automobile",), ()),
    "Secret_Intelligence_Service": (("Company",), ()),  # never labelled MI6
    # -- sports ---------------------------------------------------------------- #
    "Michael_Jordan": (("BasketballPlayer",), ()),
    "Premier_League": (("SoccerLeague",), ()),
    "Manchester_United": (("SoccerClub",), ()),
    "Liverpool_FC": (("SoccerClub",), ()),
    "Ryan_Giggs": (("SoccerPlayer",), ()),
    "Wayne_Rooney": (("SoccerPlayer",), ()),
    "Raheem_Sterling": (("SoccerPlayer",), ()),
    # -- books / comics ---------------------------------------------------------- #
    "Jack_Kerouac": (("Writer",), ("Kerouac",)),
    "On_the_Road": (("Book",), ()),
    "The_Dharma_Bums": (("Book",), ()),
    "Big_Sur_(novel)": (("Book",), ("Big Sur",)),
    "Viking_Press": (("Company",), ()),
    "Farrar_Straus_and_Giroux": (("Company",), ()),
    "Captain_America": (("ComicsCharacter",), ()),
    "Joe_Simon": (("Person",), ()),
    "Jack_Kirby": (("Person",), ()),
    "Miffy": (("ComicsCharacter",), ()),
    "Dick_Bruna": (("Writer",), ()),
    "The_Pillars_of_the_Earth": (("Book",), ()),
    "Ken_Follett": (("Writer",), ()),
    # -- space ------------------------------------------------------------------- #
    "NASA": (("Company",), ()),
    "Launch_Complex_39A": (("LaunchPad",), ()),
    "Launch_Complex_39B": (("LaunchPad",), ()),
    # -- people for born-in/died-in ------------------------------------------------ #
    "Carl_Auer": (("Person",), ()),
    "Rosa_Albach": (("Person",), ()),
    "Franz_Schubert": (("Person",), ()),
    # -- universities ----------------------------------------------------------------- #
    "Free_University_Amsterdam": (("University",), ("Free University",)),
    "Amsterdam": (("City",), ()),
}

# --------------------------------------------------------------------- #
# Facts.  Literal objects are wrapped by the helpers above.
# --------------------------------------------------------------------- #

_FACTS: list[tuple[str, str, object]] = [
    # running example
    ("Antonio_Banderas", "spouse", "Melanie_Griffith"),
    ("Antonio_Banderas", "starring", "Philadelphia_(film)"),
    ("Tom_Hanks", "starring", "Philadelphia_(film)"),
    ("Jonathan_Demme", "director", "Philadelphia_(film)"),
    ("Aaron_McKie", "playForTeam", "Philadelphia_76ers"),
    ("Philadelphia_76ers", "locationCity", "Philadelphia"),
    # movies
    ("The_Godfather", "director", "Francis_Ford_Coppola"),
    ("The_Godfather_Part_II", "director", "Francis_Ford_Coppola"),
    ("Apocalypse_Now", "director", "Francis_Ford_Coppola"),
    ("Tom_Cruise", "starring", "Top_Gun"),
    ("Tom_Cruise", "starring", "Mission_Impossible"),
    ("Tom_Cruise", "starring", "Vanilla_Sky"),
    ("Tom_Cruise", "producer", "Minority_Report"),
    ("Leonardo_DiCaprio", "starring", "Titanic_(film)"),
    ("Leonardo_DiCaprio", "starring", "Inception"),
    ("The_Secret_in_Their_Eyes", "country", "Argentina"),
    ("Nine_Queens", "country", "Argentina"),
    ("Wild_Tales", "country", "Argentina"),
    ("Titanic_(film)", "country", "United_States"),
    # politics
    ("John_F._Kennedy", "successor", "Lyndon_B._Johnson"),
    ("Berlin", "mayor", "Klaus_Wowereit"),
    ("Wyoming", "governor", "Matt_Mead"),
    ("Alaska", "governor", "Sean_Parnell"),
    ("Queen_Elizabeth_II", "father", "George_VI"),
    ("Angela_Merkel", "birthName", Literal("Angela Dorothea Kasner")),
    ("Margaret_Thatcher", "child", "Mark_Thatcher"),
    ("Margaret_Thatcher", "child", "Carol_Thatcher"),
    ("Mark_Thatcher", "birthDate", _date("1953-08-15")),
    ("Carol_Thatcher", "birthDate", _date("1953-08-15")),
    ("Barack_Obama", "spouse", "Michelle_Obama"),
    ("Juliana_of_the_Netherlands", "restingPlace", "Delft"),
    ("Al_Capone", "alias", Literal("Scarface")),
    # geography
    ("Canada", "capital", "Ottawa"),
    ("Australia", "largestCity", "Sydney"),
    ("Sydney", "locatedInArea", "Australia"),
    ("Melbourne", "locatedInArea", "Australia"),
    ("Sydney", "populationTotal", _int("5312000")),
    ("Melbourne", "populationTotal", _int("5078000")),
    ("Berlin", "locatedInArea", "Germany"),
    ("Munich", "locatedInArea", "Germany"),
    ("Hamburg", "locatedInArea", "Germany"),
    ("Leipzig", "locatedInArea", "Germany"),
    ("Berlin", "populationTotal", _int("3645000")),
    ("Munich", "populationTotal", _int("1472000")),
    ("Hamburg", "populationTotal", _int("1841000")),
    ("Leipzig", "populationTotal", _int("587000")),
    ("Weser", "crosses", "Bremen"),
    ("Weser", "crosses", "Bremerhaven"),
    ("Weser", "crosses", "Minden"),
    ("Weser", "length", _num("452")),
    ("Rhine", "country", "Germany"),
    ("Rhine", "country", "France"),
    ("Rhine", "country", "Switzerland"),
    ("Rhine", "country", "Netherlands"),
    ("Rhine", "length", _num("1233")),
    ("Elbe", "country", "Germany"),
    ("Elbe", "length", _num("1094")),
    ("San_Francisco", "nickname", Literal("The Golden City")),
    ("San_Francisco", "nickname", Literal("Fog City")),
    ("Salt_Lake_City", "timeZone", "Mountain_Time_Zone"),
    ("Mount_Everest", "elevation", _num("8848")),
    ("Zugspitze", "elevation", _num("2962")),
    ("Watzmann", "elevation", _num("2713")),
    ("Zugspitze", "locatedInArea", "Germany"),
    ("Watzmann", "locatedInArea", "Germany"),
    ("Brno", "twinned", "Leipzig"),
    ("Brno", "twinned", "Vienna"),
    # music
    ("The_Prodigy", "bandMember", "Liam_Howlett"),
    ("The_Prodigy", "bandMember", "Keith_Flint"),
    ("The_Prodigy", "bandMember", "Maxim_(musician)"),
    ("Amanda_Palmer", "spouse", "Neil_Gaiman"),
    ("Michael_Jackson", "deathDate", _date("2009-06-25")),
    ("Michael_Jackson", "deathPlace", "Los_Angeles"),
    # companies
    ("Intel", "foundedBy", "Robert_Noyce"),
    ("Intel", "foundedBy", "Gordon_Moore"),
    ("BMW", "locationCity", "Munich"),
    ("Siemens", "locationCity", "Munich"),
    ("Allianz", "locationCity", "Munich"),
    ("BMW", "numberOfEmployees", _int("133778")),
    ("Siemens", "numberOfEmployees", _int("293000")),
    ("Allianz", "numberOfEmployees", _int("155411")),
    ("Minecraft", "developer", "Mojang"),
    ("Orangina", "manufacturer", "Suntory"),
    ("BMW_M3", "assembly", "Germany"),
    ("Volkswagen_Golf", "assembly", "Germany"),
    ("Porsche_911", "assembly", "Germany"),
    ("BMW_M3", "manufacturer", "BMW"),
    ("Secret_Intelligence_Service", "headquarter", "London"),
    # sports
    ("Michael_Jordan", "height", _num("1.98")),
    ("Manchester_United", "league", "Premier_League"),
    ("Liverpool_FC", "league", "Premier_League"),
    ("Ryan_Giggs", "team", "Manchester_United"),
    ("Wayne_Rooney", "team", "Manchester_United"),
    ("Raheem_Sterling", "team", "Liverpool_FC"),
    ("Ryan_Giggs", "birthDate", _date("1973-11-29")),
    ("Wayne_Rooney", "birthDate", _date("1985-10-24")),
    ("Raheem_Sterling", "birthDate", _date("1994-12-08")),
    ("Ryan_Giggs", "height", _num("1.79")),
    ("Wayne_Rooney", "height", _num("1.76")),
    ("Raheem_Sterling", "height", _num("1.70")),
    # books / comics
    ("On_the_Road", "author", "Jack_Kerouac"),
    ("The_Dharma_Bums", "author", "Jack_Kerouac"),
    ("Big_Sur_(novel)", "author", "Jack_Kerouac"),
    ("On_the_Road", "publisher", "Viking_Press"),
    ("The_Dharma_Bums", "publisher", "Viking_Press"),
    ("Big_Sur_(novel)", "publisher", "Farrar_Straus_and_Giroux"),
    ("On_the_Road", "numberOfPages", _int("320")),
    ("The_Dharma_Bums", "numberOfPages", _int("244")),
    ("Captain_America", "creator", "Joe_Simon"),
    ("Captain_America", "creator", "Jack_Kirby"),
    ("Miffy", "creator", "Dick_Bruna"),
    ("Dick_Bruna", "nationality", "Netherlands"),
    ("The_Pillars_of_the_Earth", "author", "Ken_Follett"),
    # space
    ("Launch_Complex_39A", "operator", "NASA"),
    ("Launch_Complex_39B", "operator", "NASA"),
    # born-in / died-in
    ("Carl_Auer", "birthPlace", "Vienna"),
    ("Carl_Auer", "deathPlace", "Berlin"),
    ("Rosa_Albach", "birthPlace", "Vienna"),
    ("Rosa_Albach", "deathPlace", "Berlin"),
    ("Franz_Schubert", "birthPlace", "Vienna"),
    ("Franz_Schubert", "deathPlace", "Vienna"),
    # universities
    ("Free_University_Amsterdam", "locationCity", "Amsterdam"),
    ("Free_University_Amsterdam", "numberOfStudents", _int("40000")),
]

# Entities appearing only as fact objects, typed on the fly.
_IMPLICIT_ENTITIES = {
    "Los_Angeles": ("City",),
}


def _default_label(name: str) -> str:
    label = name.replace("_", " ")
    if "(" in label:
        label = label.split("(")[0].strip()
    return label


def build_dbpedia_mini(distractors_per_entity: int = 0) -> KnowledgeGraph:
    """Build the mini-DBpedia knowledge graph (deterministic).

    ``distractors_per_entity`` adds that many *label clones* per curated
    entity — same surface label, no domain facts.  This recreates what full
    DBpedia does to entity linking: every mention retrieves a long
    candidate list, only one member of which participates in matches.  The
    timing benchmarks (Figure 6, Table 12) use this knob; correctness
    results are identical because clones never satisfy any query edge.
    """
    store = TripleStore()

    for class_name, labels in _CLASSES.items():
        class_iri = res(class_name)
        for label in {_default_label(class_name), *labels}:
            store.add(Triple(class_iri, RDFS_LABEL, Literal(label)))
    for child, parent in _SUBCLASSES:
        store.add(Triple(res(child), RDFS_SUBCLASSOF, res(parent)))

    def add_entity(name: str, types: tuple[str, ...], extra_labels: tuple[str, ...]) -> None:
        entity = res(name)
        for type_name in types:
            store.add(Triple(entity, RDF_TYPE, res(type_name)))
        for label in {_default_label(name), *extra_labels}:
            store.add(Triple(entity, RDFS_LABEL, Literal(label)))

    for name, (types, labels) in _ENTITIES.items():
        add_entity(name, types, labels)
    for name, types in _IMPLICIT_ENTITIES.items():
        add_entity(name, types, ())

    for subject, predicate, obj in _FACTS:
        obj_term = obj if isinstance(obj, Literal) else res(obj)
        store.add(Triple(res(subject), ont(predicate), obj_term))

    if distractors_per_entity > 0:
        note = ont("distractorNote")
        for name in _ENTITIES:
            label = _default_label(name)
            for clone_index in range(distractors_per_entity):
                clone = res(f"{name}__clone{clone_index}")
                store.add(Triple(clone, RDFS_LABEL, Literal(label)))
                store.add(Triple(clone, note, Literal(f"homonym {clone_index}")))

    return KnowledgeGraph(store)
