"""The QALD-3-style benchmark: 99 questions with gold answers.

Mirrors the composition of the QALD-3 DBpedia test set the paper evaluates
on (Section 6.3):

* the **32 questions of Table 11** — the ones the paper answers correctly —
  with their original ids and (lightly adapted) text, all answerable over
  the mini KG;
* **11 partially-answerable** questions (gold sets the KG covers only
  partly, or ambiguous phrases that add wrong extras) — Table 8's
  "partially" column;
* **failing questions** in the proportions of Table 10: aggregation
  (largest class), entity linking (MI6-style traps), relation extraction
  (withheld phrases), and others (data gaps → wrong/no answers).

Gold answers are term strings: ``res:Name`` for IRIs, bare lexical forms
for literals.  Yes/no questions carry ``gold_boolean`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Expected outcome categories (used to *organise* the dataset; the
#: evaluation harness computes actual outcomes independently).
RIGHT = "right"
PARTIAL = "partial"
AGGREGATION = "aggregation"
LINKING = "entity_linking"
RELATION = "relation_extraction"
OTHER = "other"


@dataclass(frozen=True, slots=True)
class QALDQuestion:
    """One benchmark question with its gold standard."""

    qid: int
    text: str
    gold: frozenset[str] = frozenset()
    gold_boolean: bool | None = None
    category: str = OTHER

    @property
    def is_boolean(self) -> bool:
        return self.gold_boolean is not None


def _q(qid, text, gold=(), boolean=None, category=OTHER):
    return QALDQuestion(qid, text, frozenset(gold), boolean, category)


_QUESTIONS: list[QALDQuestion] = [
    # ------------------------------------------------------------------ #
    # Table 11: the 32 questions the paper answers correctly.
    # ------------------------------------------------------------------ #
    _q(2, "Who was the successor of John F. Kennedy?",
       ["res:Lyndon_B._Johnson"], category=RIGHT),
    _q(3, "Who is the mayor of Berlin?", ["res:Klaus_Wowereit"], category=RIGHT),
    _q(14, "Give me all members of Prodigy.",
       ["res:Liam_Howlett", "res:Keith_Flint", "res:Maxim_(musician)"],
       category=RIGHT),
    _q(17, "Give me all cars that are produced in Germany.",
       ["res:BMW_M3", "res:Volkswagen_Golf", "res:Porsche_911"], category=RIGHT),
    _q(19, "Give me all people that were born in Vienna and died in Berlin.",
       ["res:Carl_Auer", "res:Rosa_Albach"], category=RIGHT),
    _q(20, "How tall is Michael Jordan?", ["1.98"], category=RIGHT),
    _q(21, "What is the capital of Canada?", ["res:Ottawa"], category=RIGHT),
    _q(22, "Who is the governor of Wyoming?", ["res:Matt_Mead"], category=RIGHT),
    _q(24, "Who was the father of Queen Elizabeth II?",
       ["res:George_VI"], category=RIGHT),
    _q(27, "Sean Parnell is the governor of which U.S. state?",
       ["res:Alaska"], category=RIGHT),
    _q(28, "Give me all movies directed by Francis Ford Coppola.",
       ["res:The_Godfather", "res:The_Godfather_Part_II", "res:Apocalypse_Now"],
       category=RIGHT),
    _q(30, "What is the birth name of Angela Merkel?",
       ["Angela Dorothea Kasner"], category=RIGHT),
    _q(35, "Who developed Minecraft?", ["res:Mojang"], category=RIGHT),
    _q(39, "Give me all companies in Munich.",
       ["res:BMW", "res:Siemens", "res:Allianz"], category=RIGHT),
    _q(41, "Who founded Intel?",
       ["res:Robert_Noyce", "res:Gordon_Moore"], category=RIGHT),
    _q(42, "Who is the husband of Amanda Palmer?",
       ["res:Neil_Gaiman"], category=RIGHT),
    _q(44, "Which cities does the Weser flow through?",
       ["res:Bremen", "res:Bremerhaven", "res:Minden"], category=RIGHT),
    _q(45, "Which countries are connected by the Rhine?",
       ["res:Germany", "res:France", "res:Switzerland", "res:Netherlands"],
       category=RIGHT),
    _q(54, "What are the nicknames of San Francisco?",
       ["The Golden City", "Fog City"], category=RIGHT),
    _q(58, "What is the time zone of Salt Lake City?",
       ["res:Mountain_Time_Zone"], category=RIGHT),
    _q(63, "Give me all Argentine films.",
       ["res:The_Secret_in_Their_Eyes", "res:Nine_Queens", "res:Wild_Tales"],
       category=RIGHT),
    _q(70, "Is Michelle Obama the wife of Barack Obama?",
       boolean=True, category=RIGHT),
    _q(74, "When did Michael Jackson die?", ["2009-06-25"], category=RIGHT),
    _q(76, "List the children of Margaret Thatcher.",
       ["res:Mark_Thatcher", "res:Carol_Thatcher"], category=RIGHT),
    _q(77, "Who was called Scarface?", ["res:Al_Capone"], category=RIGHT),
    _q(81, "Which books by Kerouac were published by Viking Press?",
       ["res:On_the_Road", "res:The_Dharma_Bums"], category=RIGHT),
    _q(83, "How high is the Mount Everest?", ["8848"], category=RIGHT),
    _q(84, "Who created the comic Captain America?",
       ["res:Joe_Simon", "res:Jack_Kirby"], category=RIGHT),
    _q(86, "What is the largest city in Australia?", ["res:Sydney"], category=RIGHT),
    _q(89, "In which city was the former Dutch queen Juliana buried?",
       ["res:Delft"], category=RIGHT),
    _q(98, "Which country does the creator of Miffy come from?",
       ["res:Netherlands"], category=RIGHT),
    _q(100, "Who produces Orangina?", ["res:Suntory"], category=RIGHT),
    # ------------------------------------------------------------------ #
    # Partially answerable: KG covers part of the gold set, or an
    # ambiguous phrase adds wrong extras.
    # ------------------------------------------------------------------ #
    _q(1, "Give me all movies with Tom Cruise.",
       ["res:Top_Gun", "res:Mission_Impossible", "res:Vanilla_Sky"],
       category=PARTIAL),  # 'movie with' also maps to producer → extra
    _q(4, "Give me all books by Kerouac.",
       ["res:On_the_Road", "res:The_Dharma_Bums", "res:Big_Sur_(novel)",
        "res:Visions_of_Cody"], category=PARTIAL),
    _q(5, "Give me all cities in Germany.",
       ["res:Berlin", "res:Munich", "res:Hamburg", "res:Leipzig",
        "res:Cologne"], category=PARTIAL),
    _q(6, "Who plays for Manchester United?",
       ["res:Ryan_Giggs", "res:Wayne_Rooney", "res:David_de_Gea"],
       category=PARTIAL),
    _q(8, "Give me all mountains in Germany.",
       ["res:Zugspitze", "res:Watzmann", "res:Feldberg"], category=PARTIAL),
    _q(9, "In which movies did Antonio Banderas star?",
       ["res:Philadelphia_(film)", "res:Desperado"], category=PARTIAL),
    _q(10, "Who was born in Vienna?",
       ["res:Carl_Auer", "res:Rosa_Albach", "res:Franz_Schubert",
        "res:Ludwig_Boltzmann"], category=PARTIAL),
    _q(11, "Which people died in Berlin?",
       ["res:Carl_Auer", "res:Rosa_Albach", "res:Bertolt_Brecht"],
       category=PARTIAL),
    _q(12, "Which books were published by Viking Press?",
       ["res:On_the_Road", "res:The_Dharma_Bums", "res:Lolita"],
       category=PARTIAL),
    _q(15, "Which films did Francis Ford Coppola direct?",
       ["res:The_Godfather", "res:The_Godfather_Part_II",
        "res:Apocalypse_Now", "res:The_Conversation"], category=PARTIAL),
    _q(16, "Who starred in Titanic?",
       ["res:Leonardo_DiCaprio", "res:Kate_Winslet"], category=PARTIAL),
    # ------------------------------------------------------------------ #
    # Aggregation questions (Table 10's largest failure class, 35 %).
    # ------------------------------------------------------------------ #
    _q(13, "Who is the youngest player in the Premier League?",
       ["res:Raheem_Sterling"], category=AGGREGATION),
    _q(18, "What is the highest mountain in Germany?",
       ["res:Zugspitze"], category=AGGREGATION),
    _q(23, "Which German city has the most inhabitants?",
       ["res:Berlin"], category=AGGREGATION),
    _q(25, "How many films did Tom Cruise star in?", ["3"], category=AGGREGATION),
    _q(26, "What is the longest river that crosses Germany?",
       ["res:Rhine"], category=AGGREGATION),
    _q(29, "Who is the oldest child of Margaret Thatcher?",
       ["res:Mark_Thatcher"], category=AGGREGATION),
    _q(31, "Which company in Munich has the most employees?",
       ["res:Siemens"], category=AGGREGATION),
    _q(32, "How many children did Margaret Thatcher have?",
       ["2"], category=AGGREGATION),
    _q(33, "How many members does the Prodigy have?", ["3"], category=AGGREGATION),
    _q(34, "What is the biggest city in Germany?",
       ["res:Berlin"], category=AGGREGATION),
    _q(36, "Who is the tallest player in the Premier League?",
       ["res:Ryan_Giggs"], category=AGGREGATION),
    _q(38, "How many companies are located in Munich?", ["3"], category=AGGREGATION),
    _q(40, "How many cities does the Weser flow through?", ["3"], category=AGGREGATION),
    _q(43, "Which book by Kerouac has the most pages?",
       ["res:On_the_Road"], category=AGGREGATION),
    _q(46, "How many launch pads does NASA operate?", ["2"], category=AGGREGATION),
    _q(47, "What is the longest river in Germany?", ["res:Rhine"], category=AGGREGATION),
    _q(49, "Who is the youngest governor of a U.S. state?",
       ["res:Sean_Parnell"], category=AGGREGATION),
    _q(50, "How many students does the Free University in Amsterdam have?",
       ["40000"], category=AGGREGATION),
    _q(51, "Which city in Australia has the most inhabitants?",
       ["res:Sydney"], category=AGGREGATION),
    _q(52, "What is the smallest country crossed by the Rhine?",
       ["res:Switzerland"], category=AGGREGATION),
    # ------------------------------------------------------------------ #
    # Entity-linking failures (27 %): the mention does not resolve.
    # ------------------------------------------------------------------ #
    _q(48, "In which UK city are the headquarters of the MI6?",
       ["res:London"], category=LINKING),
    _q(53, "Who wrote The Hobbit?", ["res:J._R._R._Tolkien"], category=LINKING),
    _q(55, "Who is the front man of Nirvana?",
       ["res:Kurt_Cobain"], category=LINKING),
    _q(56, "How tall is Shaq?", ["2.16"], category=LINKING),
    _q(57, "When did Freddie Mercury die?", ["1991-11-24"], category=LINKING),
    _q(59, "Who founded Apple Inc.?",
       ["res:Steve_Jobs", "res:Steve_Wozniak"], category=LINKING),
    _q(60, "What is the capital of Moldova?", ["res:Chisinau"], category=LINKING),
    _q(61, "Give me all movies directed by Stanley Kubrick.",
       ["res:2001_A_Space_Odyssey"], category=LINKING),
    _q(62, "Who is the governor of Texas?", ["res:Rick_Perry"], category=LINKING),
    _q(65, "What is the time zone of Tokyo?",
       ["res:Japan_Standard_Time"], category=LINKING),
    _q(66, "Who was the father of Louis XIV?", ["res:Louis_XIII"], category=LINKING),
    _q(67, "Which cities does the Mississippi flow through?",
       ["res:Memphis", "res:New_Orleans"], category=LINKING),
    _q(68, "Who developed Skype?", ["res:Skype_Technologies"], category=LINKING),
    _q(69, "What are the nicknames of Chicago?",
       ["The Windy City"], category=LINKING),
    _q(71, "Who was called the King of Pop?",
       ["res:Michael_Jackson"], category=LINKING),
    # ------------------------------------------------------------------ #
    # Relation-extraction failures (22 %): no phrase embedding found.
    # ------------------------------------------------------------------ #
    _q(64, "Give me all launch pads operated by NASA.",
       ["res:Launch_Complex_39A", "res:Launch_Complex_39B"], category=RELATION),
    _q(37, "Give me all sister cities of Brno.",
       ["res:Leipzig", "res:Vienna"], category=RELATION),
    _q(72, "Which museums exhibit The Scream?",
       ["res:National_Gallery_Oslo"], category=RELATION),
    _q(73, "Which countries border Germany?",
       ["res:France", "res:Switzerland", "res:Netherlands"], category=RELATION),
    _q(75, "Which moons orbit Jupiter?", ["res:Europa", "res:Io"], category=RELATION),
    _q(78, "Which languages are spoken in Switzerland?",
       ["res:German_language", "res:French_language"], category=RELATION),
    _q(79, "What does the abbreviation NASA stand for?",
       ["National Aeronautics and Space Administration"], category=RELATION),
    _q(80, "Which bridges span the Rhine?",
       ["res:Hohenzollern_Bridge"], category=RELATION),
    _q(82, "Who assassinated John F. Kennedy?",
       ["res:Lee_Harvey_Oswald"], category=RELATION),
    _q(85, "Which software is licensed under the GPL?",
       ["res:Linux"], category=RELATION),
    _q(87, "Who voiced Darth Vader?", ["res:James_Earl_Jones"], category=RELATION),
    _q(88, "Which asteroids were discovered in 1801?",
       ["res:Ceres"], category=RELATION),
    # ------------------------------------------------------------------ #
    # Other failures (16 %): data gaps → empty or wrong answers.
    # ------------------------------------------------------------------ #
    _q(7, "Is Berlin the capital of Germany?", boolean=True, category=OTHER),
    # Q90 answers partially: the missing capital-of-Germany fact leaves
    # "capital" an unconstrained variable, so the mirror orientation of the
    # mayor edge adds Berlin itself next to the correct answer.
    _q(90, "Who is the mayor of the capital of Germany?",
       ["res:Klaus_Wowereit"], category=PARTIAL),
    _q(91, "Which films are produced in the United States?",
       ["res:Titanic_(film)"], category=OTHER),
    _q(92, "Who is married to the mayor of Berlin?",
       ["res:Joern_Kubicki"], category=OTHER),
    _q(93, "Was Angela Merkel born in Hamburg?", boolean=True, category=OTHER),
    _q(94, "Who was the successor of Lyndon B. Johnson?",
       ["res:Richard_Nixon"], category=OTHER),
    _q(95, "Which cities does the Elbe flow through?",
       ["res:Hamburg", "res:Dresden"], category=OTHER),
    _q(96, "Who is the wife of Tom Hanks?", ["res:Rita_Wilson"], category=OTHER),
    _q(97, "Which movies did Jonathan Demme produce?",
       ["res:Philadelphia_(film)"], category=OTHER),
]


_TRAIN_QUESTIONS: list[QALDQuestion] = [
    _q(101, "Who directed The Godfather?", ["res:Francis_Ford_Coppola"], category=RIGHT),
    _q(102, "Who directed Apocalypse Now?", ["res:Francis_Ford_Coppola"], category=RIGHT),
    _q(103, "Who was married to Antonio Banderas?", ["res:Melanie_Griffith"], category=RIGHT),
    _q(104, "Who is married to Neil Gaiman?", ["res:Amanda_Palmer"], category=RIGHT),
    _q(105, "Which films did Jonathan Demme direct?", ["res:Philadelphia_(film)"], category=RIGHT),
    _q(106, "Who is the father of Elizabeth II?", ["res:George_VI"], category=RIGHT),
    _q(107, "Which city is the capital of Canada?", ["res:Ottawa"], category=RIGHT),
    _q(108, "How high is the Zugspitze?", ["2962"], category=RIGHT),
    _q(109, "How tall is Ryan Giggs?", ["1.79"], category=RIGHT),
    _q(110, "Which books were published by Farrar Straus and Giroux?",
       ["res:Big_Sur_(novel)"], category=RIGHT),
    _q(111, "Who wrote On the Road?", ["res:Jack_Kerouac"], category=RIGHT),
    _q(112, "Who wrote The Pillars of the Earth?", ["res:Ken_Follett"], category=RIGHT),
    _q(113, "Which rivers flow through Bremen?", ["res:Weser"], category=RIGHT),
    _q(114, "Which company produces Orangina?", ["res:Suntory"], category=RIGHT),
    _q(115, "Who plays for Liverpool FC?", ["res:Raheem_Sterling"], category=RIGHT),
    _q(116, "Who plays for the Philadelphia 76ers?", ["res:Aaron_McKie"], category=RIGHT),
    _q(117, "Where was Carl Auer born?", ["res:Vienna"], category=RIGHT),
    _q(118, "Where did Franz Schubert die?", ["res:Vienna"], category=RIGHT),
    _q(119, "Is Barack Obama married to Michelle Obama?", boolean=True, category=RIGHT),
    _q(120, "Did Antonio Banderas star in Philadelphia?", boolean=True, category=RIGHT),
    _q(121, "Which mountains are in Germany?",
       ["res:Zugspitze", "res:Watzmann"], category=RIGHT),
    _q(122, "Who is the governor of Alaska?", ["res:Sean_Parnell"], category=RIGHT),
    _q(123, "How high is the Watzmann?", ["2713"], category=RIGHT),
    _q(124, "When was Wayne Rooney born?", ["1985-10-24"], category=RIGHT),
    _q(125, "Give me all films directed by Jonathan Demme.",
       ["res:Philadelphia_(film)"], category=RIGHT),
    # Q126 needs the 2-hop (team · league) path — it separates θ=1 from
    # θ≥2 in the tuning sweep.
    _q(126, "Give me all players in the Premier League.",
       ["res:Ryan_Giggs", "res:Wayne_Rooney", "res:Raheem_Sterling"],
       category=RIGHT),
    _q(127, "What is the population of Berlin?", ["3645000"], category=RELATION),
    _q(128, "Who created Miffy?", ["res:Dick_Bruna"], category=RIGHT),
    _q(129, "Which companies are in Munich?",
       ["res:BMW", "res:Siemens", "res:Allianz"], category=RIGHT),
    _q(130, "Give me all German cars.",
       ["res:BMW_M3", "res:Volkswagen_Golf", "res:Porsche_911"], category=RIGHT),
]


def qald_train_questions() -> list[QALDQuestion]:
    """The 30-question training split (parameter tuning, Exp-style sweeps).

    QALD-3 ships a training set alongside the 99 test questions; systems
    tune on it.  These questions are disjoint from the test split (ids
    101+) but run over the same knowledge base.
    """
    questions = sorted(_TRAIN_QUESTIONS, key=lambda q: q.qid)
    assert len(questions) == 30
    return questions


def qald_questions() -> list[QALDQuestion]:
    """The 99 benchmark questions, sorted by id."""
    questions = sorted(_QUESTIONS, key=lambda q: q.qid)
    assert len(questions) == 99, f"expected 99 questions, have {len(questions)}"
    assert len({q.qid for q in questions}) == 99, "duplicate question ids"
    return questions


def questions_by_category() -> dict[str, list[QALDQuestion]]:
    """Questions grouped by their expected outcome category."""
    grouped: dict[str, list[QALDQuestion]] = {}
    for question in qald_questions():
        grouped.setdefault(question.category, []).append(question)
    return grouped
