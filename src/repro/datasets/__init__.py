"""Datasets: the curated mini-DBpedia KG, the Patty-style relation-phrase
dataset, the QALD-style benchmark questions, and a synthetic KG generator.

These stand in for the paper's resources (DBpedia, Patty, QALD-3) — see
DESIGN.md §2 for what each substitution preserves.  Everything is built
deterministically in code; generators take explicit seeds.
"""

from repro.datasets.dbpedia_mini import ONT, RES, build_dbpedia_mini
from repro.datasets.patty_sim import build_phrase_dataset, build_noisy_phrase_dataset
from repro.datasets.qald import QALDQuestion, qald_questions
from repro.datasets.synthetic import SyntheticConfig, build_synthetic_kg
from repro.datasets.yago_mini import (
    YagoQuestion,
    build_yago_mini,
    yago_phrase_dataset,
    yago_questions,
)

__all__ = [
    "ONT",
    "RES",
    "build_dbpedia_mini",
    "build_phrase_dataset",
    "build_noisy_phrase_dataset",
    "QALDQuestion",
    "qald_questions",
    "SyntheticConfig",
    "build_synthetic_kg",
    "YagoQuestion",
    "build_yago_mini",
    "yago_phrase_dataset",
    "yago_questions",
]
