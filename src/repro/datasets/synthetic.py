"""Synthetic knowledge-graph generator for scaling experiments.

The offline benchmarks (Tables 5 and 7) and the complexity-scaling bench
(Table 12) need graphs larger than the curated mini-DBpedia.  This
generator produces a DBpedia-*shaped* graph: entities with types and
labels, a Zipf-skewed predicate distribution, and a configurable density —
everything deterministic under an explicit seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.rdf import (
    IRI,
    KnowledgeGraph,
    Literal,
    RDF_TYPE,
    RDFS_LABEL,
    Triple,
    TripleStore,
)


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """Shape parameters of a synthetic KG."""

    entities: int = 1000
    predicates: int = 20
    classes: int = 10
    triples_per_entity: float = 4.0
    zipf_exponent: float = 1.1   # predicate popularity skew
    seed: int = 42

    def __post_init__(self) -> None:
        if self.entities < 1 or self.predicates < 1 or self.classes < 1:
            raise ValueError("entities, predicates, and classes must be positive")
        if self.triples_per_entity <= 0:
            raise ValueError("triples_per_entity must be positive")

    @classmethod
    def with_total_triples(cls, total: int, **overrides) -> "SyntheticConfig":
        """A config sized so the graph holds roughly ``total`` triples.

        Every entity contributes two structural triples (type + label)
        plus ``triples_per_entity`` relation triples on average, so the
        entity count solves ``total = entities * (tpe + 2)``.  The 10^6
        point of the scaling benchmarks is expressed this way instead of
        hand-picking entity counts per density.
        """
        if total < 1:
            raise ValueError("total must be positive")
        default_tpe = cls.__dataclass_fields__["triples_per_entity"].default
        tpe = float(overrides.pop("triples_per_entity", default_tpe))
        entities = max(1, round(total / (tpe + 2.0)))
        return cls(entities=entities, triples_per_entity=tpe, **overrides)


def _zipf_weights(count: int, exponent: float) -> list[float]:
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]


def build_synthetic_kg(config: SyntheticConfig = SyntheticConfig()) -> KnowledgeGraph:
    """Build a synthetic KG; same config → identical graph."""
    rng = random.Random(config.seed)
    store = TripleStore()

    classes = [IRI(f"syn:Class{i}") for i in range(config.classes)]
    predicates = [IRI(f"syn:pred{i}") for i in range(config.predicates)]
    entities = [IRI(f"syn:entity{i}") for i in range(config.entities)]
    weights = _zipf_weights(config.predicates, config.zipf_exponent)

    for index, entity in enumerate(entities):
        store.add(Triple(entity, RDF_TYPE, classes[index % config.classes]))
        store.add(Triple(entity, RDFS_LABEL, Literal(f"entity {index}")))

    total_triples = int(config.entities * config.triples_per_entity)
    for _ in range(total_triples):
        subject = rng.choice(entities)
        predicate = rng.choices(predicates, weights=weights, k=1)[0]
        obj = rng.choice(entities)
        store.add(Triple(subject, predicate, obj))

    return KnowledgeGraph(store)


def entity_pool(kg: KnowledgeGraph) -> list[IRI]:
    """The synthetic graph's entity IRIs (for phrase-dataset scaling)."""
    return [
        kg.iri_of(node_id)
        for node_id in sorted(kg.entity_ids())
        if kg.iri_of(node_id).value.startswith("syn:entity")
    ]
