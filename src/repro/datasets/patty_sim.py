"""Patty-style relation-phrase dataset simulator.

The paper consumes Patty's textual patterns with supporting entity pairs
(Table 2: "play in" supported by (Antonio_Banderas, Philadelphia(film)),
...).  This module supplies the equivalent for the mini-DBpedia graph:

* :func:`build_phrase_dataset` — the curated phrase dataset whose support
  pairs are drawn from the KG's facts, in (arg1, arg2) orientation.  It
  deliberately *omits* phrases ("operated by", "exhibit", ...) so the
  corresponding QALD questions fail at relation extraction, matching
  Table 10's second failure class.
* :func:`build_noisy_phrase_dataset` — adds support pairs that do NOT
  occur in the graph (the paper reports only 67 % of Patty pairs occur in
  DBpedia) plus filler phrases, for the offline benchmarks.
* :func:`scale_phrase_dataset` — replicates phrases with synthetic support drawn from a synthetic KG, for the Table 5/7 scaling runs.
"""

from __future__ import annotations

import random

from repro.datasets.dbpedia_mini import res
from repro.paraphrase.miner import RelationPhraseDataset
from repro.rdf.terms import IRI, Literal

# phrase → list of (arg1, arg2) support pairs; strings are res: names,
# ("lit", text) marks a literal-valued endpoint.
_SUPPORT: dict[str, list[tuple[object, object]]] = {
    # -- the running example (Table 2) -------------------------------- #
    "was married to": [
        ("Antonio_Banderas", "Melanie_Griffith"),
        ("Barack_Obama", "Michelle_Obama"),
        ("Amanda_Palmer", "Neil_Gaiman"),
    ],
    "played in": [
        ("Antonio_Banderas", "Philadelphia_(film)"),
        ("Tom_Hanks", "Philadelphia_(film)"),
        ("Aaron_McKie", "Philadelphia_76ers"),
        ("Jonathan_Demme", "Philadelphia_(film)"),
    ],
    "starred in": [
        ("Antonio_Banderas", "Philadelphia_(film)"),
        ("Tom_Cruise", "Top_Gun"),
        ("Leonardo_DiCaprio", "Titanic_(film)"),
    ],
    # -- copular phrases over nouns ------------------------------------- #
    "is the successor of": [("Lyndon_B._Johnson", "John_F._Kennedy")],
    "is the mayor of": [("Klaus_Wowereit", "Berlin")],
    "is the governor of": [
        ("Matt_Mead", "Wyoming"),
        ("Sean_Parnell", "Alaska"),
    ],
    "is the father of": [("George_VI", "Queen_Elizabeth_II")],
    "is the capital of": [("Ottawa", "Canada")],
    "is the husband of": [("Neil_Gaiman", "Amanda_Palmer")],
    "is the wife of": [("Michelle_Obama", "Barack_Obama")],
    "is the largest city in": [("Sydney", "Australia")],
    "is the time zone of": [("Mountain_Time_Zone", "Salt_Lake_City")],
    "is the birth name of": [(("lit", "Angela Dorothea Kasner"), "Angela_Merkel")],
    "is the nickname of": [(("lit", "The Golden City"), "San_Francisco")],
    "children of": [
        ("Mark_Thatcher", "Margaret_Thatcher"),
        ("Carol_Thatcher", "Margaret_Thatcher"),
    ],
    # Bare-noun forms for the possessive construction ("X's children").
    "children": [
        ("Mark_Thatcher", "Margaret_Thatcher"),
        ("Carol_Thatcher", "Margaret_Thatcher"),
    ],
    "birth name": [(("lit", "Angela Dorothea Kasner"), "Angela_Merkel")],
    "members of": [
        ("Liam_Howlett", "The_Prodigy"),
        ("Keith_Flint", "The_Prodigy"),
    ],
    "is the creator of": [
        ("Joe_Simon", "Captain_America"),
        ("Dick_Bruna", "Miffy"),
    ],
    "companies in": [
        ("BMW", "Munich"),
        ("Siemens", "Munich"),
    ],
    "books by": [
        ("On_the_Road", "Jack_Kerouac"),
        ("The_Dharma_Bums", "Jack_Kerouac"),
    ],
    "player in": [
        ("Ryan_Giggs", "Premier_League"),
        ("Wayne_Rooney", "Premier_League"),
    ],
    "cities in": [
        ("Berlin", "Germany"),
        ("Munich", "Germany"),
        ("Sydney", "Australia"),
    ],
    "mountain in": [
        ("Zugspitze", "Germany"),
        ("Watzmann", "Germany"),
    ],
    # -- verb phrases ------------------------------------------------------ #
    "directed": [
        ("Francis_Ford_Coppola", "The_Godfather"),
        ("Francis_Ford_Coppola", "Apocalypse_Now"),
        ("Jonathan_Demme", "Philadelphia_(film)"),
    ],
    "directed by": [
        ("The_Godfather", "Francis_Ford_Coppola"),
        ("Philadelphia_(film)", "Jonathan_Demme"),
    ],
    "produced in": [
        ("BMW_M3", "Germany"),
        ("Volkswagen_Golf", "Germany"),
    ],
    "produces": [("Suntory", "Orangina")],
    "developed": [("Mojang", "Minecraft")],
    "founded": [
        ("Robert_Noyce", "Intel"),
        ("Gordon_Moore", "Intel"),
    ],
    "was born in": [
        ("Carl_Auer", "Vienna"),
        ("Franz_Schubert", "Vienna"),
    ],
    "was born": [
        ("Carl_Auer", "Vienna"),
        ("Wayne_Rooney", ("lit", "1985-10-24")),
    ],
    "died in": [
        ("Carl_Auer", "Berlin"),
        ("Franz_Schubert", "Vienna"),
    ],
    "died": [
        ("Michael_Jackson", ("lit", "2009-06-25")),
        ("Franz_Schubert", "Vienna"),
    ],
    "was buried in": [("Juliana_of_the_Netherlands", "Delft")],
    "flows through": [
        ("Weser", "Bremen"),
        ("Weser", "Minden"),
    ],
    "is connected by": [
        ("Germany", "Rhine"),
        ("France", "Rhine"),
    ],
    "crosses": [("Weser", "Bremen")],
    "was published by": [
        ("On_the_Road", "Viking_Press"),
        ("The_Dharma_Bums", "Viking_Press"),
    ],
    "created": [
        ("Joe_Simon", "Captain_America"),
        ("Jack_Kirby", "Captain_America"),
    ],
    "wrote": [
        ("Jack_Kerouac", "On_the_Road"),
        ("Ken_Follett", "The_Pillars_of_the_Earth"),
    ],
    "comes from": [("Dick_Bruna", "Netherlands")],
    "was called": [("Al_Capone", ("lit", "Scarface"))],
    "is tall": [
        ("Michael_Jordan", ("lit", "1.98")),
        ("Ryan_Giggs", ("lit", "1.79")),
    ],
    "is high": [
        ("Mount_Everest", ("lit", "8848")),
        ("Zugspitze", ("lit", "2962")),
    ],
    "movies with": [
        ("Top_Gun", "Tom_Cruise"),
        ("Minority_Report", "Tom_Cruise"),
    ],
    "plays for": [
        ("Ryan_Giggs", "Manchester_United"),
        ("Aaron_McKie", "Philadelphia_76ers"),
    ],
    "creator of": [
        ("Dick_Bruna", "Miffy"),
        ("Joe_Simon", "Captain_America"),
    ],
    "headquarters of": [("London", "Secret_Intelligence_Service")],
    "is the front man of": [("Liam_Howlett", "The_Prodigy")],
    # -- demonym pseudo-phrase (see repro.core.demonyms) -------------------- #
    "demonym": [
        ("The_Secret_in_Their_Eyes", "Argentina"),
        ("Nine_Queens", "Argentina"),
        ("BMW_M3", "Germany"),
    ],
}

#: Gold predicate local names per phrase, for judging mined mappings
#: (replaces the paper's human judges in Exp 1).  A mined path is judged
#: correct when every predicate it traverses is in the phrase's gold set.
GOLD_PREDICATES: dict[str, set[str]] = {
    "was married to": {"spouse"},
    "played in": {"starring", "playForTeam", "director"},
    "starred in": {"starring"},
    "is the successor of": {"successor"},
    "is the mayor of": {"mayor"},
    "is the governor of": {"governor"},
    "is the father of": {"father"},
    "is the capital of": {"capital"},
    "is the husband of": {"spouse"},
    "is the wife of": {"spouse"},
    "is the largest city in": {"largestCity"},
    "is the time zone of": {"timeZone"},
    "is the birth name of": {"birthName"},
    "is the nickname of": {"nickname"},
    "children of": {"child"},
    "members of": {"bandMember"},
    "is the creator of": {"creator"},
    "creator of": {"creator"},
    "companies in": {"locationCity"},
    "books by": {"author"},
    "player in": {"team", "league"},
    "cities in": {"locatedInArea"},
    "mountain in": {"locatedInArea"},
    "directed": {"director"},
    "directed by": {"director"},
    "produced in": {"assembly"},
    "produces": {"manufacturer"},
    "developed": {"developer"},
    "founded": {"foundedBy"},
    "was born in": {"birthPlace"},
    "was born": {"birthPlace", "birthDate"},
    "died in": {"deathPlace"},
    "died": {"deathDate", "deathPlace", "birthPlace"},
    "was buried in": {"restingPlace"},
    "flows through": {"crosses"},
    "is connected by": {"country"},
    "crosses": {"crosses"},
    "was published by": {"publisher"},
    "created": {"creator"},
    "wrote": {"author"},
    "comes from": {"nationality"},
    "was called": {"alias"},
    "is tall": {"height"},
    "is high": {"elevation"},
    "movies with": {"starring"},
    "plays for": {"team", "playForTeam"},
    "headquarters of": {"headquarter"},
    "is the front man of": {"bandMember"},
    "demonym": {"country", "assembly"},
}

#: Phrases used by failing QALD questions that are deliberately withheld —
#: their questions must fail at relation extraction (Table 10 class 2).
WITHHELD_PHRASES = (
    "operated by",
    "exhibits",
    "launch pads operated by",
    "borders",
    "orbits",
)


def _pair_term(endpoint: object):
    if isinstance(endpoint, tuple) and endpoint[0] == "lit":
        return Literal(endpoint[1])
    return res(str(endpoint))


def build_phrase_dataset() -> RelationPhraseDataset:
    """The curated relation-phrase dataset aligned with the mini KG."""
    dataset = RelationPhraseDataset()
    for phrase, pairs in _SUPPORT.items():
        dataset.add(
            phrase,
            [(_pair_term(left), _pair_term(right)) for left, right in pairs],
        )
    return dataset


def build_noisy_phrase_dataset(
    extra_phrases: int = 50,
    missing_pair_fraction: float = 0.33,
    seed: int = 7,
) -> RelationPhraseDataset:
    """The curated dataset plus Patty-like noise.

    ``missing_pair_fraction`` of additional pairs reference entities absent
    from the graph (the paper: only 67 % of Patty pairs occur in DBpedia);
    ``extra_phrases`` filler phrases have entirely absent support.
    """
    rng = random.Random(seed)
    dataset = build_phrase_dataset()
    names = list(_SUPPORT)
    for phrase in names:
        for pairs in (dataset.support[phrase],):
            missing = max(1, int(len(pairs) * missing_pair_fraction))
            for i in range(missing):
                ghost = IRI(f"res:Unknown_{phrase.replace(' ', '_')}_{i}")
                pairs.append((ghost, IRI(f"res:Nowhere_{i}")))
    for i in range(extra_phrases):
        verb = rng.choice(["collaborated with", "was influenced by", "fought at",
                           "belongs to", "was renamed to"])
        dataset.add(
            f"{verb} ({i})",
            [(IRI(f"res:GhostA_{i}"), IRI(f"res:GhostB_{i}"))],
        )
    return dataset


def scale_phrase_dataset(
    base: RelationPhraseDataset,
    phrases: int,
    pairs_per_phrase: int,
    entity_pool: list[IRI],
    seed: int = 11,
) -> RelationPhraseDataset:
    """A larger dataset for the offline-time benchmarks (Tables 5 and 7).

    Synthesizes ``phrases`` relation phrases whose support pairs are drawn
    uniformly from ``entity_pool`` (typically a synthetic KG's entities),
    preserving the curated dataset's entries.
    """
    rng = random.Random(seed)
    dataset = RelationPhraseDataset(dict(base.support))
    for i in range(phrases):
        pairs = [
            (rng.choice(entity_pool), rng.choice(entity_pool))
            for _ in range(pairs_per_phrase)
        ]
        dataset.add(f"synthetic relation {i}", pairs)
    return dataset
