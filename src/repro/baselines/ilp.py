"""Exact 0/1 integer linear programming by branch and bound.

DEANNA models joint disambiguation as an ILP (the paper: "an NP-hard
problem").  This solver is deliberately exact and general: maximize
``c·x`` over binary ``x`` subject to linear constraints.  The bound is the
classic optimistic completion (add every remaining positive objective
coefficient); infeasibility pruning uses per-constraint achievable
activity ranges.  Worst case exponential — which is the point: the
baseline's question-understanding cost comes from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.exceptions import ILPError, InfeasibleError


class Sense(Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True, slots=True)
class Constraint:
    """A linear constraint Σ coeff·x  (sense)  bound."""

    coefficients: tuple[tuple[int, float], ...]  # (variable index, coeff)
    sense: Sense
    bound: float


@dataclass(slots=True)
class Solution:
    """An optimal assignment and its objective value."""

    assignment: dict[str, int]
    objective: float
    nodes_explored: int


class IntegerProgram:
    """A 0/1 maximization problem built incrementally."""

    def __init__(self) -> None:
        self._names: list[str] = []
        self._objective: list[float] = []
        self._constraints: list[Constraint] = []
        self._index: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_variable(self, name: str, objective: float) -> int:
        """Add a binary variable; returns its index."""
        if name in self._index:
            raise ILPError(f"duplicate variable name: {name!r}")
        index = len(self._names)
        self._names.append(name)
        self._objective.append(objective)
        self._index[name] = index
        return index

    def variable_count(self) -> int:
        return len(self._names)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ILPError(f"unknown variable: {name!r}") from None

    def add_constraint(
        self, coefficients: dict[str, float], sense: Sense, bound: float
    ) -> None:
        """Add Σ coeff·x (sense) bound, with variables given by name."""
        if not coefficients:
            raise ILPError("constraint needs at least one variable")
        entries = tuple(
            (self.index_of(name), coeff) for name, coeff in coefficients.items()
        )
        self._constraints.append(Constraint(entries, sense, bound))

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def solve(self) -> Solution:
        """Find an optimal assignment (raises :class:`InfeasibleError`)."""
        n = len(self._names)
        # Branch on high-impact variables first.
        order = sorted(range(n), key=lambda i: -abs(self._objective[i]))
        # Suffix sums of positive objective mass for the optimistic bound.
        positive_suffix = [0.0] * (n + 1)
        for position in range(n - 1, -1, -1):
            gain = max(self._objective[order[position]], 0.0)
            positive_suffix[position] = positive_suffix[position + 1] + gain

        best_value = float("-inf")
        best_assignment: list[int] | None = None
        assignment = [0] * n
        nodes = 0

        # Precompute per-constraint min/max contribution of each variable.
        def search(position: int, value: float) -> None:
            nonlocal best_value, best_assignment, nodes
            nodes += 1
            if value + positive_suffix[position] <= best_value:
                return  # cannot beat the incumbent
            if not self._partially_feasible(assignment, order, position):
                return
            if position == n:
                if value > best_value:
                    best_value = value
                    best_assignment = assignment.copy()
                return
            variable = order[position]
            # Try the objective-improving branch first.
            branches = (1, 0) if self._objective[variable] > 0 else (0, 1)
            for choice in branches:
                assignment[variable] = choice
                search(position + 1, value + choice * self._objective[variable])
            assignment[variable] = 0

        search(0, 0.0)
        if best_assignment is None:
            raise InfeasibleError("no feasible 0/1 assignment")
        return Solution(
            assignment={
                name: best_assignment[index] for name, index in self._index.items()
            },
            objective=best_value,
            nodes_explored=nodes,
        )

    def _partially_feasible(
        self, assignment: list[int], order: list[int], position: int
    ) -> bool:
        """Can the fixed prefix still be completed feasibly?

        For each constraint, compute the activity range achievable by the
        unfixed variables and check the bound remains reachable.
        """
        fixed = set(order[:position])
        for constraint in self._constraints:
            lo = hi = 0.0
            for variable, coeff in constraint.coefficients:
                if variable in fixed:
                    contribution = coeff * assignment[variable]
                    lo += contribution
                    hi += contribution
                elif coeff > 0:
                    hi += coeff
                else:
                    lo += coeff
            if constraint.sense is Sense.LE and lo > constraint.bound + 1e-9:
                return False
            if constraint.sense is Sense.GE and hi < constraint.bound - 1e-9:
                return False
            if constraint.sense is Sense.EQ and not (
                lo <= constraint.bound + 1e-9 and hi >= constraint.bound - 1e-9
            ):
                return False
        return True
