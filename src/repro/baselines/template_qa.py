"""Template-based QA baseline in the style of Unger et al. (WWW 2012).

The related-work reference point: a fixed set of question templates, each
with a SPARQL skeleton; slots are filled with the *top-1* entity link and
the *top-1* dictionary predicate — no joint reasoning at all.  Brittle by
design; useful as a floor in the end-to-end comparison and as the "manually
defined SPARQL templates" contrast of Section 7.
"""

from __future__ import annotations

import re
import time

from repro.core.pipeline import Answer, FAILURE_ENTITY_LINKING, FAILURE_NO_MATCH, FAILURE_RELATION_EXTRACTION
from repro.linking.linker import EntityLinker
from repro.nlp.questions import analyze_question
from repro.paraphrase.dictionary import ParaphraseDictionary
from repro.paraphrase.miner import normalize_phrase
from repro.rdf.graph import KnowledgeGraph, step_is_forward, step_predicate
from repro.rdf.ntriples import serialize_term
from repro.sparql import evaluate as sparql_evaluate
from repro.sparql import parse_query

#: (pattern, relation-slot, entity-slot).  Groups: rel / ent.
_TEMPLATES = [
    re.compile(r"^(?:who|what) (?:is|was|are|were) the (?P<rel>[\w ]+?) of (?:the )?(?P<ent>[\w .'-]+)\?$", re.I),
    re.compile(r"^(?:give me|list) (?:all |the )?(?P<rel>[\w ]+?) of (?:the )?(?P<ent>[\w .'-]+)\.?$", re.I),
    re.compile(r"^who (?P<rel>[\w ]+?) (?P<ent>[\w .'-]+)\?$", re.I),
]


class TemplateQA:
    """Top-1 template instantiation: one pattern, one entity, one predicate."""

    def __init__(self, kg: KnowledgeGraph, dictionary: ParaphraseDictionary):
        self.kg = kg
        self.dictionary = dictionary
        self.linker = EntityLinker(kg, max_candidates=1)

    def answer(self, question: str) -> Answer:
        result = Answer(question=question)
        result.analysis = analyze_question(question)
        started = time.perf_counter()
        slots = self._match_template(question)
        if slots is None:
            result.failure = FAILURE_RELATION_EXTRACTION
            result.understanding_time = time.perf_counter() - started
            return result
        relation_phrase, entity_phrase = slots

        # The templates strip the connective; try the dictionary's phrasings.
        variants = (
            relation_phrase,
            f"{relation_phrase} of",
            f"is the {relation_phrase} of",
        )
        mappings = []
        for variant in variants:
            mappings = [
                m
                for m in self.dictionary.lookup(normalize_phrase(variant))
                if len(m.path) == 1
            ]
            if mappings:
                break
        if not mappings:
            result.failure = FAILURE_RELATION_EXTRACTION
            result.understanding_time = time.perf_counter() - started
            return result
        links = self.linker.link(entity_phrase)
        if not links:
            result.failure = FAILURE_ENTITY_LINKING
            result.understanding_time = time.perf_counter() - started
            return result
        result.understanding_time = time.perf_counter() - started

        started = time.perf_counter()
        step = mappings[0].path[0]
        predicate = serialize_term(self.kg.iri_of(step_predicate(step)))
        entity = serialize_term(self.kg.term_of(links[0].node_id))
        if step_is_forward(step):
            pattern = f"?x {predicate} {entity} ."
        else:
            pattern = f"{entity} {predicate} ?x ."
        query_text = f"SELECT DISTINCT ?x WHERE {{ {pattern} }}"
        result.sparql_queries = [query_text]
        rows = sparql_evaluate(self.kg.store, parse_query(query_text))
        result.answers = [row[variable] for row in rows for variable in row]
        result.evaluation_time = time.perf_counter() - started
        if not result.answers:
            result.failure = FAILURE_NO_MATCH
        return result

    @staticmethod
    def _match_template(question: str) -> tuple[str, str] | None:
        text = " ".join(question.split())
        for template in _TEMPLATES:
            match = template.match(text)
            if match:
                return match.group("rel"), match.group("ent")
        return None
