"""Template-based QA baseline in the style of Unger et al. (WWW 2012).

The related-work reference point: a fixed set of question templates, each
with a SPARQL skeleton; slots are filled with the *top-1* entity link and
the *top-1* dictionary predicate — no joint reasoning at all.  Brittle by
design; useful as a floor in the end-to-end comparison and as the "manually
defined SPARQL templates" contrast of Section 7.

Stage timing comes from the shared ``repro.obs`` spans (the same
``understanding`` / ``evaluation`` names as the main pipeline), so the
harness and Figure 6 compare all systems on identical instrumentation.
"""

from __future__ import annotations

import re

from repro import obs
from repro.core.pipeline import Answer, FAILURE_ENTITY_LINKING, FAILURE_NO_MATCH, FAILURE_RELATION_EXTRACTION
from repro.linking.linker import EntityLinker
from repro.nlp.questions import analyze_question
from repro.paraphrase.dictionary import ParaphraseDictionary
from repro.paraphrase.miner import normalize_phrase
from repro.rdf.graph import KnowledgeGraph, step_is_forward, step_predicate
from repro.rdf.ntriples import serialize_term
from repro.sparql import evaluate as sparql_evaluate
from repro.sparql import parse_query

#: (pattern, relation-slot, entity-slot).  Groups: rel / ent.
_TEMPLATES = [
    re.compile(r"^(?:who|what) (?:is|was|are|were) the (?P<rel>[\w ]+?) of (?:the )?(?P<ent>[\w .'-]+)\?$", re.I),
    re.compile(r"^(?:give me|list) (?:all |the )?(?P<rel>[\w ]+?) of (?:the )?(?P<ent>[\w .'-]+)\.?$", re.I),
    re.compile(r"^who (?P<rel>[\w ]+?) (?P<ent>[\w .'-]+)\?$", re.I),
]


class TemplateQA:
    """Top-1 template instantiation: one pattern, one entity, one predicate."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        dictionary: ParaphraseDictionary,
        tracer=None,
    ):
        self.kg = kg
        self.dictionary = dictionary
        self.linker = EntityLinker(kg, max_candidates=1)
        self.tracer = tracer

    def answer(self, question: str) -> Answer:
        tracer = self.tracer if self.tracer is not None else obs.get_tracer()
        result = Answer(question=question)
        with tracer.span("answer", question=question, system="template_qa") as root:
            result.analysis = analyze_question(question)
            with tracer.span("understanding") as span:
                slots = self._understand(question, result, tracer)
            result.understanding_time = span.duration
            if slots is not None:
                with tracer.span("evaluation") as span:
                    self._evaluate(*slots, result)
                result.evaluation_time = span.duration
            root.set(failure=result.failure, answers=len(result.answers))
        return result

    # ------------------------------------------------------------------ #

    def _understand(self, question: str, result: Answer, tracer):
        """Template match + top-1 predicate and entity, or None on failure."""
        slots = self._match_template(question)
        if slots is None:
            result.failure = FAILURE_RELATION_EXTRACTION
            return None
        relation_phrase, entity_phrase = slots

        # The templates strip the connective; try the dictionary's phrasings.
        variants = (
            relation_phrase,
            f"{relation_phrase} of",
            f"is the {relation_phrase} of",
        )
        mappings = []
        for variant in variants:
            mappings = [
                m
                for m in self.dictionary.lookup(normalize_phrase(variant))
                if len(m.path) == 1
            ]
            if mappings:
                break
        if not mappings:
            result.failure = FAILURE_RELATION_EXTRACTION
            return None
        with tracer.span("linking", phrase=entity_phrase) as span:
            links = self.linker.link(entity_phrase, tracer=tracer)
            span.set(candidates=len(links))
        if not links:
            result.failure = FAILURE_ENTITY_LINKING
            return None
        return mappings, links

    def _evaluate(self, mappings, links, result: Answer) -> None:
        step = mappings[0].path[0]
        predicate = serialize_term(self.kg.iri_of(step_predicate(step)))
        entity = serialize_term(self.kg.term_of(links[0].node_id))
        if step_is_forward(step):
            pattern = f"?x {predicate} {entity} ."
        else:
            pattern = f"{entity} {predicate} ?x ."
        query_text = f"SELECT DISTINCT ?x WHERE {{ {pattern} }}"
        result.sparql_queries = [query_text]
        rows = sparql_evaluate(self.kg.store, parse_query(query_text))
        result.answers = [row[variable] for row in rows for variable in row]
        if not result.answers:
            result.failure = FAILURE_NO_MATCH

    @staticmethod
    def _match_template(question: str) -> tuple[str, str] | None:
        text = " ".join(question.split())
        for template in _TEMPLATES:
            match = template.match(text)
            if match:
                return match.group("rel"), match.group("ent")
        return None
