"""Baseline systems the paper compares against.

* :mod:`repro.baselines.ilp` — an exact 0/1 integer linear program solver
  (branch and bound), the substrate for DEANNA's joint disambiguation.
* :mod:`repro.baselines.deanna` — a reimplementation of DEANNA
  (Yahya et al., EMNLP 2012): build a disambiguation graph over phrase
  candidates, solve selection as an ILP (NP-hard question understanding),
  emit ONE disambiguated SPARQL query, and evaluate it.
* :mod:`repro.baselines.template_qa` — a small template-based system in the
  style of Unger et al. (WWW 2012), for reference.
"""

from repro.baselines.ilp import Constraint, IntegerProgram, Sense, Solution
from repro.baselines.deanna import Deanna
from repro.baselines.template_qa import TemplateQA

__all__ = [
    "Constraint",
    "IntegerProgram",
    "Sense",
    "Solution",
    "Deanna",
    "TemplateQA",
]
