"""DEANNA baseline: joint disambiguation via ILP, then one SPARQL query.

Reimplements the comparison system of Yahya et al. (EMNLP 2012) as the
paper characterises it:

* **Question understanding is where disambiguation happens.**  All phrase
  candidates go into a *disambiguation graph*; selecting one candidate per
  phrase while maximising similarity + pairwise semantic coherence is an
  integer linear program (NP-hard).  Coherence between every candidate
  pair is computed on the fly against the knowledge graph — the paper:
  "it is very costly".
* **Single predicates only** — "existing systems ... only consider mapping
  the relation phrase to single predicates"; multi-hop paths are dropped.
* **One interpretation** — the ILP's optimum is translated into exactly one
  SPARQL query.  If that interpretation has no matches in the data, DEANNA
  simply returns nothing; there is no data-driven fallback.
* **No recall heuristics** — the four argument rules of Section 4.1.2 are
  our method's contribution (Table 9); DEANNA runs without them, and
  without the demonym/common-noun-variable extensions.

The output object is the same :class:`repro.core.pipeline.Answer`, so the
evaluation harness and benchmarks treat both systems uniformly.
"""

from __future__ import annotations

from repro import obs
from repro.baselines.ilp import IntegerProgram, InfeasibleError, Sense
from repro.core.argument_finding import ArgumentFinder
from repro.core.graph_builder import build_semantic_query_graph
from repro.core.pipeline import (
    Answer,
    FAILURE_ENTITY_LINKING,
    FAILURE_NO_MATCH,
    FAILURE_PARSE,
    FAILURE_RELATION_EXTRACTION,
    target_vertices,
)
from repro.core.relation_extraction import RelationExtractor
from repro.core.semantic_graph import QSVertex, SemanticQueryGraph, SemanticRelation
from repro.exceptions import ParseError
from repro.linking.linker import EntityLinker, LinkCandidate
from repro.nlp.dep_parser import DependencyParser
from repro.nlp.questions import analyze_question
from repro.paraphrase.dictionary import ParaphraseDictionary
from repro.rdf import vocab
from repro.rdf.graph import KnowledgeGraph, step_is_forward, step_predicate
from repro.rdf.ntriples import serialize_term
from repro.sparql import evaluate as sparql_evaluate
from repro.sparql import parse_query

#: weight of pairwise coherence relative to similarity in the ILP objective.
_COHERENCE_WEIGHT = 0.5


class Deanna:
    """The DEANNA-style generate-then-evaluate baseline."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        dictionary: ParaphraseDictionary,
        max_candidates: int = 10,
        linker: EntityLinker | None = None,
        tracer=None,
    ):
        self.kg = kg
        self.dictionary = dictionary
        self.tracer = tracer
        self.parser = DependencyParser()
        self.extractor = RelationExtractor(dictionary)
        # No heuristic recall rules: they are the compared paper's addition.
        self.argument_finder = ArgumentFinder(use_heuristics=False)
        self.linker = linker if linker is not None else EntityLinker(
            kg, max_candidates=max_candidates
        )
        self.last_ilp_nodes = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def answer(self, question: str) -> Answer:
        tracer = self.tracer if self.tracer is not None else obs.get_tracer()
        result = Answer(question=question)
        with tracer.span("answer", question=question, system="deanna") as root:
            result.analysis = analyze_question(question)
            with tracer.span("understanding") as span:
                selection = self._understand(question, result, tracer)
            result.understanding_time = span.duration
            if selection is None:
                root.set(failure=result.failure)
                return result
            graph, chosen_vertices, chosen_edges = selection

            with tracer.span("evaluation") as span:
                self._evaluate(graph, chosen_vertices, chosen_edges, result)
            result.evaluation_time = span.duration
            root.set(
                failure=result.failure,
                answers=len(result.answers),
                boolean=result.boolean,
            )
        return result

    # ------------------------------------------------------------------ #
    # Stage 1: understanding = candidates + joint ILP disambiguation
    # ------------------------------------------------------------------ #

    def _understand(self, question: str, result: Answer, tracer=obs.NOOP):
        with tracer.span("parse"):
            try:
                tree = self.parser.parse(question)
            except ParseError:
                result.failure = FAILURE_PARSE
                return None
        embeddings = self.extractor.find_embeddings(tree)
        relations: list[SemanticRelation] = []
        for embedding in embeddings:
            arguments = self.argument_finder.find_arguments(tree, embedding)
            if arguments is None:
                continue
            relations.append(
                SemanticRelation(
                    embedding.phrase_words, arguments.arg1, arguments.arg2,
                    embedding.nodes,
                )
            )
        if not relations:
            result.failure = FAILURE_RELATION_EXTRACTION
            return None
        graph = build_semantic_query_graph(relations)
        if not graph.edges:
            result.failure = FAILURE_RELATION_EXTRACTION
            return None
        result.semantic_graph = graph

        with tracer.span("candidate_generation"):
            vertex_candidates = self._vertex_candidates(graph, result)
            if vertex_candidates is None:
                return None
            edge_candidates = self._edge_candidates(graph, result)
            if edge_candidates is None:
                return None

        return self._solve_joint_ilp(
            graph, vertex_candidates, edge_candidates, result, tracer
        )

    def _vertex_candidates(self, graph: SemanticQueryGraph, result: Answer):
        candidates: dict[int, list[LinkCandidate] | None] = {}
        for vertex in graph.vertices.values():
            if vertex.is_wh:
                candidates[vertex.vertex_id] = None  # stays a variable
                continue
            linked = [
                candidate
                for candidate in self.linker.link(vertex.phrase)
                # DEANNA's linker returns entities and classes, not values.
                if not self.kg.store.is_literal_id(candidate.node_id)
            ]
            if not linked:
                result.failure = FAILURE_ENTITY_LINKING
                return None
            candidates[vertex.vertex_id] = linked
        return candidates

    def _edge_candidates(self, graph: SemanticQueryGraph, result: Answer):
        candidates: dict[int, list[tuple[int, bool, float]]] = {}
        for index, edge in enumerate(graph.edges):
            # Single predicates only: (predicate id, forward?, confidence).
            single = [
                (step_predicate(m.path[0]), step_is_forward(m.path[0]), m.confidence)
                for m in self.dictionary.lookup(edge.phrase_words)
                if len(m.path) == 1
            ]
            if not single:
                result.failure = FAILURE_RELATION_EXTRACTION
                return None
            candidates[index] = single
        return candidates

    def _solve_joint_ilp(
        self, graph, vertex_candidates, edge_candidates, result: Answer, tracer=obs.NOOP
    ):
        """Build and solve the disambiguation ILP.

        Variables: one selector per candidate of every phrase; one pair
        variable per (vertex candidate, incident edge candidate) pair with
        its on-the-fly coherence weight.  Constraints: exactly one
        candidate per phrase; pair variables linked to their selectors.
        """
        program = IntegerProgram()
        for vertex_id, candidates in vertex_candidates.items():
            if candidates is None:
                continue
            names = []
            for position, candidate in enumerate(candidates):
                name = f"v{vertex_id}_{position}"
                program.add_variable(name, candidate.score)
                names.append(name)
            program.add_constraint({name: 1.0 for name in names}, Sense.EQ, 1.0)
        for edge_index, candidates in edge_candidates.items():
            names = []
            for position, _candidate in enumerate(candidates):
                name = f"e{edge_index}_{position}"
                program.add_variable(name, candidates[position][2])
                names.append(name)
            program.add_constraint({name: 1.0 for name in names}, Sense.EQ, 1.0)

        # Pairwise coherence between every vertex candidate and every
        # candidate predicate of every incident edge — computed on the fly
        # against the graph (the expensive part the paper criticises).
        for edge_index, edge in enumerate(graph.edges):
            for vertex_id in (edge.source, edge.target):
                candidates = vertex_candidates.get(vertex_id)
                if candidates is None:
                    continue
                for vpos, vcand in enumerate(candidates):
                    for epos, (predicate, _forward, _conf) in enumerate(
                        edge_candidates[edge_index]
                    ):
                        coherence = self._coherence(vcand, predicate)
                        if coherence <= 0:
                            continue
                        pair = f"y_v{vertex_id}_{vpos}_e{edge_index}_{epos}"
                        program.add_variable(pair, _COHERENCE_WEIGHT * coherence)
                        vname = f"v{vertex_id}_{vpos}"
                        ename = f"e{edge_index}_{epos}"
                        program.add_constraint(
                            {pair: 1.0, vname: -1.0}, Sense.LE, 0.0
                        )
                        program.add_constraint(
                            {pair: 1.0, ename: -1.0}, Sense.LE, 0.0
                        )

        with tracer.span("ilp_solve", variables=program.variable_count()) as span:
            try:
                solution = program.solve()
            except InfeasibleError:
                result.failure = FAILURE_NO_MATCH
                return None
            span.set(nodes_explored=solution.nodes_explored)
        self.last_ilp_nodes = solution.nodes_explored
        tracer.metrics.incr("deanna.ilp_nodes_explored", solution.nodes_explored)

        chosen_vertices: dict[int, LinkCandidate | None] = {}
        for vertex_id, candidates in vertex_candidates.items():
            if candidates is None:
                chosen_vertices[vertex_id] = None
                continue
            for position, candidate in enumerate(candidates):
                if solution.assignment[f"v{vertex_id}_{position}"] == 1:
                    chosen_vertices[vertex_id] = candidate
                    break
        chosen_edges: dict[int, tuple[int, bool]] = {}
        for edge_index, candidates in edge_candidates.items():
            for position, (predicate, forward, _conf) in enumerate(candidates):
                if solution.assignment[f"e{edge_index}_{position}"] == 1:
                    chosen_edges[edge_index] = (predicate, forward)
                    break
        return graph, chosen_vertices, chosen_edges

    def _coherence(self, candidate: LinkCandidate, predicate: int) -> float:
        """Semantic coherence of (entity/class candidate, predicate):
        1 when the candidate (or an instance of it) touches the predicate."""
        if candidate.is_class:
            nodes = self.kg.instances_of(candidate.node_id)
        else:
            nodes = {candidate.node_id}
        for node in nodes:
            for edge in self.kg.edges(node, include_literals=True):
                if edge.predicate == predicate:
                    return 1.0
        return 0.0

    # ------------------------------------------------------------------ #
    # Stage 2: SPARQL generation and evaluation
    # ------------------------------------------------------------------ #

    def _evaluate(self, graph, chosen_vertices, chosen_edges, result: Answer) -> None:
        targets = target_vertices(graph)
        target_ids = {vertex.vertex_id for vertex in targets}
        queries = self._sparql_queries(graph, chosen_vertices, chosen_edges, target_ids)
        result.sparql_queries = queries

        if target_ids:
            primary = f"?v{targets[0].vertex_id}"
            answers = []
            seen = set()
            for query_text in queries:
                for row in sparql_evaluate(self.kg.store, parse_query(query_text)):
                    for variable, term in row.items():
                        if f"?{variable.name}" == primary and term not in seen:
                            seen.add(term)
                            answers.append(term)
            result.answers = answers
            if not answers:
                result.failure = FAILURE_NO_MATCH
        else:
            result.boolean = any(
                sparql_evaluate(self.kg.store, parse_query(query_text))
                for query_text in queries
            )

    def _sparql_queries(self, graph, chosen_vertices, chosen_edges, target_ids):
        """The disambiguated SPARQL: ONE query for ONE interpretation.

        DEANNA's model fixes predicate directions from its templates;
        lacking those, each edge becomes a two-arm UNION over the two
        orientations — still a single query, still a single committed
        candidate per phrase.
        """

        def vertex_term(vertex: QSVertex) -> str:
            chosen = chosen_vertices.get(vertex.vertex_id)
            if vertex.vertex_id in target_ids or chosen is None or chosen.is_class:
                return f"?v{vertex.vertex_id}"
            return serialize_term(self.kg.term_of(chosen.node_id))

        type_lines: list[str] = []
        for vertex in graph.vertices.values():
            chosen = chosen_vertices.get(vertex.vertex_id)
            if chosen is not None and chosen.is_class:
                class_term = serialize_term(self.kg.term_of(chosen.node_id))
                type_lines.append(
                    f"  ?v{vertex.vertex_id} {serialize_term(vocab.RDF_TYPE)} {class_term} ."
                )

        union_blocks: list[str] = []
        for index, edge in enumerate(graph.edges):
            predicate, forward = chosen_edges[index]
            predicate_term = serialize_term(self.kg.iri_of(predicate))
            source = vertex_term(graph.vertices[edge.source])
            target = vertex_term(graph.vertices[edge.target])
            first, second = (source, target) if forward else (target, source)
            union_blocks.append(
                f"  {{ {first} {predicate_term} {second} . }} UNION "
                f"{{ {second} {predicate_term} {first} . }}"
            )

        body = "\n".join(type_lines + union_blocks)
        if target_ids:
            projection = " ".join(f"?v{vid}" for vid in sorted(target_ids))
            return [f"SELECT DISTINCT {projection} WHERE {{\n{body}\n}}"]
        return [f"ASK WHERE {{\n{body}\n}}"]
