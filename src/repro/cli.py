"""Command-line interface: ask questions, run SPARQL, evaluate benchmarks.

Usage::

    python -m repro ask "Who is the mayor of Berlin?"
    python -m repro --trace ask "Who is the mayor of Berlin?"  # span tree
    python -m repro --trace-json trace.json ask "..."          # JSON export
    python -m repro shell                 # interactive question loop
    python -m repro sparql "SELECT ?x WHERE { ?x <ont:mayor> ?y }"
    python -m repro eval                  # the QALD benchmark summary
    python -m repro dictionary            # mined paraphrase dictionary
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.core import GAnswer
from repro.experiments.common import default_setup


def _build_system(args) -> GAnswer:
    setup = default_setup(args.distractors, jobs=args.jobs)
    return GAnswer(
        setup.kg,
        setup.dictionary,
        k=args.k,
        enable_aggregation=args.aggregation,
    )


def _print_answer(result) -> None:
    if result.boolean is not None:
        print("yes" if result.boolean else "no")
    elif result.answers:
        for term in result.answers:
            print(str(term))
    else:
        print(f"(no answer: {result.failure})", file=sys.stderr)
    if result.semantic_graph is not None:
        print(
            f"-- {result.understanding_time * 1000:.1f} ms understanding, "
            f"{result.evaluation_time * 1000:.1f} ms evaluation",
            file=sys.stderr,
        )


def cmd_ask(args) -> int:
    system = _build_system(args)
    result = system.answer(args.question)
    if args.explain:
        from repro.core.explain import explain

        setup = default_setup(args.distractors, jobs=args.jobs)
        print(explain(setup.kg, result))
        return 0 if result.processed else 1
    _print_answer(result)
    if args.sparql and result.sparql_queries:
        print("\n-- top match as SPARQL:", file=sys.stderr)
        print(result.sparql_queries[0])
    return 0 if result.processed else 1


def cmd_shell(args) -> int:
    system = _build_system(args)
    print("gAnswer shell over the mini-DBpedia KG.  Empty line to exit.")
    while True:
        try:
            question = input("? ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not question:
            break
        _print_answer(system.answer(question))
    return 0


def cmd_sparql(args) -> int:
    from repro.sparql import evaluate, parse_query

    setup = default_setup(args.distractors, jobs=args.jobs)
    result = evaluate(setup.kg.store, parse_query(args.query))
    if isinstance(result, bool):
        print("yes" if result else "no")
    elif isinstance(result, int):
        print(result)
    else:
        for row in result:
            print("  ".join(f"{var}={term}" for var, term in sorted(
                row.items(), key=lambda kv: kv[0].name
            )))
    return 0


def cmd_eval(args) -> int:
    from repro.datasets import qald_questions
    from repro.eval import evaluate_system, format_table

    system = _build_system(args)
    run = evaluate_system(system, qald_questions(), "gAnswer (repro)")
    summary = run.summary
    print(
        format_table(
            ["system", "processed", "right", "partially", "recall", "precision", "F-1"],
            [[
                run.system_name, summary.processed, summary.right,
                summary.partial, summary.recall, summary.precision, summary.f1,
            ]],
            title="QALD benchmark (99 questions)",
        )
    )
    if args.failures:
        print("\nfailure classes:")
        for reason, count in sorted(run.failure_counts().items()):
            print(f"  {reason}: {count}")
    return 0


def cmd_dictionary(args) -> int:
    from repro.paraphrase.path_mining import describe_path

    setup = default_setup(args.distractors, jobs=args.jobs)
    for phrase in sorted(setup.dictionary.phrases()):
        mappings = setup.dictionary.lookup(phrase)
        if not mappings:
            continue
        rendered = ", ".join(
            f"{describe_path(setup.kg, m.path)} ({m.confidence:.2f})"
            for m in mappings
        )
        print(f"{' '.join(phrase):30s} → {rendered}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph data driven natural language QA over RDF "
        "(gAnswer, SIGMOD 2014 reproduction)",
    )
    parser.add_argument("--k", type=int, default=10, help="top-k matches (default 10)")
    parser.add_argument(
        "--aggregation", action="store_true",
        help="enable the superlative post-processing extension",
    )
    parser.add_argument(
        "--distractors", type=int, default=0,
        help="label clones per entity (DBpedia-scale ambiguity)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for offline dictionary mining "
        "(1 = serial, 0 = one per CPU; output is identical at any count)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record per-stage spans and print the span tree to stderr",
    )
    parser.add_argument(
        "--trace-json", metavar="FILE", default=None,
        help="export the recorded trace (spans + counters) as JSON; "
        "'-' writes to stdout",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ask = commands.add_parser("ask", help="answer one question")
    ask.add_argument("question")
    ask.add_argument("--sparql", action="store_true", help="print the top match's SPARQL")
    ask.add_argument(
        "--explain", action="store_true", help="print the full derivation trace"
    )
    ask.set_defaults(func=cmd_ask)

    shell = commands.add_parser("shell", help="interactive question loop")
    shell.set_defaults(func=cmd_shell)

    sparql = commands.add_parser("sparql", help="run a SPARQL query on the KG")
    sparql.add_argument("query")
    sparql.set_defaults(func=cmd_sparql)

    evaluate = commands.add_parser("eval", help="run the QALD benchmark")
    evaluate.add_argument("--failures", action="store_true", help="show failure classes")
    evaluate.set_defaults(func=cmd_eval)

    dictionary = commands.add_parser("dictionary", help="show the mined dictionary")
    dictionary.set_defaults(func=cmd_dictionary)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not (args.trace or args.trace_json):
        return args.func(args)

    # Tracing: install a recording tracer for the whole command; every
    # component (pipeline, baselines, search, linker, miner) picks it up.
    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        rc = args.func(args)
    if args.trace:
        rendered = tracer.render()
        if rendered:
            print("\n-- trace:", file=sys.stderr)
            print(rendered, file=sys.stderr)
    if args.trace_json:
        payload = tracer.to_json(indent=2)
        if args.trace_json == "-":
            print(payload)
        else:
            try:
                with open(args.trace_json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
            except OSError as exc:
                print(f"error: cannot write trace JSON: {exc}", file=sys.stderr)
                return 1
            print(f"-- trace JSON written to {args.trace_json}", file=sys.stderr)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
