"""Command-line interface: ask questions, run SPARQL, evaluate benchmarks.

Usage::

    python -m repro ask "Who is the mayor of Berlin?"
    python -m repro --trace ask "Who is the mayor of Berlin?"  # span tree
    python -m repro --trace-json trace.json ask "..."          # JSON export
    python -m repro shell                 # interactive question loop
    python -m repro serve --port 8765     # warm engine as a JSON HTTP service
    python -m repro sparql "SELECT ?x WHERE { ?x <ont:mayor> ?y }"
    python -m repro eval                  # the QALD benchmark summary
    python -m repro eval --served         # same benchmark through the engine
    python -m repro dictionary            # mined paraphrase dictionary
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.core import GAnswer
from repro.experiments.common import default_setup


def _load_state(args):
    """Warm state from ``--snapshot``/``--bundle``, or None to build fresh.

    Returns ``(kg, dictionary, base_linker_or_None)``.  A compiled
    snapshot restores the prebuilt linker index too; a bundle (or the
    default built-from-source setup) leaves linker construction to the
    caller.
    """
    snapshot = getattr(args, "snapshot", None)
    bundle = getattr(args, "bundle", None)
    if snapshot and bundle:
        raise SystemExit("error: --snapshot and --bundle are mutually exclusive")
    if snapshot:
        from repro.rdf.snapshot import load_snapshot

        state = load_snapshot(snapshot)
        return state.kg, state.dictionary, state.build_linker()
    if bundle:
        from repro.bundle import load_bundle

        kg, dictionary = load_bundle(bundle)
        return kg, dictionary, None
    return None


def _build_system(args) -> GAnswer:
    state = _load_state(args)
    if state is not None:
        kg, dictionary, linker = state
        return GAnswer(
            kg,
            dictionary,
            k=args.k,
            enable_aggregation=args.aggregation,
            linker=linker,
        )
    setup = default_setup(args.distractors, jobs=args.jobs)
    return GAnswer(
        setup.kg,
        setup.dictionary,
        k=args.k,
        enable_aggregation=args.aggregation,
    )


def _synthetic_setup():
    """The synthetic serving scenario: a generated KG plus a dictionary
    mined from a scaled phrase dataset (mirrors scripts/perf_baseline.py's
    scenario so serving and kernel baselines describe the same graph).
    """
    from repro.datasets import SyntheticConfig, build_phrase_dataset, build_synthetic_kg
    from repro.datasets.patty_sim import scale_phrase_dataset
    from repro.datasets.synthetic import entity_pool
    from repro.paraphrase import ParaphraseMiner

    kg = build_synthetic_kg(
        SyntheticConfig(entities=1000, triples_per_entity=4, predicates=30)
    )
    dataset = scale_phrase_dataset(build_phrase_dataset(), 100, 5, entity_pool(kg))
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(dataset)
    return kg, dictionary


def _build_engine(args):
    """A warm :class:`repro.serve.QAEngine` from serve-flavored CLI args."""
    from repro.serve import EngineConfig, QAEngine

    base_linker = None
    state = _load_state(args)
    if state is not None:
        kg, dictionary, base_linker = state
    elif getattr(args, "dataset", "dbpedia-mini") == "synthetic":
        kg, dictionary = _synthetic_setup()
    else:
        setup = default_setup(args.distractors, jobs=args.jobs)
        kg, dictionary = setup.kg, setup.dictionary
    config = EngineConfig(
        k=args.k,
        pool_size=getattr(args, "pool_size", 4),
        queue_limit=getattr(args, "queue_limit", 12),
        deadline_s=getattr(args, "deadline", 10.0) or None,
        cache_size=getattr(args, "cache_size", 1024),
        cache_ttl_s=getattr(args, "cache_ttl", 300.0),
        degrade_pressure=getattr(args, "degrade_pressure", 0.75),
        enable_aggregation=args.aggregation,
    )
    engine = QAEngine(kg, dictionary, config, base_linker=base_linker)
    engine.warm()
    return engine


def _print_answer(result) -> None:
    if result.boolean is not None:
        print("yes" if result.boolean else "no")
    elif result.answers:
        for term in result.answers:
            print(str(term))
    else:
        print(f"(no answer: {result.failure})", file=sys.stderr)
    if result.semantic_graph is not None:
        print(
            f"-- {result.understanding_time * 1000:.1f} ms understanding, "
            f"{result.evaluation_time * 1000:.1f} ms evaluation",
            file=sys.stderr,
        )


def cmd_ask(args) -> int:
    system = _build_system(args)
    result = system.answer(args.question)
    if args.explain:
        from repro.core.explain import explain

        setup = default_setup(args.distractors, jobs=args.jobs)
        print(explain(setup.kg, result))
        return 0 if result.processed else 1
    _print_answer(result)
    if args.sparql and result.sparql_queries:
        print("\n-- top match as SPARQL:", file=sys.stderr)
        print(result.sparql_queries[0])
    return 0 if result.processed else 1


def cmd_shell(args) -> int:
    # One warm engine for the whole loop: the KG, dictionary, linker index
    # and kernel are built exactly once, and repeated questions hit the
    # answer cache — the shell shares the server's serving path.
    engine = _build_engine(args)
    print("gAnswer shell over the mini-DBpedia KG.  Empty line to exit.")
    try:
        while True:
            try:
                question = input("? ").strip()
            except (EOFError, KeyboardInterrupt):
                break
            if not question:
                break
            _print_answer(engine.ask_answer(question))
    finally:
        engine.close()
    return 0


def cmd_serve(args) -> int:
    import os

    from repro.serve import build_server

    ingest_token = args.ingest_token or os.environ.get("REPRO_INGEST_TOKEN") or None
    if ingest_token and args.workers > 1:
        # Each pre-fork worker holds its own copy-on-write view of the
        # store; a write applied through one worker would silently
        # diverge the others.  Live ingest is single-worker by design.
        raise SystemExit(
            "error: --ingest-token requires --workers 1 (each pre-fork "
            "worker has a private store copy; writes would diverge them)"
        )
    engine = _build_engine(args)
    source = (
        f"snapshot {args.snapshot}" if args.snapshot
        else f"bundle {args.bundle}" if args.bundle
        else args.dataset
    )
    if args.workers > 1:
        # Pre-fork: bind in the parent, print the address, then fork the
        # workers (each resets + rewarms its copy of this engine) and
        # supervise.  The mmapped snapshot pages are shared across forks.
        from repro.serve import PreforkServer

        supervisor = PreforkServer(
            engine, host=args.host, port=args.port, workers=args.workers
        )
        host, port = supervisor.start()
        print(
            f"repro serve listening on http://{host}:{port} "
            f"(source={source}, workers={args.workers}, "
            f"pool={engine.config.pool_size}x{args.workers}, "
            f"store v{engine.store_version})",
            flush=True,
        )
        return supervisor.run()
    server = build_server(
        engine, host=args.host, port=args.port, ingest_token=ingest_token
    )
    host, port = server.server_address[:2]
    print(
        f"repro serve listening on http://{host}:{port} "
        f"(source={source}, pool={engine.config.pool_size}, "
        f"capacity={engine.admission.capacity}, "
        f"ingest={'on' if ingest_token else 'off'}, "
        f"store v{engine.store_version})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        engine.close()
    return 0


def cmd_sparql(args) -> int:
    from repro.sparql import evaluate, parse_query

    setup = default_setup(args.distractors, jobs=args.jobs)
    result = evaluate(setup.kg.store, parse_query(args.query))
    if isinstance(result, bool):
        print("yes" if result else "no")
    elif isinstance(result, int):
        print(result)
    else:
        for row in result:
            print("  ".join(f"{var}={term}" for var, term in sorted(
                row.items(), key=lambda kv: kv[0].name
            )))
    return 0


def cmd_eval(args) -> int:
    from repro.datasets import qald_questions
    from repro.eval import evaluate_system, format_table
    from repro.eval.harness import evaluate_engine

    if args.served:
        # Same questions through the serving engine's full request path
        # (pool, admission, cache) — the summary must match the direct run.
        engine = _build_engine(args)
        try:
            run = evaluate_engine(engine, qald_questions(), "gAnswer (served)")
        finally:
            engine.close()
    else:
        system = _build_system(args)
        run = evaluate_system(system, qald_questions(), "gAnswer (repro)")
    summary = run.summary
    print(
        format_table(
            ["system", "processed", "right", "partially", "recall", "precision", "F-1"],
            [[
                run.system_name, summary.processed, summary.right,
                summary.partial, summary.recall, summary.precision, summary.f1,
            ]],
            title="QALD benchmark (99 questions)",
        )
    )
    if args.failures:
        print("\nfailure classes:")
        for reason, count in sorted(run.failure_counts().items()):
            print(f"  {reason}: {count}")
    return 0


def cmd_compile(args) -> int:
    import time
    from pathlib import Path

    from repro.rdf.snapshot import compile_snapshot

    if args.dataset == "synthetic":
        kg, dictionary = _synthetic_setup()
    else:
        setup = default_setup(args.distractors, jobs=args.jobs)
        kg, dictionary = setup.kg, setup.dictionary
    started = time.perf_counter()
    info = compile_snapshot(
        Path(args.output), kg, dictionary, shards=args.shards, jobs=args.jobs
    )
    elapsed = time.perf_counter() - started
    layout = f"{info.shards} segments + manifest" if info.shards > 1 else "1 file"
    print(
        f"compiled {info.triples} triples, {info.terms} terms, "
        f"{info.phrases} phrases → {info.path} "
        f"({layout}, {info.total_bytes} bytes, {elapsed:.2f} s)"
    )
    if args.verbose:
        for name, size in sorted(
            info.section_bytes.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {name:12s} {size:>10d} bytes")
    return 0


def cmd_compact(args) -> int:
    """Trigger online compaction on a running ``repro serve`` instance.

    POSTs the authenticated ``/compact`` endpoint: the server re-compacts
    its overlay store (base + delta + tombstones) into a fresh frozen
    base and swaps it in without dropping a request.
    """
    import json as json_module
    import os
    import urllib.error
    import urllib.request

    token = args.token or os.environ.get("REPRO_INGEST_TOKEN") or None
    if not token:
        print(
            "error: an ingest token is required (--token or REPRO_INGEST_TOKEN)",
            file=sys.stderr,
        )
        return 2
    payload: dict = {}
    if args.shards is not None:
        payload["shards"] = args.shards
    if args.snapshot_out is not None:
        payload["snapshot_path"] = args.snapshot_out
    request = urllib.request.Request(
        f"{args.url.rstrip('/')}/compact",
        data=json_module.dumps(payload).encode("utf-8"),
        headers={
            "Content-Type": "application/json",
            "X-Ingest-Token": token,
        },
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as response:
            body = json_module.loads(response.read())
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", "replace")
        print(f"error: server answered {error.code}: {detail}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as error:
        print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
        return 1
    layout = f"{body['shards']} shards" if body.get("shards") else "single backend"
    print(
        f"compacted {body['triples']} triples into a fresh base "
        f"({layout}, store v{body['store_version']})"
    )
    if body.get("snapshot"):
        print(f"snapshot written to {body['snapshot']}")
    return 0


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis import LintConfig, run_lint
    from repro.analysis.report import render_json, render_text
    from repro.analysis.rules import ALL_RULES
    from repro.exceptions import LintError

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:22s} {rule.summary}")
        return 0
    if args.paths:
        paths = [Path(path) for path in args.paths]
    else:
        # Default: the installed repro package itself, wherever it lives.
        paths = [Path(__file__).resolve().parent]
    config = LintConfig(rules=tuple(args.rule) if args.rule else None)
    baseline = Path(args.baseline) if args.baseline else None
    try:
        report = run_lint(paths, config, baseline_path=baseline)
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def cmd_dictionary(args) -> int:
    from repro.paraphrase.path_mining import describe_path

    setup = default_setup(args.distractors, jobs=args.jobs)
    for phrase in sorted(setup.dictionary.phrases()):
        mappings = setup.dictionary.lookup(phrase)
        if not mappings:
            continue
        rendered = ", ".join(
            f"{describe_path(setup.kg, m.path)} ({m.confidence:.2f})"
            for m in mappings
        )
        print(f"{' '.join(phrase):30s} → {rendered}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph data driven natural language QA over RDF "
        "(gAnswer, SIGMOD 2014 reproduction)",
    )
    parser.add_argument("--k", type=int, default=10, help="top-k matches (default 10)")
    parser.add_argument(
        "--aggregation", action="store_true",
        help="enable the superlative post-processing extension",
    )
    parser.add_argument(
        "--distractors", type=int, default=0,
        help="label clones per entity (DBpedia-scale ambiguity)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for offline dictionary mining "
        "(1 = serial, 0 = one per CPU; output is identical at any count)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record per-stage spans and print the span tree to stderr",
    )
    parser.add_argument(
        "--trace-json", metavar="FILE", default=None,
        help="export the recorded trace (spans + counters) as JSON; "
        "'-' writes to stdout",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_source_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--snapshot", metavar="FILE", default=None,
            help="load a compiled snapshot (repro compile) instead of "
            "building the KG and dictionary from source",
        )
        sub.add_argument(
            "--bundle", metavar="DIR", default=None,
            help="load a saved bundle directory instead of building from "
            "source (prefers its snapshot member when present)",
        )

    ask = commands.add_parser("ask", help="answer one question")
    ask.add_argument("question")
    ask.add_argument("--sparql", action="store_true", help="print the top match's SPARQL")
    ask.add_argument(
        "--explain", action="store_true", help="print the full derivation trace"
    )
    ask.set_defaults(func=cmd_ask)

    shell = commands.add_parser("shell", help="interactive question loop")
    add_source_flags(shell)
    shell.set_defaults(func=cmd_shell)

    serve = commands.add_parser(
        "serve", help="run the warm QA engine as a JSON HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (>1 = pre-fork with SO_REUSEPORT; each "
        "worker runs its own pool, sharing the mmapped graph pages)",
    )
    serve.add_argument(
        "--dataset", choices=("dbpedia-mini", "synthetic"), default="dbpedia-mini",
        help="knowledge graph to serve (synthetic = the perf-baseline scenario)",
    )
    serve.add_argument(
        "--pool-size", type=int, default=4, help="answering worker threads"
    )
    serve.add_argument(
        "--queue-limit", type=int, default=12,
        help="requests allowed to wait beyond the pool (excess → HTTP 429)",
    )
    serve.add_argument(
        "--deadline", type=float, default=10.0,
        help="default per-request budget in seconds (0 disables)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="answer cache entries (0 disables caching)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=300.0, help="answer cache TTL seconds"
    )
    serve.add_argument(
        "--degrade-pressure", type=float, default=0.75,
        help="admission occupancy in [0,1] past which requests are answered "
        "in degraded mode (smaller k, trimmed candidates); 1.0 disables",
    )
    serve.add_argument(
        "--ingest-token", metavar="TOKEN", default=None,
        help="enable the authenticated POST /ingest and /compact write "
        "endpoints with this shared secret (or set REPRO_INGEST_TOKEN); "
        "requires --workers 1",
    )
    add_source_flags(serve)
    serve.set_defaults(func=cmd_serve)

    sparql = commands.add_parser("sparql", help="run a SPARQL query on the KG")
    sparql.add_argument("query")
    sparql.set_defaults(func=cmd_sparql)

    evaluate = commands.add_parser("eval", help="run the QALD benchmark")
    evaluate.add_argument("--failures", action="store_true", help="show failure classes")
    evaluate.add_argument(
        "--served", action="store_true",
        help="run every question through the warm QAEngine (pool + cache) "
        "instead of a direct pipeline — accuracy must be identical",
    )
    add_source_flags(evaluate)
    evaluate.set_defaults(func=cmd_eval)

    dictionary = commands.add_parser("dictionary", help="show the mined dictionary")
    dictionary.set_defaults(func=cmd_dictionary)

    lint = commands.add_parser(
        "lint",
        help="statically check project invariants (lock discipline, fork "
        "safety, frozen stores, monotonic time, layering, exceptions)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to scan (default: the repro package)",
    )
    lint.add_argument(
        "--rule", action="append", metavar="NAME", default=None,
        help="run only this rule (repeatable; see --list-rules)",
    )
    lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="JSON baseline of grandfathered findings; only findings "
        "absent from it fail the run (regenerate: scripts/lint_baseline.py)",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.set_defaults(func=cmd_lint)

    compile_cmd = commands.add_parser(
        "compile",
        help="compile the KG + dictionary into an id-stable snapshot for "
        "near-instant cold start (load with --snapshot)",
    )
    compile_cmd.add_argument("output", help="snapshot file to write (e.g. graph.snap)")
    compile_cmd.add_argument(
        "--dataset", choices=("dbpedia-mini", "synthetic"), default="dbpedia-mini",
        help="which setup to compile (synthetic = the perf-baseline scenario)",
    )
    compile_cmd.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="write a sharded snapshot: a manifest plus K subject-hash "
        "partitioned segment files, mmapped lazily at load (default: one file)",
    )
    compile_cmd.add_argument(
        "--verbose", action="store_true", help="print per-section sizes"
    )
    compile_cmd.set_defaults(func=cmd_compile)

    compact = commands.add_parser(
        "compact",
        help="re-compact a running server's overlay store (base + delta) "
        "into a fresh frozen base, swapped in without downtime",
    )
    compact.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="base URL of the running repro serve instance",
    )
    compact.add_argument(
        "--token", default=None,
        help="ingest token (default: the REPRO_INGEST_TOKEN environment "
        "variable)",
    )
    compact.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="rebuild into a K-segment sharded base (default: single)",
    )
    compact.add_argument(
        "--snapshot-out", metavar="FILE", default=None,
        help="also persist a compiled snapshot of the compacted state "
        "(a path on the server's filesystem)",
    )
    compact.add_argument(
        "--timeout", type=float, default=600.0,
        help="seconds to wait for the compaction to finish",
    )
    compact.set_defaults(func=cmd_compact)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not (args.trace or args.trace_json):
        return args.func(args)

    # Tracing: install a recording tracer for the whole command; every
    # component (pipeline, baselines, search, linker, miner) picks it up.
    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        rc = args.func(args)
    if args.trace:
        rendered = tracer.render()
        if rendered:
            print("\n-- trace:", file=sys.stderr)
            print(rendered, file=sys.stderr)
    if args.trace_json:
        payload = tracer.to_json(indent=2)
        if args.trace_json == "-":
            print(payload)
        else:
            try:
                with open(args.trace_json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
            except OSError as exc:
                print(f"error: cannot write trace JSON: {exc}", file=sys.stderr)
                return 1
            print(f"-- trace JSON written to {args.trace_json}", file=sys.stderr)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
