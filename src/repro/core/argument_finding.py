"""Finding the arguments of a relation-phrase embedding (Section 4.1.2).

arg1 is recognised through the *subject-like* relations (subj, nsubj,
nsubjpass, csubj, csubjpass, xsubj, poss) between an embedding node and a
child outside the embedding; arg2 through the *object-like* relations
(obj, pobj, dobj, iobj).  When several candidates exist, the one nearest
the relation phrase wins.

When an argument is still empty, four heuristic rules raise recall (the
paper's Exp 4 / Table 9 measures their effect — enabled by
``use_heuristics``):

* **Rule 1** — extend the embedding with adjacent *light words*
  (prepositions, auxiliaries) and look again at the new nodes' children.
* **Rule 2** — if the embedding root hangs off a nominal parent through a
  subject/object-like or modifier relation (rcmod, partmod, appos), the
  parent supplies arg1: "movies *directed by* Coppola" → arg1 = movies.
* **Rule 3** — if the embedding root's parent has a subject-like child of
  its own, that child supplies arg1: "born in Vienna *and died in*
  Berlin" → the coordinated head's subject "that" becomes arg1 of "die in".
* **Rule 4** — fall back to the nearest wh-word, or the first noun phrase,
  for whichever argument is still empty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.relation_extraction import Embedding
from repro.nlp import lexicon
from repro.nlp.dependency import (
    OBJECT_RELATIONS,
    SUBJECT_RELATIONS,
    DependencyNode,
    DependencyTree,
)

_MODIFIER_RELATIONS = frozenset({"rcmod", "partmod", "appos", "vmod"})


@dataclass(frozen=True, slots=True)
class ArgumentResult:
    """The two arguments of one embedding, with the rules that fired."""

    arg1: DependencyNode
    arg2: DependencyNode
    rules_used: frozenset[str]


class ArgumentFinder:
    """Attaches arg1/arg2 to relation-phrase embeddings."""

    def __init__(self, use_heuristics: bool = True):
        self.use_heuristics = use_heuristics

    # ------------------------------------------------------------------ #

    def find_arguments(
        self, tree: DependencyTree, embedding: Embedding
    ) -> ArgumentResult | None:
        """Both arguments of the embedding, or None if either stays empty
        (the paper then discards the relation phrase)."""
        inside = set(embedding.nodes)
        rules_used: set[str] = set()

        arg1 = self._argument_by_relations(embedding, inside, SUBJECT_RELATIONS)
        arg2 = self._argument_by_relations(embedding, inside, OBJECT_RELATIONS)

        if self.use_heuristics:
            if arg1 is None or arg2 is None:
                extended1, extended2 = self._rule1(embedding, inside)
                if arg1 is None and extended1 is not None:
                    arg1 = extended1
                    rules_used.add("rule1")
                if arg2 is None and extended2 is not None:
                    arg2 = extended2
                    rules_used.add("rule1")
            if arg1 is None:
                arg1 = self._rule2(embedding)
                if arg1 is not None:
                    rules_used.add("rule2")
            if arg1 is None:
                arg1 = self._rule3(embedding, inside)
                if arg1 is not None:
                    rules_used.add("rule3")
            if arg1 is None:
                arg1 = self._rule4(tree, embedding, exclude=(arg2,))
                if arg1 is not None:
                    rules_used.add("rule4")
            if arg2 is None:
                # Rule 2's mirror for arg2: a nominal embedding root in an
                # object/subject position doubles as the second argument —
                # "Give me [Margaret Thatcher's] CHILDREN".
                root = embedding.root
                if (
                    root.is_nominal()
                    and root.deprel in SUBJECT_RELATIONS | OBJECT_RELATIONS
                    and root is not arg1
                ):
                    arg2 = root
                    rules_used.add("rule2")
            if arg2 is None:
                arg2 = self._rule4(tree, embedding, exclude=(arg1,))
                if arg2 is not None:
                    rules_used.add("rule4")

        if arg1 is None or arg2 is None or arg1 is arg2:
            return None
        return ArgumentResult(arg1, arg2, frozenset(rules_used))

    # ------------------------------------------------------------------ #
    # Base recognition
    # ------------------------------------------------------------------ #

    def _argument_by_relations(
        self,
        embedding: Embedding,
        inside: set[DependencyNode],
        relations: frozenset[str],
    ) -> DependencyNode | None:
        candidates = [
            child
            for node in embedding.nodes
            for child in node.children
            if child not in inside and child.deprel in relations
        ]
        if not candidates:
            return None
        root_index = embedding.root.index
        return min(candidates, key=lambda n: (abs(n.index - root_index), n.index))

    # ------------------------------------------------------------------ #
    # Heuristic rules
    # ------------------------------------------------------------------ #

    def _rule1(
        self, embedding: Embedding, inside: set[DependencyNode]
    ) -> tuple[DependencyNode | None, DependencyNode | None]:
        """Extend with light-word children, then re-run base recognition."""
        light_children = [
            child
            for node in embedding.nodes
            for child in node.children
            if child not in inside and child.lower in lexicon.LIGHT_WORDS
        ]
        if not light_children:
            return None, None
        extended = Embedding(
            embedding.phrase_words,
            embedding.root,
            embedding.nodes + tuple(light_children),
        )
        extended_inside = inside | set(light_children)
        arg1 = self._argument_by_relations(extended, extended_inside, SUBJECT_RELATIONS)
        arg2 = self._argument_by_relations(extended, extended_inside, OBJECT_RELATIONS)
        return arg1, arg2

    @staticmethod
    def _rule2(embedding: Embedding) -> DependencyNode | None:
        """Rule 2, two forms:

        * paper-literal — the embedding root itself is connected to its
          parent by a subject/object-like relation, so the root doubles as
          the missing argument: in "the *creator of* Miffy come from",
          "creator" is both relation-phrase word and arg1;
        * modifier form — a verbal embedding modifying a nominal
          (rcmod/partmod/appos) takes that nominal as arg1: "movies
          *directed by* Coppola" → movies.
        """
        root = embedding.root
        if root.head is None:
            return None
        if root.deprel in SUBJECT_RELATIONS | OBJECT_RELATIONS and root.is_nominal():
            return root
        if root.deprel in _MODIFIER_RELATIONS and root.head.is_nominal():
            return root.head
        return None

    @staticmethod
    def _rule3(embedding: Embedding, inside: set[DependencyNode]) -> DependencyNode | None:
        """The root's parent's own subject-like child supplies arg1."""
        parent = embedding.root.head
        if parent is None:
            return None
        for child in parent.children:
            if child not in inside and child.deprel in SUBJECT_RELATIONS:
                return child
        return None

    @staticmethod
    def _rule4(
        tree: DependencyTree,
        embedding: Embedding,
        exclude: tuple[DependencyNode | None, ...],
    ) -> DependencyNode | None:
        """Nearest wh-word, else the first noun phrase outside the
        embedding, skipping nodes already used for the other argument."""
        inside = set(embedding.nodes)
        excluded = {node for node in exclude if node is not None}
        root_index = embedding.root.index
        wh_nodes = [
            node
            for node in tree.nodes
            if node.is_wh() and node not in inside and node not in excluded
        ]
        if wh_nodes:
            return min(wh_nodes, key=lambda n: (abs(n.index - root_index), n.index))
        nominals = [
            node
            for node in tree.nodes
            if node.pos.startswith("NN")
            and node not in inside
            and node not in excluded
            and node.deprel not in ("nn", "amod")
        ]
        if nominals:
            return min(nominals, key=lambda n: n.index)
        return None
