"""Coreference resolution for semantic-relation arguments (Section 4.1.3).

In "an actor *that* played in Philadelphia", the arguments "actor" and
"that" refer to the same thing, so the two semantic relations must share a
vertex in Q^S.  The cases that occur in questions are relative pronouns and
reduced relatives; both resolve to the nominal the modifying clause hangs
off:

* a relative pronoun (that/who/which/whom) inside an ``rcmod``/``partmod``
  clause → the clause's governor noun;
* an argument found by Rule 3 under a coordinated verb resolves through the
  conjunction chain first.
"""

from __future__ import annotations

from repro.nlp.dependency import DependencyNode

_RELATIVE_PRONOUNS = {"that", "who", "whom", "which"}
_CLAUSE_RELATIONS = {"rcmod", "partmod", "vmod"}


def resolve_coreference(node: DependencyNode) -> DependencyNode:
    """The canonical node an argument refers to (itself when no coref).

    Walks from a relative pronoun up through its clause's verb (following
    ``conj`` chains) to the nominal the clause modifies.  A wh determiner
    ("*which* books") resolves directly to the noun it modifies.
    """
    if node.pos == "WDT" and node.deprel == "det" and node.head is not None:
        return node.head
    if node.lower not in _RELATIVE_PRONOUNS:
        return node
    # Climb to the clause verb this pronoun is an argument of.
    clause_verb = node.head
    if clause_verb is None:
        return node
    # Follow coordination back to the first conjunct.
    seen = {id(clause_verb)}
    while clause_verb.deprel == "conj" and clause_verb.head is not None:
        clause_verb = clause_verb.head
        if id(clause_verb) in seen:
            return node
        seen.add(id(clause_verb))
    if clause_verb.deprel in _CLAUSE_RELATIONS and clause_verb.head is not None:
        governor = clause_verb.head
        if governor.is_nominal():
            return governor
    return node
