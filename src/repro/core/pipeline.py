"""The GAnswer pipeline: natural language question → RDF answers.

Wires the whole paper together (Figure 1(c)):

* question understanding — parse, find relation-phrase embeddings
  (Algorithm 2), attach arguments (Section 4.1.2 rules), resolve
  coreference, build Q^S;
* query evaluation — map phrases to candidates (ambiguity kept), run the
  TA-style top-k subgraph search (Algorithm 3), read answers off the
  target vertex's bindings, and emit the equivalent top-k SPARQL queries.

Failures are classified the way the paper's Table 10 does: entity linking,
relation extraction, aggregation, other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import obs
from repro.core.argument_finding import ArgumentFinder
from repro.core.graph_builder import build_semantic_query_graph
from repro.core.phrase_mapping import PhraseMapper
from repro.core.relation_extraction import RelationExtractor
from repro.core.semantic_graph import SemanticQueryGraph, SemanticRelation
from repro.core.sparql_generation import match_to_sparql
from repro.core.top_k import TopKSearch
from repro.exceptions import ParseError
from repro.linking.linker import EntityLinker
from repro.match.matcher import GraphMatch
from repro.nlp.dep_parser import DependencyParser
from repro.nlp.questions import QuestionAnalysis, analyze_question
from repro.paraphrase.dictionary import ParaphraseDictionary
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.terms import Term

def target_vertices(graph: SemanticQueryGraph) -> list:
    """The vertices whose bindings answer the question.

    Wh vertices win (all of them — a multi-wh question asks for a tuple);
    otherwise the single best fallback in sentence order: a wh- or
    "all"-determined nominal ("which CITIES", "Give me all MOVIES ..."),
    then the object of an imperative, then the first common noun.  Every
    non-wh branch yields at most one target so answer read-off and SPARQL
    projection stay consistent.  Empty for yes/no questions.
    """
    wh = sorted(graph.wh_vertices(), key=lambda v: v.node.index)
    if wh:
        return wh
    candidates = []
    for vertex in graph.vertices.values():
        node = vertex.node
        # A wh-determined or "all"-determined nominal is the asked-for set
        # regardless of its grammatical role ("Which PHYSICISTS won ...",
        # "Give me all MOVIES ...").
        if any(
            child.pos == "WDT" or child.lower == "all" for child in node.children
        ):
            candidates.append(vertex)
    if candidates:
        return sorted(candidates, key=lambda v: v.node.index)[:1]
    direct_objects = [
        vertex for vertex in graph.vertices.values() if vertex.node.deprel == "dobj"
    ]
    if direct_objects:
        return sorted(direct_objects, key=lambda v: v.node.index)[:1]
    common = [
        vertex
        for vertex in graph.vertices.values()
        if vertex.node.pos in ("NN", "NNS")
    ]
    return sorted(common, key=lambda v: v.node.index)[:1]


#: Failure classes of Table 10.
FAILURE_ENTITY_LINKING = "entity_linking"
FAILURE_RELATION_EXTRACTION = "relation_extraction"
FAILURE_AGGREGATION = "aggregation"
FAILURE_NO_MATCH = "no_match"
FAILURE_PARSE = "parse"


@dataclass(slots=True)
class Answer:
    """Everything the pipeline produced for one question."""

    question: str
    answers: list[Term] = field(default_factory=list)
    boolean: bool | None = None
    matches: list[GraphMatch] = field(default_factory=list)
    sparql_queries: list[str] = field(default_factory=list)
    semantic_graph: SemanticQueryGraph | None = None
    analysis: QuestionAnalysis | None = None
    failure: str | None = None
    rules_used: frozenset[str] = frozenset()
    understanding_time: float = 0.0
    evaluation_time: float = 0.0
    #: How the primary component's top-k search ended (see TopKResult);
    #: ``"deadline"`` marks a partial result cut short by a per-request
    #: deadline — the serving layer surfaces it to clients.
    terminated_by: str | None = None

    @property
    def total_time(self) -> float:
        return self.understanding_time + self.evaluation_time

    @property
    def processed(self) -> bool:
        """QALD's 'processed': the system returned some answer."""
        return bool(self.answers) or self.boolean is not None


class GAnswer:
    """End-to-end graph data driven RDF question answering.

    Parameters
    ----------
    kg:
        The knowledge graph to answer over.
    dictionary:
        A mined :class:`ParaphraseDictionary` (the offline phase's output).
    k:
        Number of top matches to return (the paper's experiments use 10).
    use_heuristic_rules:
        Toggle for Section 4.1.2's Rules 1–4 (the Table 9 ablation).
    use_ta / use_pruning:
        Toggles for Algorithm 3's threshold stop and neighborhood pruning.
    enable_aggregation:
        Opt-in extension: superlative post-processing (the paper lists
        aggregation support as future work; off by default to match it).
    candidate_limit:
        When set, vertex and edge candidate lists are trimmed to the best
        ``candidate_limit`` entries after mapping — the serving layer's
        graceful-degradation knob: narrower lists cost recall, not
        correctness of what is returned.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        dictionary: ParaphraseDictionary,
        k: int = 10,
        use_heuristic_rules: bool = True,
        use_ta: bool = True,
        use_pruning: bool = True,
        enable_aggregation: bool = False,
        linker: EntityLinker | None = None,
        candidate_limit: int | None = None,
        tracer=None,
    ):
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if candidate_limit is not None and candidate_limit < 1:
            raise ValueError("candidate_limit must be positive when set")
        self.kg = kg
        self.dictionary = dictionary
        self.k = k
        self.enable_aggregation = enable_aggregation
        self.candidate_limit = candidate_limit
        self.tracer = tracer
        self.parser = DependencyParser()
        self.extractor = RelationExtractor(dictionary)
        self.argument_finder = ArgumentFinder(use_heuristics=use_heuristic_rules)
        self.mapper = PhraseMapper(kg, dictionary, linker=linker)
        self.searcher = TopKSearch(kg, k=k, use_ta=use_ta, use_pruning=use_pruning)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def answer(
        self, question: str, tracer=None, deadline: float | None = None
    ) -> Answer:
        """Answer a natural language question.

        ``tracer`` overrides the instance/process tracer for this call
        (the serving layer passes a per-request tracer so concurrent
        requests never share a span stack).  ``deadline`` is an absolute
        :func:`time.monotonic` instant threaded into the top-k search;
        when it expires the answer is built from the partial matches found
        so far and ``terminated_by`` reads ``"deadline"``.
        """
        if tracer is None:
            tracer = self.tracer if self.tracer is not None else obs.get_tracer()
        result = Answer(question=question)
        with tracer.span("answer", question=question) as root:
            with tracer.span("understanding") as span:
                result.analysis = analyze_question(question)
                graph = self._understand(question, result, tracer)
            result.understanding_time = span.duration
            if graph is None:
                root.set(failure=result.failure)
                return result
            result.semantic_graph = graph

            with tracer.span("evaluation") as span:
                self._evaluate(graph, result, tracer, deadline)
            result.evaluation_time = span.duration
            if result.analysis.is_aggregation:
                if self.enable_aggregation:
                    # Extension (the paper's future work): post-process
                    # superlatives over the matched answer set.
                    self._apply_aggregation(question, result)
                elif len(result.answers) > 1:
                    # The base method cannot aggregate: a superlative question
                    # with several matched answers is (at best) partially right
                    # — Table 10's largest failure class.  KBs with a direct
                    # superlative predicate (largestCity) still answer exactly.
                    result.failure = FAILURE_AGGREGATION
            root.set(
                failure=result.failure,
                answers=len(result.answers),
                boolean=result.boolean,
            )
        return result

    # ------------------------------------------------------------------ #
    # Stage 1: question understanding
    # ------------------------------------------------------------------ #

    def _understand(
        self, question: str, result: Answer, tracer=obs.NOOP
    ) -> SemanticQueryGraph | None:
        with tracer.span("parse"):
            try:
                tree = self.parser.parse(question)
            except ParseError:
                result.failure = FAILURE_PARSE
                return None
        with tracer.span("relation_extraction") as span:
            embeddings = self.extractor.find_embeddings(tree)
            span.set(embeddings=len(embeddings))
        relations: list[SemanticRelation] = []
        rules_used: set[str] = set()
        with tracer.span("argument_finding") as span:
            for embedding in embeddings:
                arguments = self.argument_finder.find_arguments(tree, embedding)
                if arguments is None:
                    continue  # the paper discards the relation phrase
                rules_used |= arguments.rules_used
                relations.append(
                    SemanticRelation(
                        embedding.phrase_words,
                        arguments.arg1,
                        arguments.arg2,
                        embedding.nodes,
                    )
                )
            span.set(relations=len(relations), rules=sorted(rules_used))
        result.rules_used = frozenset(rules_used)
        with tracer.span("qs_build") as span:
            # Question-understanding extension: demonym adjectives carry an
            # implicit relation ("Argentine films" → country Argentina).
            from repro.core.demonyms import extract_demonym_relations

            used_indexes = frozenset(
                index for embedding in embeddings for index in embedding.node_indexes()
            )
            relations.extend(extract_demonym_relations(tree, used_indexes))
            if not relations:
                result.failure = FAILURE_RELATION_EXTRACTION
                return None
            graph = build_semantic_query_graph(relations)
            if not graph.edges:
                result.failure = FAILURE_RELATION_EXTRACTION
                return None
            span.set(vertices=len(graph.vertices), edges=len(graph.edges))
        return graph

    # ------------------------------------------------------------------ #
    # Stage 2: query evaluation
    # ------------------------------------------------------------------ #

    def _evaluate(
        self,
        graph: SemanticQueryGraph,
        result: Answer,
        tracer=obs.NOOP,
        deadline: float | None = None,
    ) -> None:
        with tracer.span("candidate_mapping") as span:
            space = self.mapper.build_candidate_space(graph, tracer=tracer)
            if self.candidate_limit is not None:
                self._degrade_space(space, tracer)
            span.set(vertices=len(space.vertices), edges=len(space.edges))
        for vertex_id, query_vertex in space.vertices.items():
            if not query_vertex.wildcard and not query_vertex.candidates:
                result.failure = FAILURE_ENTITY_LINKING
                return

        targets = self._target_vertices(graph)
        primary_id = targets[0].vertex_id if targets else None
        components = space.components()
        # Answers come from the component holding the target vertex; other
        # components act as existence constraints.
        components.sort(key=lambda c: 0 if primary_id in c.vertices else 1)
        per_component: list[list[GraphMatch]] = []
        for position, component in enumerate(components):
            found = self.searcher.search(component, tracer=tracer, deadline=deadline)
            if position == 0 or found.terminated_by == "deadline":
                # The primary component attributes the search outcome;
                # a deadline expiry anywhere overrides it (the answer is
                # partial no matter which component was cut short).
                result.terminated_by = found.terminated_by
            if not found.matches:
                if targets:
                    result.failure = FAILURE_NO_MATCH
                else:
                    # Yes/no: an unmatched query graph is a "no".
                    result.boolean = False
                return
            per_component.append(found.matches)
        result.matches = self._combine(per_component)
        if targets:
            # Answers are read off the matches tied at the best score: a
            # strictly lower-scored match is a weaker interpretation of the
            # question, not an additional answer.  All top-k matches stay
            # available in ``result.matches`` (the paper's footnote 4
            # already returns score ties together).
            primary = targets[0]
            best_score = result.matches[0].score if result.matches else 0.0
            seen: set[Term] = set()
            for match in result.matches:
                if not math.isclose(match.score, best_score, abs_tol=1e-9):
                    break
                node = match.binding_of(primary.vertex_id)
                if node is None:
                    continue
                term = self.kg.term_of(node)
                if term not in seen:
                    seen.add(term)
                    result.answers.append(term)
            target_ids = {target.vertex_id for target in targets}
            with tracer.span("sparql_generation") as span:
                result.sparql_queries = [
                    match_to_sparql(self.kg, graph, match, target_ids)
                    for match in result.matches[: self.k]
                ]
                span.set(queries=len(result.sparql_queries))
            if not result.answers:
                result.failure = FAILURE_NO_MATCH
        else:
            # Yes/no: a match is a proof.
            result.boolean = bool(result.matches)
            with tracer.span("sparql_generation") as span:
                result.sparql_queries = [
                    match_to_sparql(self.kg, graph, match, set())
                    for match in result.matches[: self.k]
                ]
                span.set(queries=len(result.sparql_queries))

    def _degrade_space(self, space, tracer=obs.NOOP) -> None:
        """Trim candidate lists to the configured ``candidate_limit``.

        Lists are already confidence-sorted, so trimming keeps the best
        mappings; dropped tail candidates can only lose low-confidence
        matches, never corrupt the ones that remain.
        """
        limit = self.candidate_limit
        trimmed = 0
        for vertex in space.vertices.values():
            if len(vertex.candidates) > limit:
                trimmed += len(vertex.candidates) - limit
                vertex.candidates = vertex.candidates[:limit]
        for edge in space.edges:
            if len(edge.candidates) > limit:
                trimmed += len(edge.candidates) - limit
                edge.candidates = edge.candidates[:limit]
        if trimmed:
            tracer.metrics.incr("mapping.candidates_degraded", trimmed)

    def _target_vertices(self, graph: SemanticQueryGraph):
        return target_vertices(graph)

    @staticmethod
    def _combine(per_component: list[list[GraphMatch]]) -> list[GraphMatch]:
        """Merge component matches: answers rank by the target component's
        scores; constraint components contribute their best score."""
        if len(per_component) == 1:
            return per_component[0]
        base = per_component[0]
        extra = sum(matches[0].score for matches in per_component[1:])
        return [
            GraphMatch(
                bindings=match.bindings,
                vertex_confidences=match.vertex_confidences,
                edge_assignments=match.edge_assignments,
                score=match.score + extra,
            )
            for match in base
        ]

    # ------------------------------------------------------------------ #
    # Extension: aggregation post-processing (future work in the paper)
    # ------------------------------------------------------------------ #

    def _apply_aggregation(self, question: str, result: Answer) -> None:
        from repro.core.aggregation import apply_superlative

        apply_superlative(self.kg, question, result)
