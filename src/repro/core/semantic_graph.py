"""Semantic relations and the semantic query graph (Definitions 1–2).

A *semantic relation* is a triple ⟨rel, arg1, arg2⟩: a relation phrase with
its two argument phrases, all anchored to dependency-tree nodes.  The
*semantic query graph* Q^S has one vertex per distinct argument and one
edge per semantic relation; two relations sharing an argument (directly or
through coreference) share the corresponding vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.dependency import DependencyNode


@dataclass(frozen=True, slots=True)
class SemanticRelation:
    """⟨rel, arg1, arg2⟩ extracted from the question (Definition 1)."""

    phrase_words: tuple[str, ...]          # normalized relation phrase
    arg1: DependencyNode
    arg2: DependencyNode
    embedding_nodes: tuple[DependencyNode, ...]

    def __repr__(self) -> str:
        phrase = " ".join(self.phrase_words)
        return f"⟨{phrase!r}, {self.arg1.word!r}, {self.arg2.word!r}⟩"


@dataclass(slots=True, eq=False)
class QSVertex:
    """A vertex of Q^S: one argument with its surface phrase."""

    vertex_id: int
    node: DependencyNode        # canonical dependency node for the argument
    phrase: str                 # surface phrase used for entity linking
    is_wh: bool                 # wh-words match everything (Section 2.2)

    def __repr__(self) -> str:
        marker = "?" if self.is_wh else ""
        return f"QSVertex({self.vertex_id}:{marker}{self.phrase!r})"


@dataclass(slots=True, eq=False)
class QSEdge:
    """An edge of Q^S: one relation phrase between two vertices.

    The edge is directed arg1 → arg2 (the paper's candidate predicate
    paths are mined in support-pair order); the matcher still accepts
    either orientation per Definition 3.
    """

    source: int
    target: int
    phrase_words: tuple[str, ...]

    def __repr__(self) -> str:
        return f"QSEdge({self.source}-{' '.join(self.phrase_words)!r}->{self.target})"


@dataclass(slots=True)
class SemanticQueryGraph:
    """The query intention of a question in structural form (Definition 2)."""

    vertices: dict[int, QSVertex] = field(default_factory=dict)
    edges: list[QSEdge] = field(default_factory=list)

    def vertex_for_node(self, node: DependencyNode) -> QSVertex | None:
        for vertex in self.vertices.values():
            if vertex.node is node:
                return vertex
        return None

    def add_vertex(self, node: DependencyNode, phrase: str, is_wh: bool) -> QSVertex:
        existing = self.vertex_for_node(node)
        if existing is not None:
            return existing
        vertex = QSVertex(len(self.vertices), node, phrase, is_wh)
        self.vertices[vertex.vertex_id] = vertex
        return vertex

    def add_edge(self, source: QSVertex, target: QSVertex, phrase_words: tuple[str, ...]) -> QSEdge:
        edge = QSEdge(source.vertex_id, target.vertex_id, phrase_words)
        self.edges.append(edge)
        return edge

    def wh_vertices(self) -> list[QSVertex]:
        return [v for v in self.vertices.values() if v.is_wh]

    def __repr__(self) -> str:
        return f"SemanticQueryGraph({list(self.vertices.values())}, {self.edges})"
