"""Demonym handling: "Argentine films" → ⟨films, country, Argentina⟩.

QALD questions like "Give me all Argentine films." carry their only
relation inside a demonym adjective — there is no relation phrase for
Algorithm 2 to embed.  This question-understanding extension rewrites a
demonym modifier into an explicit semantic relation with the pseudo
relation phrase ``("demonym",)`` and a synthetic argument node naming the
country.  The paraphrase dictionary maps the pseudo-phrase to the KB's
country/nationality predicates (the Patty simulator provides support pairs
for it like any other phrase).
"""

from __future__ import annotations

from repro.core.semantic_graph import SemanticRelation
from repro.nlp.dependency import DependencyNode, DependencyTree
from repro.nlp.tokenizer import Token

DEMONYM_PHRASE = ("demonym",)

#: demonym adjective → country surface name (shared with the tagger).
from repro.nlp.lexicon import DEMONYMS  # noqa: E402  (re-export)

#: index offset for synthetic nodes, far beyond any real token index.
_SYNTHETIC_BASE = 10_000


def extract_demonym_relations(
    tree: DependencyTree, used_indexes: frozenset[int] = frozenset()
) -> list[SemanticRelation]:
    """Demonym-based semantic relations not already covered by embeddings.

    ``used_indexes`` are token indexes consumed by regular relation-phrase
    embeddings; a demonym inside one is left alone.
    """
    relations: list[SemanticRelation] = []
    for offset, node in enumerate(tree.nodes):
        demonym = DEMONYMS.get(node.lower)
        if demonym is None or node.index in used_indexes:
            continue
        if node.deprel not in ("amod", "nn") or node.head is None:
            continue
        head = node.head
        if not head.pos.startswith("NN") or head.pos.startswith("NNP"):
            continue  # "Dutch queen Juliana" modifies a name, not a class
        country_token = Token(
            text=demonym,
            index=_SYNTHETIC_BASE + offset,
            pos="NNP",
            lemma=demonym,
        )
        country_node = DependencyNode(country_token)
        relations.append(
            SemanticRelation(DEMONYM_PHRASE, head, country_node, (node,))
        )
    return relations
