"""Algorithm 2: finding relation-phrase embeddings in a dependency tree.

An *embedding* of relation phrase ``rel`` in tree ``Y`` (Definition 5) is a
maximal connected subtree whose nodes each carry one word of ``rel`` and
which together cover all of ``rel``'s words.  Using the dependency tree
rather than the word sequence handles long-distance dependencies: "In
which movies did Antonio Banderas star?" still embeds "star in" even though
the preposition is fronted.

Implementation: the paraphrase dictionary's word-level inverted index gives,
for each tree node, the phrases containing that node's lemma (Steps 1–2 of
Algorithm 2).  For each node and candidate phrase we then probe downward
through phrase-word nodes only (the ``Probe`` routine), marking which words
of the phrase appear; a phrase whose words are all marked yields an
embedding rooted at that node (Steps 3–11).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.nlp.dependency import DependencyNode, DependencyTree
from repro.paraphrase.dictionary import ParaphraseDictionary


@dataclass(frozen=True, slots=True)
class Embedding:
    """One occurrence of a relation phrase in the dependency tree."""

    phrase_words: tuple[str, ...]
    root: DependencyNode
    nodes: tuple[DependencyNode, ...]

    @property
    def size(self) -> int:
        return len(self.nodes)

    def node_indexes(self) -> frozenset[int]:
        return frozenset(node.index for node in self.nodes)

    def __repr__(self) -> str:
        words = " ".join(n.word for n in sorted(self.nodes, key=lambda n: n.index))
        return f"Embedding({' '.join(self.phrase_words)!r} ← {words!r})"


class RelationExtractor:
    """Finds all relation-phrase embeddings of a dictionary in a tree."""

    def __init__(self, dictionary: ParaphraseDictionary):
        self.dictionary = dictionary

    # ------------------------------------------------------------------ #

    def find_embeddings(self, tree: DependencyTree) -> list[Embedding]:
        """All maximal, non-overlapping embeddings in the tree.

        When embeddings overlap (e.g. "be married to" subsumes "married"),
        longer phrases win; among equal lengths, the earlier root wins.
        This implements Definition 5's maximality condition across phrases.
        """
        raw = self._all_embeddings(tree)
        raw.sort(key=lambda emb: (-emb.size, emb.root.index))
        chosen: list[Embedding] = []
        used: set[int] = set()
        for embedding in raw:
            indexes = embedding.node_indexes()
            if indexes & used:
                continue
            chosen.append(embedding)
            used |= indexes
        chosen.sort(key=lambda emb: emb.root.index)
        return chosen

    #: POS prefixes that can anchor an embedding.  Rooting at a bare
    #: preposition or auxiliary produces spurious relations ("in" + any
    #: noun), so roots must be content words.
    _CONTENT_POS_PREFIXES = ("NN", "VB", "JJ")

    def _all_embeddings(self, tree: DependencyTree) -> list[Embedding]:
        embeddings: list[Embedding] = []
        for node in tree.nodes:
            if not node.pos.startswith(self._CONTENT_POS_PREFIXES):
                continue
            for phrase in self.dictionary.phrases_containing(node.lemma):
                embedding = self._embed_at(node, phrase)
                if embedding is not None and self._is_maximal(embedding, phrase):
                    embeddings.append(embedding)
        return embeddings

    # ------------------------------------------------------------------ #

    def _embed_at(
        self, root: DependencyNode, phrase: tuple[str, ...]
    ) -> Embedding | None:
        """The Probe routine: grow a subtree of phrase-word nodes from
        ``root`` and check it covers the phrase's words (with multiplicity)."""
        needed = Counter(phrase)
        if needed[root.lemma] == 0:
            return None
        collected: list[DependencyNode] = []

        def probe(node: DependencyNode, remaining: Counter) -> None:
            collected.append(node)
            remaining[node.lemma] -= 1
            for child in node.children:
                if remaining[child.lemma] > 0:
                    probe(child, remaining)

        remaining = Counter(needed)
        probe(root, remaining)
        if any(count > 0 for count in remaining.values()):
            return None
        return Embedding(phrase, root, tuple(collected))

    @staticmethod
    def _is_maximal(embedding: Embedding, phrase: tuple[str, ...]) -> bool:
        """Condition 2 of Definition 5: the embedding is not a proper
        subtree of a larger embedding of the same phrase — equivalently,
        the root's parent is not itself a phrase word that could extend it."""
        parent = embedding.root.head
        if parent is None:
            return True
        # If the parent also carries a phrase word, the subtree rooted at
        # the parent would subsume this one; that root will produce it.
        return parent.lemma not in phrase
