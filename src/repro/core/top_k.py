"""Algorithm 3: TA-style top-k subgraph match search.

Candidate lists are confidence-sorted; a cursor per (non-wildcard) vertex
list advances in round-robin.  At each step the cursor's candidate seeds an
exploration-based subgraph isomorphism (Section 4.2.2 / match.matcher); the
threshold θ is the current k-th best match score, and the upper bound for
undiscovered matches follows Equation 3.  The search stops when
θ ≥ Upbound (the TA stop), or when some list is exhausted — every match
must use a candidate from every list, so a fully-seeded list proves
completeness.

One deliberate tightening over the paper's pseudo-code: Equation 3 also
advances *edge* cursors, but matches are only ever seeded from vertex
candidates, so an undiscovered match may still use the best edge mapping.
We therefore keep each edge's contribution at its maximum confidence,
which preserves correctness of the bound (and stops slightly later).
Ties at the k-th score are all returned (the paper's footnote 4).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro import obs
from repro.match.candidates import CandidateSpace
from repro.match.matcher import GraphMatch, SubgraphMatcher, _log
from repro.match.pruning import neighborhood_prune
from repro.rdf.graph import KnowledgeGraph


@dataclass(slots=True)
class TopKResult:
    """Top-k matches plus search diagnostics.

    ``terminated_by`` attributes how the search ended — Table 10 failure
    analysis and the trace counters read it:

    * ``"threshold"`` — the TA stop fired (θ ≥ Upbound, Equation 3);
    * ``"exhausted"`` — some candidate list was fully consumed, proving
      completeness (with or without matches found);
    * ``"pruned_empty"`` — neighborhood pruning emptied a candidate list
      before any seeding happened;
    * ``"empty"`` — a candidate list was already empty before pruning
      (the query was unsatisfiable as mapped);
    * ``"deadline"`` — a per-request deadline expired mid-search; the
      matches found so far are returned as a *partial* top-k (the serving
      layer's cooperative timeout, not a correctness stop).
    """

    matches: list[GraphMatch] = field(default_factory=list)
    seeds_explored: int = 0
    candidates_pruned: int = 0
    #: "threshold"|"exhausted"|"pruned_empty"|"empty"|"deadline"
    terminated_by: str = "empty"
    #: (depth, θ, Upbound) steps recorded per TA round under a recording
    #: tracer — how fast the Equation 3 bound closed on the threshold.
    ta_trajectory: list[dict] = field(default_factory=list)

    def __iter__(self):
        return iter(self.matches)

    def __len__(self) -> int:
        return len(self.matches)


class TopKSearch:
    """Runs Algorithm 3 over a candidate space.

    ``use_ta=False`` disables the threshold stop (exhaustive seeding) and
    ``use_pruning=False`` disables neighborhood pruning — both are the
    ablation knobs DESIGN.md calls out.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        k: int = 10,
        use_ta: bool = True,
        use_pruning: bool = True,
        max_matches_per_seed: int = 10_000,
        tracer=None,
    ):
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if max_matches_per_seed < 1:
            raise ValueError("max_matches_per_seed must be positive")
        self.kg = kg
        self.k = k
        self.use_ta = use_ta
        self.use_pruning = use_pruning
        self.max_matches_per_seed = max_matches_per_seed
        self.tracer = tracer

    # ------------------------------------------------------------------ #

    def search(
        self, space: CandidateSpace, tracer=None, deadline: float | None = None
    ) -> TopKResult:
        """Top-k matches of a connected candidate space.

        ``deadline`` is an absolute :func:`time.monotonic` instant.  The
        search checks it cooperatively between seed explorations: once it
        passes, seeding stops and the matches collected so far come back
        with ``terminated_by="deadline"`` — a partial (but valid) top-k.
        """
        if tracer is None:
            tracer = self.tracer if self.tracer is not None else obs.get_tracer()
        with tracer.span(
            "top_k.search", vertices=len(space.vertices), edges=len(space.edges)
        ) as span:
            result, matcher = self._search(space, tracer, deadline)
            metrics = tracer.metrics
            metrics.incr("top_k.searches")
            metrics.incr("top_k.seeds_explored", result.seeds_explored)
            metrics.incr("top_k.candidates_pruned", result.candidates_pruned)
            metrics.incr(f"top_k.terminated.{result.terminated_by}")
            span.set(
                seeds_explored=result.seeds_explored,
                candidates_pruned=result.candidates_pruned,
                terminated_by=result.terminated_by,
                matches=len(result.matches),
            )
            if result.ta_trajectory:
                span.set(ta_trajectory=result.ta_trajectory)
            if matcher is not None:
                metrics.incr("matcher.expansions", matcher.expansions)
                metrics.incr("matcher.rejected_bindings", matcher.rejected_bindings)
                span.set(
                    expansions=matcher.expansions,
                    rejected_bindings=matcher.rejected_bindings,
                )
        return result

    def _search(
        self, space: CandidateSpace, tracer, deadline: float | None = None
    ) -> tuple[TopKResult, SubgraphMatcher | None]:
        result = TopKResult()
        empty_before_pruning = space.has_empty_list()
        if self.use_pruning:
            result.candidates_pruned = neighborhood_prune(self.kg, space, tracer)
        if space.has_empty_list():
            # Attribute the no-match cause: a list that was empty before
            # pruning means the query was never satisfiable; one emptied
            # *by* pruning means every candidate was provably dead.
            result.terminated_by = "empty" if empty_before_pruning else "pruned_empty"
            return result, None

        matcher = SubgraphMatcher(self.kg, space, max_matches=self.max_matches_per_seed)
        seeded_lists = [
            (vertex_id, vertex.candidates)
            for vertex_id, vertex in sorted(space.vertices.items())
            if not vertex.wildcard
        ]
        if not seeded_lists:
            # Degenerate all-wildcard query: exhaustive enumeration.
            result.matches = matcher.all_matches()[: self.k]
            result.terminated_by = "exhausted"
            return result, matcher

        edge_bound = sum(_log(edge.best_confidence()) for edge in space.edges)
        seen: set[frozenset[tuple[int, int]]] = set()
        collected: list[GraphMatch] = []
        trajectory: list[dict] = []
        depth = 0
        max_depth = max(len(candidates) for _v, candidates in seeded_lists)
        terminated = "exhausted"
        expired = False
        while depth < max_depth:
            for vertex_id, candidates in seeded_lists:
                if deadline is not None and time.monotonic() >= deadline:
                    expired = True
                    break
                if depth >= len(candidates):
                    continue
                result.seeds_explored += 1
                for match in matcher.matches_from_seed(vertex_id, candidates[depth]):
                    if match.key() not in seen:
                        seen.add(match.key())
                        collected.append(match)
            if expired:
                terminated = "deadline"
                break
            depth += 1
            # A fully-consumed list means every match has been seeded.
            if any(depth >= len(candidates) for _v, candidates in seeded_lists):
                break
            if self.use_ta:
                reached, threshold, upbound = self._threshold_status(
                    collected, seeded_lists, depth, edge_bound
                )
                if tracer.enabled:
                    trajectory.append(
                        {"depth": depth, "threshold": threshold, "upbound": upbound}
                    )
                if reached:
                    terminated = "threshold"
                    break
        result.matches = self._select_top_k(collected)
        result.terminated_by = terminated
        result.ta_trajectory = trajectory
        return result, matcher

    # ------------------------------------------------------------------ #

    def _threshold_status(
        self,
        collected: list[GraphMatch],
        seeded_lists,
        depth: int,
        edge_bound: float,
    ) -> tuple[bool, float | None, float]:
        """(stop?, current θ or None if < k matches, Equation 3 upper bound)."""
        upbound = edge_bound
        for _vertex_id, candidates in seeded_lists:
            upbound += _log(candidates[depth].confidence)
        if len(collected) < self.k:
            return False, None, upbound
        scores = sorted((m.score for m in collected), reverse=True)
        threshold = scores[self.k - 1]
        # Strict comparison: an undiscovered match could score exactly the
        # threshold, and footnote 4 returns all matches tied at the k-th
        # score.  (The paper's pseudo-code stops at ≥; strictness costs a
        # little work and buys tie completeness.)
        return threshold > upbound + 1e-12, threshold, upbound

    def _select_top_k(self, collected: list[GraphMatch]) -> list[GraphMatch]:
        """Best k matches, keeping all matches tied with the k-th score."""
        ranked = sorted(collected, key=lambda m: (-m.score, m.bindings))
        if len(ranked) <= self.k:
            return ranked
        cutoff = ranked[self.k - 1].score
        top = [m for m in ranked if m.score > cutoff or math.isclose(m.score, cutoff)]
        return top
