"""Human-readable derivations: why did the system answer what it answered?

A production QA endpoint must be able to justify its output.  The
pipeline already keeps everything needed — the semantic query graph, the
matches with their chosen candidates and paths, the emitted SPARQL —
and this module renders it as a derivation trace:

    Question: Who was married to an actor that played in Philadelphia?
    Semantic query graph (Definition 2):
      [who] --"be marry to"--> [actor]
      ...
    Top match (score -0.11):
      [who] → Melanie_Griffith (wildcard)
      [actor] → Antonio_Banderas (class Actor, δ=0.93)
      ...
"""

from __future__ import annotations

from repro.core.pipeline import Answer
from repro.rdf.graph import KnowledgeGraph, step_is_forward, step_predicate
from repro.rdf.terms import IRI


def _name(kg: KnowledgeGraph, node_id: int) -> str:
    term = kg.term_of(node_id)
    return term.local_name if isinstance(term, IRI) else f'"{term}"'


def _render_path(kg: KnowledgeGraph, path: tuple[int, ...]) -> str:
    parts = []
    for step in path:
        name = kg.iri_of(step_predicate(step)).local_name
        parts.append(name if step_is_forward(step) else f"{name}⁻¹")
    return "·".join(parts)


def explain(kg: KnowledgeGraph, answer: Answer, max_matches: int = 3) -> str:
    """A derivation trace for an Answer (works for failures too)."""
    lines = [f"Question: {answer.question}"]
    if answer.analysis is not None:
        lines.append(
            f"Classified as: {answer.analysis.question_type.value}"
            + (
                f" ({answer.analysis.aggregation.value} aggregation)"
                if answer.analysis.is_aggregation
                else ""
            )
        )

    graph = answer.semantic_graph
    if graph is None:
        lines.append(f"No semantic query graph — failure: {answer.failure}")
        return "\n".join(lines)

    lines.append("Semantic query graph (Definition 2):")
    for edge in graph.edges:
        source = graph.vertices[edge.source].phrase
        target = graph.vertices[edge.target].phrase
        lines.append(f'  [{source}] --"{" ".join(edge.phrase_words)}"--> [{target}]')
    if answer.rules_used:
        lines.append(f"Argument heuristics used: {', '.join(sorted(answer.rules_used))}")

    if not answer.matches:
        lines.append(f"No subgraph match — failure: {answer.failure}")
        return "\n".join(lines)

    for rank, match in enumerate(answer.matches[:max_matches], start=1):
        lines.append(f"Match #{rank} (score {match.score:.3f}):")
        confidences = dict(match.vertex_confidences)
        for vertex_id, node in match.bindings:
            phrase = graph.vertices[vertex_id].phrase
            delta = confidences.get(vertex_id, 0.0)
            lines.append(f"  [{phrase}] → {_name(kg, node)}  (δ={delta:.2f})")
        for index, path, confidence in match.edge_assignments:
            edge = graph.edges[index]
            rel = " ".join(edge.phrase_words)
            lines.append(
                f'  "{rel}" → {_render_path(kg, path)}  (δ={confidence:.2f})'
            )
    if len(answer.matches) > max_matches:
        lines.append(f"  ... and {len(answer.matches) - max_matches} more match(es)")

    if answer.boolean is not None:
        lines.append(f"Answer: {'yes' if answer.boolean else 'no'}")
    elif answer.answers:
        rendered = ", ".join(
            term.local_name if isinstance(term, IRI) else str(term)
            for term in answer.answers
        )
        lines.append(f"Answer: {rendered}")
    if answer.sparql_queries:
        lines.append("Equivalent SPARQL (top match):")
        for line in answer.sparql_queries[0].splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)
