"""Extension: superlative aggregation post-processing.

The paper cannot answer aggregation questions ("Who is the youngest player
in the Premier League?") — they need ``ORDER BY DESC(?x) LIMIT 1`` style
post-processing and account for 35 % of its failures (Table 10).  This
module is the opt-in extension (``GAnswer(enable_aggregation=True)``) that
the paper leaves as future work: after the base subgraph matching returns
candidate answers, the superlative's attribute ranks them and the extreme
one wins.

The attribute lexicon maps a superlative adjective to (predicate local
names to try, direction).  Direction "max" keeps the largest value.
Birth dates invert the intuition: *youngest* = latest birth date.
"""

from __future__ import annotations

from repro.nlp.tagger import tag
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.terms import IRI, Literal, Term

#: superlative → (candidate predicate local names, "max" | "min")
SUPERLATIVE_ATTRIBUTES: dict[str, tuple[tuple[str, ...], str]] = {
    "youngest": (("birthDate", "dateOfBirth"), "max"),
    "oldest": (("birthDate", "dateOfBirth"), "min"),
    "largest": (("populationTotal", "area", "size"), "max"),
    "biggest": (("populationTotal", "area", "size"), "max"),
    "smallest": (("populationTotal", "area", "size"), "min"),
    "highest": (("elevation", "height"), "max"),
    "tallest": (("height", "elevation"), "max"),
    "longest": (("length",), "max"),
    "shortest": (("length",), "min"),
}


def _attribute_value(kg: KnowledgeGraph, term: Term, predicates: tuple[str, ...]):
    """The first available attribute value of an entity, as a sortable key."""
    if not isinstance(term, IRI):
        return None
    node_id = kg.id_of(term)
    if node_id is None:
        return None
    for local_name in predicates:
        for edge in kg.edges(node_id, include_literals=True):
            predicate = kg.iri_of(edge.predicate)
            if predicate.local_name == local_name and edge.direction.value == "out":
                value = kg.term_of(edge.node)
                if isinstance(value, Literal):
                    try:
                        return float(value.lexical)
                    except ValueError:
                        return value.lexical  # dates compare lexically (ISO)
    return None


def apply_superlative(kg: KnowledgeGraph, question: str, result) -> None:
    """Reduce ``result.answers`` to the superlative's extreme element.

    No-op when no known superlative occurs or no answer has the attribute;
    in that case the failure stays classified as aggregation-unsupported.
    """
    tokens = tag(question)
    spec = next(
        (
            SUPERLATIVE_ATTRIBUTES[token.lower]
            for token in tokens
            if token.lower in SUPERLATIVE_ATTRIBUTES
        ),
        None,
    )
    if spec is None or not result.answers:
        return
    predicates, direction = spec
    valued = [
        (value, answer)
        for answer in result.answers
        if (value := _attribute_value(kg, answer, predicates)) is not None
    ]
    if not valued:
        return
    # Mixed float/str keys cannot compare; keep the majority type.
    floats = [(v, a) for v, a in valued if isinstance(v, float)]
    strings = [(v, a) for v, a in valued if isinstance(v, str)]
    pool = floats if len(floats) >= len(strings) else strings
    best = max(pool, key=lambda pair: pair[0]) if direction == "max" else min(
        pool, key=lambda pair: pair[0]
    )
    result.answers = [best[1]]
    result.failure = None
