"""Emitting SPARQL from subgraph matches (Algorithm 3's output form).

The paper frames Algorithm 3 as "Generating Top-k SPARQL Queries": every
subgraph match corresponds to one fully disambiguated SPARQL query.  Given
a match, the wh/target vertices stay variables and every other vertex is
bound to its matched node; multi-hop path edges expand into chained triple
patterns with fresh intermediate variables.  Evaluating the emitted query
on the store returns exactly the match's answer — a property the tests pin.
"""

from __future__ import annotations

from repro.core.semantic_graph import SemanticQueryGraph
from repro.match.matcher import GraphMatch
from repro.rdf.graph import KnowledgeGraph, step_is_forward, step_predicate
from repro.rdf.ntriples import serialize_term


def match_to_sparql(
    kg: KnowledgeGraph,
    graph: SemanticQueryGraph,
    match: GraphMatch,
    target_vertex_ids: set[int] | None = None,
) -> str:
    """One SPARQL SELECT (or ASK when no target) for one match.

    ``target_vertex_ids`` are emitted as variables; every other vertex is
    bound to the node the match chose, which *is* the disambiguation.
    """
    targets = set(target_vertex_ids or ())
    variables = {vid: f"?v{vid}" for vid in graph.vertices}

    def term_of(vertex_id: int) -> str:
        if vertex_id in targets:
            return variables[vertex_id]
        node = match.binding_of(vertex_id)
        if node is None:
            return variables[vertex_id]
        return serialize_term(kg.term_of(node))

    lines: list[str] = []
    fresh = 0
    assignments = {index: (path, conf) for index, path, conf in match.edge_assignments}
    for index, edge in enumerate(graph.edges):
        path, _conf = assignments.get(index, ((), 0.0))
        current = term_of(edge.source)
        for position, step in enumerate(path):
            predicate = serialize_term(kg.iri_of(step_predicate(step)))
            last = position == len(path) - 1
            if last:
                nxt = term_of(edge.target)
            else:
                nxt = f"?m{fresh}"
                fresh += 1
            if step_is_forward(step):
                lines.append(f"  {current} {predicate} {nxt} .")
            else:
                lines.append(f"  {nxt} {predicate} {current} .")
            current = nxt
    body = "\n".join(lines)
    if targets:
        projection = " ".join(variables[vid] for vid in sorted(targets))
        return f"SELECT DISTINCT {projection} WHERE {{\n{body}\n}}"
    return f"ASK WHERE {{\n{body}\n}}"
