"""Phrase mapping (Section 4.2.1): Q^S → candidate space.

Every vertex of Q^S gets its candidate list C_v:

* wh-words become wildcards — they "can match all entities and classes";
  a light answer-type filter restricts *when* to date-like literals and
  *how (tall/many/...)* to numeric literals, so the wildcard binds values
  of the right kind (the paper's wh-handling leaves this to the gold
  standard's answer type; see DESIGN.md);
* other arguments go through entity linking, yielding entities *and*
  classes with confidences δ(arg, u) — ambiguity is kept.

Every edge gets its candidate list C_e from the paraphrase dictionary:
predicates and predicate paths with confidences δ(rel, L).
"""

from __future__ import annotations

import re

from repro import obs
from repro.core.semantic_graph import QSVertex, SemanticQueryGraph
from repro.linking.linker import EntityLinker
from repro.match.candidates import (
    CandidateSpace,
    EdgeCandidate,
    QueryEdge,
    QueryVertex,
    VertexCandidate,
)
from repro.paraphrase.dictionary import ParaphraseDictionary
from repro.rdf import vocab
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.terms import Literal

_DATE_RE = re.compile(r"^\d{4}(-\d{2}(-\d{2})?)?$")
_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?$")


class PhraseMapper:
    """Maps Q^S phrases to graph candidates, keeping all ambiguity."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        dictionary: ParaphraseDictionary,
        linker: EntityLinker | None = None,
    ):
        self.kg = kg
        self.dictionary = dictionary
        self.linker = linker if linker is not None else EntityLinker(kg)

    # ------------------------------------------------------------------ #

    def build_candidate_space(
        self, graph: SemanticQueryGraph, tracer=None
    ) -> CandidateSpace:
        """The matching problem for Q^S: C_v and C_e for every vertex/edge."""
        if tracer is None:
            tracer = obs.get_tracer()
        space = CandidateSpace()
        for vertex in graph.vertices.values():
            space.add_vertex(self._map_vertex(vertex, tracer))
        for edge in graph.edges:
            mappings = self.dictionary.lookup(edge.phrase_words)
            candidates = [EdgeCandidate(m.path, m.confidence) for m in mappings]
            tracer.metrics.incr("mapping.edge_candidates", len(candidates))
            space.add_edge(QueryEdge(edge.source, edge.target, candidates=candidates))
        return space

    # ------------------------------------------------------------------ #

    def _map_vertex(self, vertex: QSVertex, tracer=obs.NOOP) -> QueryVertex:
        if vertex.is_wh:
            return QueryVertex(
                vertex.vertex_id,
                wildcard=True,
                wildcard_filter=self._wildcard_filter(vertex.node.lower),
            )
        phrase = self._longest_linkable_phrase(vertex)
        with tracer.span("linking", phrase=phrase) as span:
            candidates = [
                VertexCandidate(link.node_id, link.score, link.is_class)
                for link in self.linker.link(phrase, tracer=tracer)
            ]
            span.set(candidates=len(candidates))
        if not candidates and vertex.node.pos in ("NN", "NNS"):
            # An unlinkable common noun ("the creator of Miffy") denotes an
            # unconstrained variable, not a failed entity mention — proper
            # nouns that fail to link stay empty and surface as Table 10's
            # entity-linking failures.
            return QueryVertex(vertex.vertex_id, wildcard=True)
        return QueryVertex(vertex.vertex_id, candidates=candidates)

    def _longest_linkable_phrase(self, vertex: QSVertex) -> str:
        """Longest-match linking: extend the argument with an attached
        of/in prepositional phrase when the extended surface form links
        exactly ("Nobel Prize in Chemistry", "University of Paris") —
        otherwise the bare phrase stands."""
        node = vertex.node
        for child in node.children:
            if child.deprel != "prep" or child.lower not in ("of", "in"):
                continue
            pobj = next((g for g in child.children if g.deprel == "pobj"), None)
            if pobj is None:
                continue
            extended = f"{vertex.phrase} {child.word} {pobj.phrase()}"
            if self.linker.index.exact(extended):
                return extended
        return vertex.phrase

    def _wildcard_filter(self, wh_word: str):
        """Answer-type restriction for a wh wildcard (None = unrestricted)."""
        kg = self.kg

        def is_date_like(node_id: int) -> bool:
            if not kg.store.is_literal_id(node_id):
                return False
            term = kg.term_of(node_id)
            assert isinstance(term, Literal)
            return term.datatype == vocab.XSD_DATE or bool(_DATE_RE.match(term.lexical))

        def is_numeric(node_id: int) -> bool:
            if not kg.store.is_literal_id(node_id):
                return False
            term = kg.term_of(node_id)
            assert isinstance(term, Literal)
            if term.datatype in (vocab.XSD_INTEGER, vocab.XSD_DECIMAL, vocab.XSD_DOUBLE):
                return True
            return bool(_NUMBER_RE.match(term.lexical))

        def is_node(node_id: int) -> bool:
            return not kg.store.is_literal_id(node_id)

        if wh_word == "when":
            return is_date_like
        if wh_word == "how":
            return is_numeric
        if wh_word in ("who", "whom", "where", "which"):
            return is_node
        return None  # "what" and anything else: unrestricted
