"""The paper's contribution: graph data driven RDF question answering.

Online pipeline (Section 4):

1. **Question understanding** — dependency-parse the question, find
   relation-phrase embeddings (Algorithm 2), attach arguments
   (Section 4.1.2's relations + heuristic Rules 1–4), resolve coreference,
   and assemble the semantic query graph Q^S (Definitions 1–2).
2. **Query evaluation** — map vertices to entity/class candidates and edges
   to predicate-path candidates *keeping all ambiguity* (Section 4.2.1),
   then find the top-k subgraph matches with a TA-style threshold algorithm
   over confidence-sorted candidate lists (Algorithm 3, Definition 6).
   Disambiguation happens here: only candidates that participate in matches
   survive.

The :class:`GAnswer` facade runs the whole pipeline::

    from repro import GAnswer

    system = GAnswer(kg, dictionary)
    result = system.answer("Who was married to an actor that played in Philadelphia?")
    result.answers          # [IRI('ex:Melanie_Griffith')]
"""

from repro.core.semantic_graph import (
    QSEdge,
    QSVertex,
    SemanticQueryGraph,
    SemanticRelation,
)
from repro.core.relation_extraction import Embedding, RelationExtractor
from repro.core.argument_finding import ArgumentFinder
from repro.core.coreference import resolve_coreference
from repro.core.graph_builder import build_semantic_query_graph
from repro.core.phrase_mapping import PhraseMapper
from repro.core.top_k import TopKSearch, TopKResult
from repro.core.sparql_generation import match_to_sparql
from repro.core.explain import explain
from repro.core.pipeline import Answer, GAnswer

__all__ = [
    "QSEdge",
    "QSVertex",
    "SemanticQueryGraph",
    "SemanticRelation",
    "Embedding",
    "RelationExtractor",
    "ArgumentFinder",
    "resolve_coreference",
    "build_semantic_query_graph",
    "PhraseMapper",
    "TopKSearch",
    "TopKResult",
    "match_to_sparql",
    "explain",
    "Answer",
    "GAnswer",
]
