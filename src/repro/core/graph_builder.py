"""Assembling the semantic query graph from semantic relations
(Section 4.1.3).

Each semantic relation becomes one edge; arguments resolve through
coreference to canonical dependency nodes, and relations sharing a
canonical argument share the corresponding vertex.
"""

from __future__ import annotations

from repro.core.coreference import resolve_coreference
from repro.core.semantic_graph import SemanticQueryGraph, SemanticRelation
from repro.nlp.dependency import DependencyNode


def _vertex_phrase(node: DependencyNode) -> str:
    """The surface phrase the entity linker will see for this argument.

    Demonym modifiers are dropped — they were lifted into their own
    relation ("Argentine films" links as "films", with a separate
    country edge).
    """
    if node.is_wh() and not node.pos.startswith("NN"):
        return node.lower
    from repro.core.demonyms import DEMONYMS

    words = [
        word for word in node.phrase().split() if word.lower() not in DEMONYMS
    ]
    return " ".join(words) if words else node.phrase()


def _is_wh_vertex(node: DependencyNode) -> bool:
    """Wh-words stand for the unknown and match everything (Section 2.2).

    A nominal with a wh determiner ("which movies") is *not* a wh vertex:
    its noun constrains the answer and is linked as a class instead.
    """
    return node.pos in ("WP", "WP$", "WDT", "WRB")


def build_semantic_query_graph(
    relations: list[SemanticRelation],
) -> SemanticQueryGraph:
    """Build Q^S: one edge per relation, vertices merged via coreference."""
    graph = SemanticQueryGraph()
    for relation in relations:
        arg1 = resolve_coreference(relation.arg1)
        arg2 = resolve_coreference(relation.arg2)
        if arg1 is arg2:
            # Degenerate after coreference (e.g. "actor that ..."
            # collapsing both arguments) — drop the relation.
            continue
        source = graph.add_vertex(arg1, _vertex_phrase(arg1), _is_wh_vertex(arg1))
        target = graph.add_vertex(arg2, _vertex_phrase(arg2), _is_wh_vertex(arg2))
        graph.add_edge(source, target, relation.phrase_words)
    return graph
