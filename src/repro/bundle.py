"""Save/load a complete QA setup (knowledge graph + mined dictionary).

The offline phase is the expensive part of deployment; a *bundle* persists
its outputs so a service can start without re-mining:

    from repro.bundle import save_bundle, load_bundle

    save_bundle("deploy/", kg, dictionary)
    kg, dictionary = load_bundle("deploy/")
    system = GAnswer(kg, dictionary)

A bundle directory holds ``graph.nt`` (N-Triples) and ``dictionary.json``
plus a small manifest for sanity checks.  Format v2 bundles may also
carry a compiled snapshot (``graph.snap``, see :mod:`repro.rdf.snapshot`)
which :func:`load_bundle` prefers: it restores the encoded, indexed form
directly instead of re-parsing text and rebuilding every index.  V1
bundles (and v2 bundles whose snapshot is missing) load through the text
path unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ReproError, SnapshotError
from repro.paraphrase.dictionary import ParaphraseDictionary
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.io import load_knowledge_graph, save_store

_MANIFEST_NAME = "manifest.json"
_GRAPH_NAME = "graph.nt"
_DICTIONARY_NAME = "dictionary.json"
_SNAPSHOT_NAME = "graph.snap"
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_bundle(
    directory: str | Path,
    kg: KnowledgeGraph,
    dictionary: ParaphraseDictionary,
    include_snapshot: bool = False,
    shards: int | None = None,
) -> Path:
    """Write the setup into ``directory`` (created if needed).

    With ``include_snapshot=True`` a compiled snapshot rides along and
    becomes the preferred load path — near-instant cold start — while the
    text members keep the bundle portable and diffable.  ``shards=K``
    makes that snapshot the sharded form (manifest + K lazily-loaded
    segment files); the loader sniffs the form, so consumers are
    unaffected.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    triple_count = save_store(kg.store, directory / _GRAPH_NAME)
    # Portable form: the graph file re-assigns term ids on load, so the
    # dictionary must name predicates by IRI, not by id.
    (directory / _DICTIONARY_NAME).write_text(
        dictionary.to_portable_json(kg), encoding="utf-8"
    )
    manifest = {
        "format_version": _FORMAT_VERSION,
        "triples": triple_count,
        "phrases": len(dictionary),
    }
    if include_snapshot:
        from repro.rdf.snapshot import compile_snapshot

        compile_snapshot(directory / _SNAPSHOT_NAME, kg, dictionary, shards=shards)
        manifest["snapshot"] = _SNAPSHOT_NAME
    (directory / _MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=1) + "\n", encoding="utf-8"
    )
    return directory


def load_bundle(
    directory: str | Path, prefer_snapshot: bool = True, overlay: bool = False
) -> tuple[KnowledgeGraph, ParaphraseDictionary]:
    """Load a setup saved by :func:`save_bundle`.

    The dictionary's predicate-path ids refer to the graph's term
    dictionary, which is why the two are bundled: loading them separately
    from mismatched sources would silently mis-map every path.  The
    manifest's triple and phrase counts guard against truncated files.

    When the manifest names a compiled snapshot and ``prefer_snapshot``
    is true, the snapshot is loaded instead of the text members (falling
    back to text if the snapshot file is absent).

    ``overlay=True`` returns a *live-ingest ready* graph: a frozen
    (snapshot-loaded) store comes back wrapped in a writable
    :class:`~repro.rdf.overlay.OverlayBackend` — same content, same
    version, mutable delta on top.  A store that loaded mutable (the
    text path) is returned as-is.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    if not manifest_path.exists():
        raise ReproError(f"not a bundle directory (no manifest): {directory}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format_version") not in _SUPPORTED_VERSIONS:
        raise ReproError(
            f"unsupported bundle format {manifest.get('format_version')!r}"
        )

    snapshot_name = manifest.get("snapshot")
    if prefer_snapshot and snapshot_name and (directory / snapshot_name).exists():
        from repro.rdf.snapshot import load_snapshot

        try:
            state = load_snapshot(directory / snapshot_name)
        except SnapshotError as exc:
            raise ReproError(f"bundle snapshot is unusable: {exc}") from exc
        _verify_counts(manifest, len(state.kg.store), len(state.dictionary))
        return _maybe_overlay(state.kg, overlay), state.dictionary

    kg = load_knowledge_graph(directory / _GRAPH_NAME)
    dictionary_path = directory / _DICTIONARY_NAME
    try:
        dictionary = ParaphraseDictionary.from_portable_json(
            dictionary_path.read_text(encoding="utf-8"), kg
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise ReproError(
            f"bundle dictionary {dictionary_path} is truncated or corrupt: {exc}"
        ) from exc
    _verify_counts(manifest, len(kg.store), len(dictionary))
    return _maybe_overlay(kg, overlay), dictionary


def _maybe_overlay(kg: KnowledgeGraph, overlay: bool) -> KnowledgeGraph:
    """Wrap a frozen store in a writable overlay when asked (in place)."""
    if overlay and not kg.store.writable:
        from repro.rdf.overlay import OverlayBackend

        kg.store.swap_backend(OverlayBackend(kg.store.backend))
    return kg


def _verify_counts(manifest: dict, triples: int, phrases: int) -> None:
    if triples != manifest["triples"]:
        raise ReproError(
            f"bundle graph has {triples} triples, manifest says "
            f"{manifest['triples']} — truncated or modified file?"
        )
    # V1 manifests already recorded the phrase count; it was never checked,
    # so a truncated dictionary.json loaded silently with fewer phrases.
    expected_phrases = manifest.get("phrases")
    if expected_phrases is not None and phrases != expected_phrases:
        raise ReproError(
            f"bundle dictionary has {phrases} phrases, manifest says "
            f"{expected_phrases} — truncated or modified dictionary.json?"
        )
