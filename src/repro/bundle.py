"""Save/load a complete QA setup (knowledge graph + mined dictionary).

The offline phase is the expensive part of deployment; a *bundle* persists
its outputs so a service can start without re-mining:

    from repro.bundle import save_bundle, load_bundle

    save_bundle("deploy/", kg, dictionary)
    kg, dictionary = load_bundle("deploy/")
    system = GAnswer(kg, dictionary)

A bundle directory holds ``graph.nt`` (N-Triples) and ``dictionary.json``
plus a small manifest for sanity checks.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ReproError
from repro.paraphrase.dictionary import ParaphraseDictionary
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.io import load_knowledge_graph, save_store

_MANIFEST_NAME = "manifest.json"
_GRAPH_NAME = "graph.nt"
_DICTIONARY_NAME = "dictionary.json"
_FORMAT_VERSION = 1


def save_bundle(
    directory: str | Path,
    kg: KnowledgeGraph,
    dictionary: ParaphraseDictionary,
) -> Path:
    """Write the setup into ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    triple_count = save_store(kg.store, directory / _GRAPH_NAME)
    # Portable form: the graph file re-assigns term ids on load, so the
    # dictionary must name predicates by IRI, not by id.
    (directory / _DICTIONARY_NAME).write_text(
        dictionary.to_portable_json(kg), encoding="utf-8"
    )
    manifest = {
        "format_version": _FORMAT_VERSION,
        "triples": triple_count,
        "phrases": len(dictionary),
    }
    (directory / _MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=1) + "\n", encoding="utf-8"
    )
    return directory


def load_bundle(directory: str | Path) -> tuple[KnowledgeGraph, ParaphraseDictionary]:
    """Load a setup saved by :func:`save_bundle`.

    The dictionary's predicate-path ids refer to the graph's term
    dictionary, which is why the two are bundled: loading them separately
    from mismatched sources would silently mis-map every path.  The
    manifest's triple count guards against a truncated graph file.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    if not manifest_path.exists():
        raise ReproError(f"not a bundle directory (no manifest): {directory}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported bundle format {manifest.get('format_version')!r}"
        )
    kg = load_knowledge_graph(directory / _GRAPH_NAME)
    if len(kg.store) != manifest["triples"]:
        raise ReproError(
            f"bundle graph has {len(kg.store)} triples, manifest says "
            f"{manifest['triples']} — truncated or modified file?"
        )
    dictionary = ParaphraseDictionary.from_portable_json(
        (directory / _DICTIONARY_NAME).read_text(encoding="utf-8"), kg
    )
    return kg, dictionary
