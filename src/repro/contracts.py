"""Machine-checked concurrency and lifecycle contracts.

The serving layer's correctness rests on invariants that are invisible to
the type system: *which lock guards which field*, *which state survives a
fork*, and *which methods may legally touch shared state without
synchronization*.  This module gives those contracts a declarative,
importable form:

* :func:`guarded_by` — declares that instance fields may only be touched
  while holding a named lock attribute;
* :func:`fork_shared` — declares fields that a forked worker deliberately
  shares with its parent (immutable or copy-on-write state), exempting
  them from the fork-safety reset requirement;
* :func:`single_threaded` — marks a method that by contract runs while
  the object is not shared between threads (e.g. ``reset_after_fork`` in
  a freshly-forked, still single-threaded child).

At runtime the decorators only record metadata on the class (cheap class
attributes; compatible with ``__slots__``) — they never wrap, proxy, or
slow anything down.  Their real consumer is :mod:`repro.analysis`, which
reads the *source* of the decorator calls (literal string arguments) and
enforces the declared discipline statically:

* the ``lock-discipline`` rule flags any ``self.<field>`` access outside
  a ``with self.<lock>:`` block for fields declared via :func:`guarded_by`;
* the ``fork-safety`` rule requires every lock/pool/socket/cache-holding
  attribute of a class with ``reset_after_fork`` to be re-created there,
  unless listed in :func:`fork_shared`.

Because the checker is static, decorator arguments must be literal
strings — a computed field name would be enforced at runtime (metadata is
still recorded) but invisible to ``repro lint``.

This module must stay dependency-free: every layer (``rdf``, ``obs``,
``serve``) imports it, so it can import nothing of theirs.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["fork_shared", "guarded_by", "single_threaded"]

_C = TypeVar("_C", bound=type)
_F = TypeVar("_F", bound=Callable)

#: Class attribute mapping guarded field name -> lock attribute name.
GUARDED_FIELDS_ATTR = "__guarded_fields__"

#: Class attribute holding the frozenset of fork-shared field names.
FORK_SHARED_ATTR = "__fork_shared_fields__"

#: Function attribute flagging a single-threaded-by-contract method.
SINGLE_THREADED_ATTR = "__lint_single_threaded__"


def guarded_by(lock: str, *fields: str) -> Callable[[_C], _C]:
    """Declare that ``fields`` may only be touched under ``with self.<lock>:``.

    Stack the decorator to declare several locks on one class::

        @guarded_by("_lock", "_entries", "_hits")
        class TTLCache: ...

    ``__init__`` (the object is not yet shared) and methods marked
    :func:`single_threaded` are exempt from the static check; everything
    else that reads or writes a guarded field outside its lock is a
    ``lock-discipline`` finding.
    """
    if not fields:
        raise ValueError("guarded_by needs at least one field name")

    def mark(cls: _C) -> _C:
        merged = dict(getattr(cls, GUARDED_FIELDS_ATTR, {}))
        for name in fields:
            merged[name] = lock
        setattr(cls, GUARDED_FIELDS_ATTR, merged)
        return cls

    return mark


def fork_shared(*fields: str) -> Callable[[_C], _C]:
    """Declare fields a forked worker deliberately shares with its parent.

    Shared fields are the point of pre-fork serving (the mmapped triple
    columns, the kernel rows, the mined dictionary); listing them here
    documents the decision and exempts them from the ``fork-safety``
    requirement that risky state be re-created in ``reset_after_fork``.
    """
    if not fields:
        raise ValueError("fork_shared needs at least one field name")

    def mark(cls: _C) -> _C:
        merged = frozenset(getattr(cls, FORK_SHARED_ATTR, frozenset())) | frozenset(fields)
        setattr(cls, FORK_SHARED_ATTR, merged)
        return cls

    return mark


def single_threaded(method: _F) -> _F:
    """Mark a method that runs while the object is not shared across threads.

    The canonical case is ``reset_after_fork``: it executes in a child
    process before any worker thread exists, so touching lock-guarded
    fields without the lock is correct there — and *only* there.  The
    ``lock-discipline`` rule skips methods carrying this marker.
    """
    setattr(method, SINGLE_THREADED_ATTR, True)
    return method
