"""Rule-based English lemmatizer with irregular-form tables.

Handles the inflectional morphology the pipeline needs: verb tense forms
(-s, -ed, -ing with e-restoration and consonant-doubling undone), noun
plurals, and the irregular verbs/nouns in the lexicon.  The lemma of a word
depends on its POS tag, so :func:`lemmatize` takes the tag when known.
"""

from __future__ import annotations

from repro.nlp import lexicon

_VOWELS = set("aeiou")

_IRREGULAR_VERB_LEMMAS = {form: base for form, (base, _tag) in lexicon.IRREGULAR_VERBS.items()}
_IRREGULAR_VERB_LEMMAS.update(
    {
        "is": "be", "am": "be", "are": "be", "was": "be", "were": "be",
        "been": "be", "being": "be",
        "has": "have", "had": "have", "having": "have",
        "does": "do", "did": "do", "done": "do", "doing": "do",
    }
)


def _strip_ed(word: str) -> str:
    stem = word[:-2]
    # "starred" → "starr" → "star"; "married" handled by -ied rule below.
    if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
        # Undo consonant doubling unless the base legitimately ends doubled
        # ("pass", "tell" are irregular anyway).
        candidate = stem[:-1]
        if candidate in lexicon.VERB_BASES:
            return candidate
        if stem in lexicon.VERB_BASES:
            return stem
        return candidate
    if stem in lexicon.VERB_BASES:
        return stem
    # e-restoration: "produced" → "produc" → "produce".
    if stem + "e" in lexicon.VERB_BASES:
        return stem + "e"
    # Unknown verb: prefer the bare stem ("asked" → "ask").
    return stem


def _strip_ing(word: str) -> str:
    stem = word[:-3]
    if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
        candidate = stem[:-1]
        if candidate in lexicon.VERB_BASES:
            return candidate
        if stem in lexicon.VERB_BASES:
            return stem
        return candidate
    if stem in lexicon.VERB_BASES:
        return stem
    if stem + "e" in lexicon.VERB_BASES:
        return stem + "e"
    return stem


def lemmatize_verb(word: str) -> str:
    lowered = word.lower()
    if lowered in _IRREGULAR_VERB_LEMMAS:
        return _IRREGULAR_VERB_LEMMAS[lowered]
    if lowered in lexicon.VERB_BASES:
        return lowered
    if lowered.endswith("ied") and len(lowered) > 4:
        return lowered[:-3] + "y"  # married → marry
    if lowered.endswith("ed") and len(lowered) > 3:
        return _strip_ed(lowered)
    if lowered.endswith("ing") and len(lowered) > 4:
        return _strip_ing(lowered)
    if lowered.endswith("ies") and len(lowered) > 4:
        if lowered[:-1] in lexicon.VERB_BASES:
            return lowered[:-1]  # "dies" → "die"
        return lowered[:-3] + "y"
    if lowered.endswith(("ses", "xes", "zes", "ches", "shes")):
        return lowered[:-2]
    if lowered.endswith("s") and not lowered.endswith("ss") and len(lowered) > 2:
        return lowered[:-1]
    return lowered


def lemmatize_noun(word: str) -> str:
    lowered = word.lower()
    if lowered in lexicon.IRREGULAR_NOUN_PLURALS:
        return lexicon.IRREGULAR_NOUN_PLURALS[lowered]
    if lowered in lexicon.NOUNS:
        return lowered
    if lowered.endswith("ies") and len(lowered) > 4:
        # "movies" → "movie" (known base) vs "cities" → "city".
        if lowered[:-1] in lexicon.NOUNS:
            return lowered[:-1]
        return lowered[:-3] + "y"
    if lowered.endswith(("ses", "xes", "zes", "ches", "shes")):
        return lowered[:-2]
    if lowered.endswith("s") and not lowered.endswith(("ss", "us", "is")) and len(lowered) > 2:
        return lowered[:-1]
    return lowered


def lemmatize_adjective(word: str) -> str:
    lowered = word.lower()
    if lowered in lexicon.SUPERLATIVES:
        return lexicon.SUPERLATIVES[lowered]
    if lowered in lexicon.COMPARATIVES:
        return lexicon.COMPARATIVES[lowered]
    return lowered


def lemmatize(word: str, pos: str | None = None) -> str:
    """Lemmatize ``word`` given its Penn tag (or best-effort when None).

    Proper nouns keep their surface form (case included) so entity phrases
    survive intact; everything else lowercases.
    """
    if pos is None:
        lowered = word.lower()
        if lowered in _IRREGULAR_VERB_LEMMAS:
            return _IRREGULAR_VERB_LEMMAS[lowered]
        if lowered in lexicon.IRREGULAR_NOUN_PLURALS:
            return lexicon.IRREGULAR_NOUN_PLURALS[lowered]
        return lemmatize_noun(lowered)
    if pos.startswith("NNP"):
        return word
    if pos.startswith("V") or pos == "MD":
        return lemmatize_verb(word)
    if pos.startswith("N"):
        return lemmatize_noun(word)
    if pos.startswith("J") or pos.startswith("RB"):
        return lemmatize_adjective(word)
    return word.lower()
