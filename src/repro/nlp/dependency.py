"""Dependency tree structures (Stanford-typed dependencies).

A :class:`DependencyTree` is what the paper calls ``Y`` (Table 1): nodes are
the words of the question, edges carry grammatical relations.  Algorithm 2
walks it top-down to find relation-phrase embeddings; Section 4.1.2's rules
read the edge labels to attach arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.nlp.tokenizer import Token

#: The subject-like grammatical relations of Section 4.1.2.
SUBJECT_RELATIONS = frozenset(
    {"subj", "nsubj", "nsubjpass", "csubj", "csubjpass", "xsubj", "poss"}
)
#: The object-like grammatical relations of Section 4.1.2.
OBJECT_RELATIONS = frozenset({"obj", "pobj", "dobj", "iobj"})


@dataclass(slots=True, eq=False)  # identity equality/hash: nodes are unique
class DependencyNode:
    """One word in the dependency tree."""

    token: Token
    deprel: str = "dep"
    head: "DependencyNode | None" = None
    children: list["DependencyNode"] = field(default_factory=list)

    @property
    def word(self) -> str:
        return self.token.text

    @property
    def lower(self) -> str:
        return self.token.lower

    @property
    def lemma(self) -> str:
        return self.token.lemma

    @property
    def pos(self) -> str:
        return self.token.pos

    @property
    def index(self) -> int:
        return self.token.index

    def __repr__(self) -> str:
        return f"DependencyNode({self.word}/{self.pos}, {self.deprel})"

    def descendants(self) -> Iterator["DependencyNode"]:
        """All nodes strictly below this one (pre-order)."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def subtree(self) -> Iterator["DependencyNode"]:
        """This node plus all descendants (pre-order)."""
        yield self
        yield from self.descendants()

    def is_nominal(self) -> bool:
        return self.pos.startswith("NN") or self.pos in ("PRP", "WP", "WDT", "CD")

    def is_wh(self) -> bool:
        return self.pos in ("WP", "WP$", "WDT", "WRB")

    def phrase(self) -> str:
        """The noun phrase headed by this node: its compound/adjective/
        determinerless modifiers plus itself, in sentence order.

        Possessors are excluded — in "Margaret Thatcher's children" the
        possessor is its own argument, not part of the head's mention.
        """
        keep = {self}
        for child in self.children:
            if child.deprel in ("nn", "amod", "num") and abs(
                child.index - self.index
            ) <= 4:
                keep.add(child)
                for grandchild in child.children:
                    if grandchild.deprel == "nn":
                        keep.add(grandchild)
        ordered = sorted(keep, key=lambda node: node.index)
        return " ".join(node.word for node in ordered)


class DependencyTree:
    """A rooted dependency tree over the tokens of one question."""

    def __init__(self, root: DependencyNode, nodes: list[DependencyNode]):
        self.root = root
        self.nodes = nodes  # in sentence order, punctuation excluded

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[DependencyNode]:
        return iter(self.nodes)

    def node_at(self, index: int) -> DependencyNode | None:
        """The node whose token index is ``index`` (None for punctuation)."""
        for node in self.nodes:
            if node.index == index:
                return node
        return None

    def find_nodes(
        self, word: str | None = None, deprel: str | None = None, pos: str | None = None
    ) -> list[DependencyNode]:
        """Nodes matching all given criteria (word matches lowercased)."""
        found = []
        for node in self.nodes:
            if word is not None and node.lower != word.lower():
                continue
            if deprel is not None and node.deprel != deprel:
                continue
            if pos is not None and node.pos != pos:
                continue
            found.append(node)
        return found

    def edges(self) -> Iterator[tuple[DependencyNode, str, DependencyNode]]:
        """(head, relation, dependent) for every edge."""
        for node in self.nodes:
            if node.head is not None:
                yield (node.head, node.deprel, node)

    def to_text(self) -> str:
        """Indented rendering for debugging and doctests."""
        lines: list[str] = []

        def render(node: DependencyNode, depth: int) -> None:
            lines.append(f"{'  ' * depth}{node.word}/{node.pos} ({node.deprel})")
            for child in sorted(node.children, key=lambda n: n.index):
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def validate(self) -> None:
        """Structural sanity checks: single root, acyclic, consistent links."""
        roots = [node for node in self.nodes if node.head is None]
        if roots != [self.root]:
            raise ValueError(f"tree must have exactly one root, found {len(roots)}")
        seen: set[int] = set()
        for node in self.root.subtree():
            if id(node) in seen:
                raise ValueError("cycle detected in dependency tree")
            seen.add(id(node))
            for child in node.children:
                if child.head is not node:
                    raise ValueError(f"inconsistent head link at {child!r}")
        if len(seen) != len(self.nodes):
            raise ValueError("tree does not span all nodes")


def attach(child: DependencyNode, head: DependencyNode, deprel: str) -> bool:
    """Attach ``child`` under ``head`` with the given relation.

    Refuses (returning False, tree unchanged) when ``head`` lies in
    ``child``'s subtree or equals it: that attachment would create a cycle,
    and every traversal from then on — including the parser's own later
    passes — would recurse forever.  Degenerate word salad can steer the
    rule passes into exactly that ("how by U.S. which me ..."); the node is
    left unattached instead, and :meth:`DependencyTree.validate` reports
    the leftover as a :class:`ParseError`-able structure.
    """
    if head is child:
        return False
    ancestor = head
    while ancestor is not None:
        if ancestor is child:
            return False
        ancestor = ancestor.head
    if child.head is not None:
        child.head.children.remove(child)
    child.head = head
    child.deprel = deprel
    head.children.append(child)
    return True
