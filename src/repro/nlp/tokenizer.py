"""Tokenizer for English questions.

Splits on whitespace and punctuation, keeps hyphenated and dotted proper
names intact ("John F. Kennedy, Jr."), and expands the contractions that
occur in questions ("what's" → "what is").
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(slots=True)
class Token:
    """One surface token with its position in the question."""

    text: str
    index: int
    pos: str = ""
    lemma: str = ""

    @property
    def lower(self) -> str:
        return self.text.lower()

    def __str__(self) -> str:
        return self.text


# A word may contain internal periods (initials like "F.", "U.S."), internal
# hyphens, apostrophes ("O'Brien"), and digits ("MI6", "76ers").
_WORD_RE = re.compile(
    r"""
      \d+(?:\.\d+)?(?![A-Za-z0-9])     # numbers, unless glued to letters (76ers)
    | [A-Za-z](?:\.[A-Za-z])+\.?       # dotted abbreviations: U.S., J.F.K.
    | [A-Za-z][A-Za-z0-9]*\.(?=\s+[A-Z]|\s*$)?  # word possibly ending a sentence
    | 's(?![A-Za-z0-9])                # possessive clitic ("Thatcher|'s")
    | [A-Za-z0-9](?:[A-Za-z0-9\-]|'(?=[A-Za-z0-9]{2}))*   # words; apostrophe only inside (O'Brien)
    | [?.!,;:()"']                     # punctuation
    """,
    re.VERBOSE,
)

_CONTRACTIONS = {
    "what's": ("what", "is"),
    "who's": ("who", "is"),
    "where's": ("where", "is"),
    "when's": ("when", "is"),
    "how's": ("how", "is"),
    "that's": ("that", "is"),
    "it's": ("it", "is"),
    "isn't": ("is", "not"),
    "wasn't": ("was", "not"),
    "aren't": ("are", "not"),
    "doesn't": ("does", "not"),
    "don't": ("do", "not"),
    "didn't": ("did", "not"),
    "can't": ("can", "not"),
    "won't": ("will", "not"),
}

#: Initial-like tokens ("F.") keep the period; other trailing periods split.
_ABBREVIATION_RE = re.compile(r"^[A-Za-z](?:\.[A-Za-z])*\.$")


def tokenize(text: str) -> list[Token]:
    """Tokenize a question into :class:`Token` objects.

    Sentence-final punctuation is kept as its own token; downstream layers
    typically filter it out (the dependency parser ignores it).
    """
    raw: list[str] = []
    for piece in text.split():
        lowered = piece.lower().rstrip("?.!,")
        trailing = piece[len(piece.rstrip("?.!,")):]
        if lowered in _CONTRACTIONS:
            first, second = _CONTRACTIONS[lowered]
            if piece[0].isupper():
                first = first.capitalize()
            raw.append(first)
            raw.append(second)
            raw.extend(trailing)
            continue
        for match in _WORD_RE.finditer(piece):
            word = match.group(0)
            # "Kennedy." → "Kennedy" + "." unless it is an abbreviation.
            if word.endswith(".") and len(word) > 2 and not _ABBREVIATION_RE.match(word):
                raw.append(word[:-1])
                raw.append(".")
            else:
                raw.append(word)
    return [Token(text=t, index=i) for i, t in enumerate(raw)]


def detokenize(tokens: list[Token]) -> str:
    """Human-readable join of tokens (spaces except before punctuation)."""
    parts: list[str] = []
    for token in tokens:
        if token.text in "?.!,;:" and parts:
            parts[-1] += token.text
        else:
            parts.append(token.text)
    return " ".join(parts)
