"""NLP substrate: tokenizer, POS tagger, dependency parser for questions.

The paper uses the Stanford parser as a black box to obtain a dependency
tree (Section 4.1).  This package is the from-scratch equivalent for the
benchmark's question English: a tokenizer, a lexicon + suffix-rule POS
tagger, a rule-based lemmatizer, and a deterministic dependency parser that
emits Stanford-typed dependencies (nsubj, nsubjpass, dobj, pobj, poss,
prep, det, ...) — exactly the relations Section 4.1.2's argument-finding
rules inspect.

    from repro.nlp import parse_question

    tree = parse_question("Who was married to an actor that played in Philadelphia?")
    tree.root.word            # 'married'
    tree.find_nodes(deprel="nsubjpass")
"""

from repro.nlp.tokenizer import Token, tokenize
from repro.nlp.tagger import PosTagger, tag
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.dependency import DependencyNode, DependencyTree
from repro.nlp.dep_parser import DependencyParser, parse_question
from repro.nlp.questions import (
    AggregationKind,
    QuestionAnalysis,
    QuestionType,
    analyze_question,
)

__all__ = [
    "Token",
    "tokenize",
    "PosTagger",
    "tag",
    "lemmatize",
    "DependencyNode",
    "DependencyTree",
    "DependencyParser",
    "parse_question",
    "AggregationKind",
    "QuestionAnalysis",
    "QuestionType",
    "analyze_question",
]
