"""Deterministic dependency parser for English questions.

The paper obtains its dependency tree ``Y`` from the Stanford parser
(Section 4.1); this module is the from-scratch stand-in.  It is a
multi-pass rule parser specialised for question English:

1. **NP chunking** — determiners, adjectives, numbers, and noun compounds
   attach to the head noun of each maximal nominal run (``det``, ``amod``,
   ``num``, ``nn``, ``poss``).
2. **Clause segmentation** — relative clauses open at a relative pronoun
   that follows a noun (``that/who/which``) and at reduced passives
   (a participle directly after a noun: "movies *directed by* Coppola").
3. **Per-clause parsing** — auxiliary/copula identification, subject
   attachment (``nsubj``/``nsubjpass``, including subject–aux inversion),
   object attachment (``dobj``/``iobj``), prepositional phrases (``prep`` +
   ``pobj``, attached to the nearest preceding verb or noun head, with
   fronted and stranded prepositions resolved against the wh phrase), and
   verb coordination (``cc``/``conj``).
4. **Assembly** — relative clause roots attach as ``rcmod``/``partmod`` to
   their governing noun; any stray node attaches to the root as ``dep`` so
   the tree always spans the sentence.

The emitted relation inventory matches what Section 4.1.2's argument rules
consume: subject-like (nsubj, nsubjpass, poss, ...) and object-like (dobj,
pobj, iobj) labels.
"""

from __future__ import annotations

from repro.exceptions import ParseError
from repro.nlp.dependency import DependencyNode, DependencyTree, attach
from repro.nlp.tagger import tag
from repro.nlp.tokenizer import Token

_NOMINAL_TAGS = {"NN", "NNS", "NNP", "NNPS"}
_VERB_TAGS = {"VB", "VBP", "VBZ", "VBD", "VBN", "VBG"}
_BE_LEMMAS = {"be"}
_AUX_LEMMAS = {"be", "do", "have"}


class _Clause:
    """A contiguous span of nodes parsed as one clause."""

    def __init__(self, nodes: list[DependencyNode], kind: str, governor=None):
        self.nodes = nodes
        self.kind = kind  # "main" | "relative" | "reduced"
        self.governor: DependencyNode | None = governor  # noun for relatives
        self.root: DependencyNode | None = None


class DependencyParser:
    """Rule-based dependency parser for questions.  Stateless."""

    def parse(self, question: str | list[Token]) -> DependencyTree:
        """Parse a question string (or pre-tagged tokens) into a tree."""
        tokens = tag(question) if isinstance(question, str) else question
        nodes = [DependencyNode(token) for token in tokens if token.pos not in (".", ",")]
        if not nodes:
            raise ParseError(f"no parsable tokens in question: {question!r}")

        self._chunk_noun_phrases(nodes)
        clauses = self._segment_clauses(nodes)
        for clause in clauses:
            self._parse_clause(clause)

        root = self._assemble(clauses, nodes)
        tree = DependencyTree(root, nodes)
        try:
            tree.validate()
        except ValueError as error:
            # Inputs outside the question grammar can defeat the attachment
            # rules; surface a ParseError so callers classify the failure.
            raise ParseError(f"could not parse {question!r}: {error}") from error
        return tree

    # ------------------------------------------------------------------ #
    # Pass 1: NP chunking
    # ------------------------------------------------------------------ #

    def _chunk_noun_phrases(self, nodes: list[DependencyNode]) -> None:
        i = 0
        while i < len(nodes):
            if not self._starts_np(nodes, i):
                i += 1
                continue
            j = i
            while j < len(nodes) and self._continues_np(nodes, i, j):
                j += 1
            chunk = nodes[i:j]
            self._attach_chunk(chunk)
            i = j

    def _attach_chunk(self, chunk: list[DependencyNode]) -> None:
        """Internal attachments of one NP chunk.

        A possessive clitic splits the chunk: "Margaret Thatcher 's
        children" attaches Thatcher →poss→ children (the paper's
        subject-like ``poss`` relation) with the clitic as its marker.
        """
        clitic_index = next(
            (k for k, node in enumerate(chunk) if node.pos == "POS"), None
        )
        if clitic_index is not None and 0 < clitic_index < len(chunk) - 1:
            possessor_part = chunk[:clitic_index]
            head_part = chunk[clitic_index + 1 :]
            possessor = self._np_head(possessor_part)
            head = self._np_head(head_part)
            if possessor is not None and head is not None:
                self._attach_chunk(possessor_part)
                self._attach_chunk(head_part)
                attach(possessor, head, "poss")
                attach(chunk[clitic_index], possessor, "possessive")
                return
        head = self._np_head(chunk)
        if head is not None:
            for node in chunk:
                if node is head:
                    continue
                attach(node, head, self._np_relation(node))

    @staticmethod
    def _starts_np(nodes: list[DependencyNode], i: int) -> bool:
        pos = nodes[i].pos
        if pos in ("DT", "PRP$", "JJ", "JJR", "JJS", "CD") or pos in _NOMINAL_TAGS:
            # "that" as a relative pronoun is not an NP start; the tagger
            # already retagged relative "that" to WDT.
            return True
        if pos == "WDT" and i + 1 < len(nodes) and nodes[i + 1].pos in _NOMINAL_TAGS:
            return True  # "which movies"
        return False

    @staticmethod
    def _continues_np(nodes: list[DependencyNode], start: int, j: int) -> bool:
        if j == start:
            return True
        pos = nodes[j].pos
        if pos in _NOMINAL_TAGS or pos == "CD":
            return True
        # A possessive clitic continues the chunk when a nominal follows:
        # "Margaret Thatcher 's children".
        if pos == "POS":
            return any(later.pos in _NOMINAL_TAGS for later in nodes[j + 1 :])
        # Determiners only open an NP; one appearing mid-run starts a new
        # chunk ("Michelle Obama | the wife").
        if pos in ("DT", "PRP$", "WDT"):
            return False
        # Adjectives continue only if a nominal follows eventually.
        if pos in ("JJ", "JJR", "JJS"):
            return any(later.pos in _NOMINAL_TAGS for later in nodes[j + 1 :])
        return False

    @staticmethod
    def _np_head(chunk: list[DependencyNode]) -> DependencyNode | None:
        nominals = [node for node in chunk if node.pos in _NOMINAL_TAGS]
        if nominals:
            return nominals[-1]
        return None

    @staticmethod
    def _np_relation(node: DependencyNode) -> str:
        if node.pos in ("DT", "WDT"):
            return "det"
        if node.pos == "PRP$":
            return "poss"
        if node.pos in ("JJ", "JJR", "JJS"):
            return "amod"
        if node.pos == "CD":
            return "num"
        return "nn"

    # ------------------------------------------------------------------ #
    # Pass 2: clause segmentation
    # ------------------------------------------------------------------ #

    def _segment_clauses(self, nodes: list[DependencyNode]) -> list[_Clause]:
        top_level = [node for node in nodes if node.head is None]
        clauses: list[_Clause] = []
        current: list[DependencyNode] = []
        current_kind = "main"
        current_governor: DependencyNode | None = None

        def flush() -> None:
            nonlocal current
            if current:
                clauses.append(_Clause(current, current_kind, current_governor))
                current = []

        previous: DependencyNode | None = None
        for node in top_level:
            boundary = self._clause_boundary(node, previous, current)
            if boundary is not None:
                flush()
                current_kind = boundary
                current_governor = previous
            current.append(node)
            previous = node if node.is_nominal() or node.pos in _VERB_TAGS else previous
        flush()
        return clauses

    @staticmethod
    def _clause_boundary(
        node: DependencyNode,
        previous: DependencyNode | None,
        current: list[DependencyNode],
    ) -> str | None:
        if previous is None:
            return None
        # Relative pronoun after a nominal: "an actor that played ..."
        if (
            node.pos in ("WDT", "WP")
            and previous.is_nominal()
        ):
            return "relative"
        # Reduced passive relative: participle directly after a nominal —
        # unless a be-auxiliary is still waiting for its participle in this
        # clause ("In which city *was* the queen Juliana *buried*?").
        if node.pos == "VBN" and previous.is_nominal():
            pending_be = any(
                n.lemma == "be" for n in current
            ) and not any(n.pos in ("VBN", "VBG") for n in current)
            if not pending_be:
                return "reduced"
        return None

    # ------------------------------------------------------------------ #
    # Pass 3: per-clause parsing
    # ------------------------------------------------------------------ #

    def _parse_clause(self, clause: _Clause) -> None:
        nodes = clause.nodes
        # Bind preposition objects first so they never masquerade as clause
        # subjects ("Which books [by Kerouac] were published ...").
        self._prebind_pobj(nodes)
        verb_groups = self._find_verb_groups(nodes)
        if not verb_groups:
            clause.root = self._nominal_only_root(nodes)
            self._attach_prepositions(clause, nodes, clause.root)
            self._attach_leftovers(clause, clause.root)
            return

        first_group = verb_groups[0]
        main_verb, auxes, passive, copular = first_group
        if copular:
            clause.root = self._parse_copular(clause, main_verb, auxes)
        else:
            clause.root = self._parse_verbal(clause, main_verb, auxes, passive)

        # Coordinated verb groups: "born in Vienna and died in Berlin".
        for group in verb_groups[1:]:
            conj_verb, conj_auxes, conj_passive, _ = group
            for aux in conj_auxes:
                attach(aux, conj_verb, "auxpass" if conj_passive else "aux")
            attach(conj_verb, clause.root, "conj")
            cc = self._nearest_unattached(clause, conj_verb.index, pos="CC", before=True)
            if cc is not None:
                attach(cc, clause.root, "cc")
            self._attach_objects_after(clause, conj_verb)

        self._attach_prepositions(clause, nodes, clause.root)
        self._resolve_wh_remnant(clause)
        self._attach_leftovers(clause, clause.root)

    # -- verb group discovery ------------------------------------------- #

    def _find_verb_groups(self, nodes: list[DependencyNode]):
        """Group clause verbs into (main, auxiliaries, passive?, copular?).

        A group is a chain of auxiliaries plus one content verb; groups
        after the first are coordinations.
        """
        groups = []
        verbs = [n for n in nodes if (n.pos in _VERB_TAGS or n.pos == "MD") and n.head is None]
        if not verbs:
            return groups
        used: set[int] = set()
        i = 0
        while i < len(verbs):
            auxes: list[DependencyNode] = []
            main: DependencyNode | None = None
            passive = False
            while i < len(verbs):
                verb = verbs[i]
                remaining = verbs[i + 1 :]
                if verb.pos == "MD":
                    is_aux = bool(remaining)
                elif verb.lemma == "do":
                    # Do-support: aux whenever any verb follows ("does ...
                    # have", "did ... star").
                    is_aux = bool(remaining)
                elif verb.lemma == "be":
                    is_aux = any(
                        r.lemma not in _AUX_LEMMAS or r.pos == "VBN" for r in remaining
                    )
                elif verb.lemma == "have":
                    is_aux = any(r.pos == "VBN" for r in remaining)
                else:
                    is_aux = False
                if is_aux:
                    auxes.append(verb)
                    i += 1
                    continue
                main = verb
                i += 1
                break
            if main is None:
                # Clause whose only verb material is "be": copular.
                if auxes:
                    main = auxes[-1]
                    auxes = auxes[:-1]
                else:
                    break
            passive = main.pos == "VBN" and any(a.lemma == "be" for a in auxes)
            copular = main.lemma == "be"
            groups.append((main, auxes, passive, copular))
            # A following CC + verb starts a coordinated group (handled by
            # the loop); anything else would also be grouped, which is the
            # desired behaviour for chained relatives.
        return groups

    # -- verbal clauses --------------------------------------------------- #

    def _parse_verbal(
        self,
        clause: _Clause,
        main_verb: DependencyNode,
        auxes: list[DependencyNode],
        passive: bool,
    ) -> DependencyNode:
        nodes = clause.nodes
        for aux in auxes:
            relation = "auxpass" if passive and aux.lemma == "be" else "aux"
            attach(aux, main_verb, relation)

        subject = self._find_subject(clause, main_verb, auxes)
        if subject is not None:
            attach(subject, main_verb, "nsubjpass" if passive else "nsubj")

        self._attach_objects_after(clause, main_verb)

        # Wh adverbs modify the verb: "When did Michael Jackson die?"
        for node in nodes:
            if node.head is None and node.pos == "WRB" and node is not main_verb:
                attach(node, main_verb, "advmod")
        return main_verb

    def _find_subject(
        self,
        clause: _Clause,
        main_verb: DependencyNode,
        auxes: list[DependencyNode],
    ) -> DependencyNode | None:
        nodes = clause.nodes
        if clause.kind == "relative":
            # The relative pronoun is the subject unless it is fronted as an
            # object ("the book that X wrote"): subject-aux inversion or a
            # nominal between pronoun and verb signals object relativisation.
            pronoun = nodes[0] if nodes and nodes[0].pos in ("WDT", "WP") else None
            if pronoun is not None:
                between = [
                    n
                    for n in nodes
                    if pronoun.index < n.index < main_verb.index
                    and n.head is None
                    and n.is_nominal()
                ]
                if not between:
                    return pronoun
                # An intervening nominal is the true subject.
                return between[-1]
            return None

        first_aux_index = min((a.index for a in auxes), default=main_verb.index)
        candidates = [
            n for n in nodes if n.head is None and n.is_nominal() and n is not main_verb
        ]
        # Subject-aux inversion: "did Antonio Banderas star".
        between = [n for n in candidates if first_aux_index < n.index < main_verb.index]
        if auxes and between:
            return between[-1]
        before = [n for n in candidates if n.index < first_aux_index]
        if before:
            return before[-1]
        if not auxes:
            pre_verbal = [n for n in candidates if n.index < main_verb.index]
            if pre_verbal:
                return pre_verbal[-1]
        return None

    def _attach_objects_after(self, clause: _Clause, verb: DependencyNode) -> None:
        """NPs directly after the verb (not behind a preposition) become
        iobj/dobj: 'Give me all movies ...'."""
        nodes = clause.nodes
        post: list[DependencyNode] = []
        blocked = False
        for node in nodes:
            if node.index <= verb.index:
                continue
            if node.pos in ("IN", "TO"):
                blocked = True
                continue
            if node.pos in _VERB_TAGS or node.pos == "CC":
                break
            if node.head is None and node.is_nominal() and not blocked:
                post.append(node)
        if len(post) >= 2 and post[0].pos == "PRP":
            attach(post[0], verb, "iobj")
            attach(post[1], verb, "dobj")
        elif post:
            attach(post[0], verb, "dobj")

    # -- copular clauses --------------------------------------------------- #

    def _parse_copular(
        self, clause: _Clause, copula: DependencyNode, auxes: list[DependencyNode]
    ) -> DependencyNode:
        nodes = clause.nodes
        free = [n for n in nodes if n.head is None and n is not copula]
        nominals_before = [n for n in free if n.is_nominal() and n.index < copula.index]
        nominals_after = [n for n in free if n.is_nominal() and n.index > copula.index]
        adjectives = [n for n in free if n.pos in ("JJ", "JJR", "JJS")]

        root: DependencyNode
        subject: DependencyNode | None = None

        if adjectives and any(n.pos == "WRB" for n in free):
            # "How tall is Michael Jordan?" → root tall, advmod how.
            root = adjectives[0]
            wh = next(n for n in free if n.pos == "WRB")
            attach(wh, root, "advmod")
            subject = nominals_after[-1] if nominals_after else (
                nominals_before[-1] if nominals_before else None
            )
        elif nominals_before and nominals_after:
            # "Who is the mayor of Berlin?" → root mayor, nsubj Who.
            # Prefer the wh phrase as subject.
            wh_before = [n for n in nominals_before if n.is_wh() or any(
                c.pos == "WDT" for c in n.children
            )]
            if wh_before:
                subject = wh_before[-1]
                root = nominals_after[0]
            else:
                # Declarative order: "Sean Parnell is the governor of ?state"
                subject = nominals_before[-1]
                root = nominals_after[0]
        elif nominals_after:
            # Yes/no copular: "Is Michelle Obama the wife of Barack Obama?"
            if len(nominals_after) >= 2:
                subject = nominals_after[0]
                root = nominals_after[1]
            else:
                root = nominals_after[0]
        elif nominals_before:
            root = nominals_before[-1]
            if len(nominals_before) >= 2:
                subject = nominals_before[0]
        else:
            root = copula
        if root is not copula:
            attach(copula, root, "cop")
        for aux in auxes:
            attach(aux, root, "aux")
        if subject is not None and subject is not root:
            attach(subject, root, "nsubj")
        return root

    # -- nominal-only clauses ----------------------------------------------- #

    @staticmethod
    def _nominal_only_root(nodes: list[DependencyNode]) -> DependencyNode:
        free = [n for n in nodes if n.head is None]
        nominals = [n for n in free if n.is_nominal()]
        if nominals:
            return nominals[0]
        if free:
            return free[0]
        raise ParseError("clause has no attachable nodes")

    # -- prepositional phrases ----------------------------------------------- #

    def _prebind_pobj(self, nodes: list[DependencyNode]) -> None:
        """Attach each preposition's object without yet siting the
        preposition itself (the site depends on the clause parse)."""
        for position, node in enumerate(nodes):
            if node.head is not None or node.pos not in ("IN", "TO"):
                continue
            pobj = self._following_nominal(nodes, position)
            if pobj is not None:
                attach(pobj, node, "pobj")

    def _attach_prepositions(
        self, clause: _Clause, nodes: list[DependencyNode], root: DependencyNode
    ) -> None:
        for position, node in enumerate(nodes):
            if node.head is not None or node.pos not in ("IN", "TO"):
                continue
            # Attachment site: nearest preceding attachable head.
            site = self._preceding_head(nodes, position, root)
            if site is node:
                continue  # a bare preposition clause: leave it as the root
            attach(node, site, "prep")
            if not any(child.deprel == "pobj" for child in node.children):
                pobj = self._following_nominal(nodes, position)
                if pobj is not None:
                    attach(pobj, node, "pobj")

    def _preceding_head(
        self, nodes: list[DependencyNode], position: int, root: DependencyNode
    ) -> DependencyNode:
        for candidate in reversed(nodes[:position]):
            if candidate.pos in _VERB_TAGS and candidate.lemma not in _AUX_LEMMAS:
                return candidate
            if candidate.pos in _VERB_TAGS and candidate.deprel in ("cop",):
                continue
            if candidate.is_nominal() and candidate.pos != "PRP":
                # Skip nominals that hang below the preposition's own
                # position (cannot happen before it) — any attached or
                # unattached nominal is a valid site.
                return candidate
        return root

    @staticmethod
    def _following_nominal(
        nodes: list[DependencyNode], position: int
    ) -> DependencyNode | None:
        for candidate in nodes[position + 1 :]:
            if candidate.pos in ("IN", "TO") or candidate.pos in _VERB_TAGS:
                return None
            if candidate.head is None and candidate.is_nominal():
                return candidate
        return None

    def _resolve_wh_remnant(self, clause: _Clause) -> None:
        """Fronted wh phrases left unattached become the filler of a
        stranded preposition or the object of the main verb.

        "Which cities does the Weser flow through?" → pobj(through, cities)
        "What did Bill Gates found?" → dobj(found, What)
        """
        if clause.root is None:
            return
        verb_positions = [
            n.index for n in clause.nodes if n.pos in _VERB_TAGS or n.pos == "MD"
        ]
        first_verb = min(verb_positions, default=-1)
        remnants = [
            n
            for n in clause.nodes
            if n.head is None
            and n is not clause.root
            and n.is_nominal()
            and (
                n.is_wh()
                or any(c.pos == "WDT" for c in n.children)
                # Any fronted nominal left of the verb group is a filler:
                # "How many students does ... have?"
                or n.index < first_verb
            )
        ]
        if not remnants:
            return
        remnant = remnants[0]
        stranded = [
            n
            for n in clause.root.subtree()
            if n.pos in ("IN", "TO") and not any(c.deprel == "pobj" for c in n.children)
        ]
        if stranded:
            attach(remnant, stranded[-1], "pobj")
        elif clause.root.pos in _VERB_TAGS and not any(
            c.deprel == "dobj" for c in clause.root.children
        ):
            attach(remnant, clause.root, "dobj")
        else:
            attach(remnant, clause.root, "dep")

    # -- leftovers ------------------------------------------------------- #

    @staticmethod
    def _nearest_unattached(
        clause: _Clause, index: int, pos: str, before: bool
    ) -> DependencyNode | None:
        candidates = [
            n
            for n in clause.nodes
            if n.head is None and n.pos == pos and ((n.index < index) if before else (n.index > index))
        ]
        if not candidates:
            return None
        return candidates[-1] if before else candidates[0]

    @staticmethod
    def _attach_leftovers(clause: _Clause, root: DependencyNode) -> None:
        by_index = {node.index: node for node in clause.nodes}
        for node in clause.nodes:
            if node.head is not None or node is root:
                continue
            # Title apposition: an unattached name NP right after an attached
            # nominal ("the book | The Pillars of the Earth").
            if node.is_nominal():
                left_index = min(n.index for n in node.subtree()) - 1
                left = by_index.get(left_index)
                if left is not None and left.is_nominal():
                    site = left if left.head is None or not left.head.is_nominal() else left
                    if site.head is not None and site.deprel in ("det", "amod", "nn", "num"):
                        site = site.head
                    if site is not node and site.head is not None:
                        attach(node, site, "appos")
                        continue
            relation = "advmod" if node.pos in ("RB", "WRB") else "dep"
            attach(node, root, relation)

    # ------------------------------------------------------------------ #
    # Pass 4: assembly
    # ------------------------------------------------------------------ #

    def _assemble(
        self, clauses: list[_Clause], nodes: list[DependencyNode]
    ) -> DependencyNode:
        main = clauses[0]
        if main.root is None:
            raise ParseError("main clause did not produce a root")
        for clause in clauses[1:]:
            if clause.root is None:
                continue
            governor = clause.governor if clause.governor is not None else main.root
            relation = "partmod" if clause.kind == "reduced" else "rcmod"
            attach(clause.root, governor, relation)
        # Safety net: anything still floating attaches to the main root.
        for node in nodes:
            if node.head is None and node is not main.root:
                attach(node, main.root, "dep")
        return main.root


_DEFAULT_PARSER = DependencyParser()


def parse_question(question: str) -> DependencyTree:
    """Parse a natural language question into a dependency tree."""
    return _DEFAULT_PARSER.parse(question)
