"""Question-level analysis: wh-type, answer form, aggregation detection.

The paper's failure analysis (Table 10) singles out *aggregation questions*
("Who is the youngest player in the Premier League?") as a class its method
cannot answer — they need SPARQL ``ORDER BY DESC(...) LIMIT 1`` style
post-processing.  This module detects that class (plus yes/no and counting
questions) so the pipeline and the evaluation harness can classify outcomes
the way Table 10 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.nlp import lexicon
from repro.nlp.tagger import tag
from repro.nlp.tokenizer import Token


class QuestionType(Enum):
    """What kind of answer the question expects."""

    ENTITY = "entity"          # who/what/which X
    PLACE = "place"            # where
    TIME = "time"              # when
    QUANTITY = "quantity"      # how many / how much / how tall
    YESNO = "yesno"            # is/are/did/does ...
    LIST = "list"              # give me / list / show all ...


class AggregationKind(Enum):
    NONE = "none"
    SUPERLATIVE = "superlative"  # youngest, largest, most
    COUNT = "count"              # how many


@dataclass(frozen=True, slots=True)
class QuestionAnalysis:
    """The surface-level classification of one question."""

    question_type: QuestionType
    aggregation: AggregationKind
    wh_word: str | None

    @property
    def is_aggregation(self) -> bool:
        return self.aggregation is not AggregationKind.NONE


_IMPERATIVE_OPENERS = {"give", "list", "show", "name", "tell"}
_YESNO_OPENERS = (
    lexicon.BE_FORMS | lexicon.DO_FORMS | lexicon.HAVE_FORMS | lexicon.MODALS
)


def analyze_question(question: str | list[Token]) -> QuestionAnalysis:
    """Classify a question by its expected answer form and aggregation."""
    tokens = tag(question) if isinstance(question, str) else question
    words = [t.lower for t in tokens if t.pos not in (".", ",")]
    if not words:
        return QuestionAnalysis(QuestionType.ENTITY, AggregationKind.NONE, None)

    aggregation = AggregationKind.NONE
    if any(word in lexicon.SUPERLATIVES for word in words):
        aggregation = AggregationKind.SUPERLATIVE
    if len(words) >= 2 and words[0] == "how" and words[1] in ("many", "much"):
        aggregation = AggregationKind.COUNT

    wh_word = next(
        (
            word
            for word in words
            if word in lexicon.WH_PRONOUNS
            or word in lexicon.WH_ADVERBS
            or word in lexicon.WH_DETERMINERS
            or word in lexicon.WH_POSSESSIVE
        ),
        None,
    )

    first = words[0]
    if first in _IMPERATIVE_OPENERS:
        question_type = QuestionType.LIST
    elif first == "where":
        question_type = QuestionType.PLACE
    elif first == "when":
        question_type = QuestionType.TIME
    elif first == "how":
        question_type = QuestionType.QUANTITY
    elif wh_word is not None:
        question_type = QuestionType.ENTITY
    elif first in _YESNO_OPENERS:
        question_type = QuestionType.YESNO
    else:
        question_type = QuestionType.ENTITY
    return QuestionAnalysis(question_type, aggregation, wh_word)
