"""Lexicon + rule POS tagger for question English.

Two passes: a lexical pass assigns each token its most likely Penn tag from
the lexicon / morphology, then a contextual pass fixes the ambiguities that
matter for parsing questions (that/WDT vs DT vs IN, VBD vs VBN after an
auxiliary or in reduced relatives, noun/verb homographs like "play",
"name", "star").
"""

from __future__ import annotations

from repro.nlp import lexicon
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.tokenizer import Token, tokenize

_BE_TAGS = {
    "be": "VB", "am": "VBP", "is": "VBZ", "are": "VBP", "was": "VBD",
    "were": "VBD", "been": "VBN", "being": "VBG",
}
_HAVE_TAGS = {"have": "VBP", "has": "VBZ", "had": "VBD", "having": "VBG"}
_DO_TAGS = {"do": "VBP", "does": "VBZ", "did": "VBD", "done": "VBN",
            "doing": "VBG"}

_NOUN_TAGS = {"NN", "NNS", "NNP", "NNPS"}
_VERB_TAGS = {"VB", "VBP", "VBZ", "VBD", "VBN", "VBG"}

#: Verb bases that are also common nouns; resolved by context.
_NOUN_VERB_HOMOGRAPHS = (lexicon.VERB_BASES & lexicon.NOUNS) | {"star", "play"}


class PosTagger:
    """Deterministic POS tagger; stateless, safe to share."""

    def tag(self, tokens: list[Token]) -> list[Token]:
        """Assign ``pos`` and ``lemma`` to every token, in place."""
        for i, token in enumerate(tokens):
            token.pos = self._lexical_tag(token, is_first=(i == 0))
        self._contextual_pass(tokens)
        for token in tokens:
            token.lemma = lemmatize(token.text, token.pos)
        return tokens

    # ------------------------------------------------------------------ #
    # Pass 1: lexical
    # ------------------------------------------------------------------ #

    def _lexical_tag(self, token: Token, is_first: bool) -> str:
        text = token.text
        lowered = text.lower()

        if text in "?.!":
            return "."
        if text in ",;:()\"'":
            return ","
        if lowered == "'s":
            return "POS"  # possessive clitic
        if text.replace(".", "").replace("-", "").isdigit():
            return "CD"

        closed = self._closed_class_tag(lowered)
        if closed is not None:
            return closed

        open_tag = self._open_class_tag(lowered)
        if open_tag is not None:
            # Capitalized mid-sentence words are names even when the
            # lowercase form is a common word ("Prodigy", "Premier League").
            if text[0].isupper() and not is_first:
                return "NNP"
            return open_tag

        if text[0].isupper():
            return "NNP"
        return self._suffix_tag(lowered)

    @staticmethod
    def _closed_class_tag(lowered: str) -> str | None:
        if lowered in lexicon.WH_PRONOUNS:
            return "WP"
        if lowered in lexicon.WH_POSSESSIVE:
            return "WP$"
        if lowered in lexicon.WH_DETERMINERS:
            return "WDT"
        if lowered in lexicon.WH_ADVERBS:
            return "WRB"
        if lowered == "that":
            return "DT"  # refined contextually
        if lowered in lexicon.DETERMINERS:
            return "DT"
        if lowered == "to":
            return "TO"
        if lowered in lexicon.PREPOSITIONS:
            return "IN"
        if lowered in lexicon.CONJUNCTIONS:
            return "CC"
        if lowered in lexicon.MODALS:
            return "MD"
        if lowered in _BE_TAGS:
            return _BE_TAGS[lowered]
        if lowered in _HAVE_TAGS:
            return _HAVE_TAGS[lowered]
        if lowered in _DO_TAGS:
            return _DO_TAGS[lowered]
        if lowered in lexicon.NEGATION:
            return "RB"
        if lowered in lexicon.POSSESSIVE_PRONOUNS:
            return "PRP$"
        if lowered in lexicon.PERSONAL_PRONOUNS:
            return "PRP"
        if lowered in lexicon.EXISTENTIAL:
            return "EX"
        return None

    @staticmethod
    def _open_class_tag(lowered: str) -> str | None:
        if lowered in lexicon.IRREGULAR_VERBS:
            return lexicon.IRREGULAR_VERBS[lowered][1]
        if lowered in lexicon.IRREGULAR_NOUN_PLURALS:
            return "NNS"
        if lowered in lexicon.SUPERLATIVES:
            return "JJS"
        if lowered in lexicon.COMPARATIVES:
            return "JJR"
        if lowered in lexicon.ADJECTIVES:
            return "JJ"
        if lowered in lexicon.ADVERBS:
            return "RB"
        if lowered in lexicon.NOUNS:
            return "NN"
        if lowered in lexicon.VERB_BASES:
            return "VB"
        # Inflections of known verb bases.
        base = lemmatize(lowered, "VB")
        if base in lexicon.VERB_BASES and base != lowered:
            if lowered.endswith("ing"):
                return "VBG"
            if lowered.endswith(("ed", "d")) and base != lowered:
                return "VBD"
            if lowered.endswith("s"):
                return "VBZ"
        # Plurals of known nouns.
        noun_base = lemmatize(lowered, "NN")
        if noun_base in lexicon.NOUNS and noun_base != lowered:
            return "NNS"
        return None

    @staticmethod
    def _suffix_tag(lowered: str) -> str:
        if lowered.endswith("ly"):
            return "RB"
        if lowered.endswith("ing") and len(lowered) > 4:
            return "VBG"
        if lowered.endswith("ed") and len(lowered) > 3:
            return "VBN"
        if lowered.endswith("est") and len(lowered) > 4:
            return "JJS"
        if lowered.endswith(("ous", "ful", "ive", "ible", "able", "al", "ic")):
            return "JJ"
        if lowered.endswith("s") and not lowered.endswith("ss") and len(lowered) > 2:
            return "NNS"
        return "NN"

    # ------------------------------------------------------------------ #
    # Pass 2: contextual
    # ------------------------------------------------------------------ #

    def _contextual_pass(self, tokens: list[Token]) -> None:
        has_do_aux = any(t.lower in ("do", "does", "did") for t in tokens)
        for i, token in enumerate(tokens):
            prev = tokens[i - 1] if i > 0 else None
            nxt = tokens[i + 1] if i + 1 < len(tokens) else None

            if token.lower == "that":
                token.pos = self._disambiguate_that(prev, nxt)
                continue

            # her: PRP$ before a nominal, PRP otherwise.
            if token.lower == "her":
                token.pos = "PRP$" if nxt is not None and nxt.pos in _NOUN_TAGS else "PRP"
                continue

            # Noun/verb homographs: determiner or adjective context → noun;
            # subject (noun phrase) immediately before → verb.
            if token.lower in _NOUN_VERB_HOMOGRAPHS and token.pos in ("VB", "NN"):
                if prev is not None and prev.pos in ("DT", "JJ", "JJS", "JJR", "PRP$", "CD"):
                    token.pos = "NN"
                elif prev is not None and (prev.pos in _NOUN_TAGS or prev.pos == "PRP"):
                    if has_do_aux:
                        token.pos = "VB"
                    elif any(t.lower in _BE_TAGS for t in tokens[:i]):
                        # Copular frame ("What is the birth name ..."): the
                        # homograph after a noun is a compound head, not a
                        # second verb.
                        token.pos = "NN"
                    else:
                        token.pos = "VBP"
                continue

            # -s forms where both a verb and a noun reading exist: "films"
            # is VBZ after a subject ("Tom Cruise films ...") but NNS in a
            # noun phrase ("all Argentine films").
            if token.pos in ("VBZ", "NNS") and self._s_form_ambiguous(token.lower):
                if prev is None:
                    token.pos = "NNS"
                elif prev.pos in ("DT", "JJ", "JJS", "JJR", "PRP$", "CD", "WDT") or (
                    prev.lower in lexicon.DEMONYMS
                ):
                    token.pos = "NNS"
                elif prev.pos in _NOUN_TAGS or prev.pos in ("PRP", "WP"):
                    token.pos = "VBZ"
                continue

            # VBD after a be/have auxiliary is a participle: "was married".
            if token.pos == "VBD" and self._preceded_by_aux(tokens, i):
                token.pos = "VBN"
                continue

            # Reduced passive relative: noun + VBD + "by" → participle
            # ("movies directed by ...", "launch pads operated by NASA").
            if (
                token.pos == "VBD"
                and prev is not None
                and prev.pos in _NOUN_TAGS
                and nxt is not None
                and nxt.lower in ("by", "in", "at", "on", "for")
            ):
                token.pos = "VBN"
                continue

            # A base-form verb right after a do-auxiliary subject chain stays
            # VB; a VBD with a do-auxiliary earlier is actually a base form
            # mis-tagged ("did ... star"), keep as VB for parsing.
            if token.pos == "VBD" and has_do_aux and token.lower in lexicon.VERB_BASES:
                token.pos = "VB"

    @staticmethod
    def _s_form_ambiguous(lowered: str) -> bool:
        """Does an -s form have both a known verb and a known noun base?"""
        if not lowered.endswith("s"):
            return False
        verb_base = lemmatize(lowered, "VB")
        noun_base = lemmatize(lowered, "NN")
        return verb_base in lexicon.VERB_BASES and noun_base in lexicon.NOUNS

    @staticmethod
    def _preceded_by_aux(tokens: list[Token], i: int) -> bool:
        """Is there a be/have auxiliary immediately left, skipping adverbs
        and an intervening subject NP ("was she married")?"""
        j = i - 1
        while j >= 0:
            lowered = tokens[j].lower
            pos = tokens[j].pos
            if lowered in _BE_TAGS or lowered in _HAVE_TAGS:
                return True
            # Skip adverbs and a full subject NP ("was the queen Juliana
            # buried"); anything else (preposition, verb, wh) breaks the
            # auxiliary-participle link.
            if pos in ("RB",) or pos in _NOUN_TAGS or pos in ("DT", "JJ", "PRP", "PRP$", "CD"):
                j -= 1
                continue
            # "of"-PPs occur inside subject NPs: "is the daughter of Bill
            # Clinton married to?" — keep scanning for the auxiliary.
            if lowered == "of":
                j -= 1
                continue
            return False
        return False

    @staticmethod
    def _disambiguate_that(prev: Token | None, nxt: Token | None) -> str:
        # Relative pronoun after a nominal: "an actor that played ..."
        if prev is not None and prev.pos in _NOUN_TAGS:
            return "WDT"
        # Determiner before a nominal: "that movie".
        if nxt is not None and nxt.pos in _NOUN_TAGS | {"JJ"}:
            return "DT"
        return "IN"


_DEFAULT_TAGGER = PosTagger()


def tag(text_or_tokens) -> list[Token]:
    """Tokenize (if given a string) and POS-tag a question."""
    if isinstance(text_or_tokens, str):
        tokens = tokenize(text_or_tokens)
    else:
        tokens = text_or_tokens
    return _DEFAULT_TAGGER.tag(tokens)
