"""Span trees and the recording / no-op tracer pair.

A :class:`Span` is one timed region: name, start/end on an injected
monotonic clock, free-form attributes, child spans.  Spans nest by
with-block structure::

    with tracer.span("evaluation") as span:
        with tracer.span("top_k.search", vertices=3):
            ...
        span.set(matches=5)

The :class:`NoopTracer` keeps the same surface but stores nothing; its
spans still measure their own duration (two clock reads) because the
pipeline's coarse stage timings — ``Answer.understanding_time`` /
``evaluation_time`` — are read off the span even when tracing is off.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.obs.metrics import Metrics, NoopMetrics


@dataclass(slots=True)
class Span:
    """One timed region of work with attributes and child spans."""

    name: str
    start: float
    end: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attributes: object) -> None:
        self.attributes.update(attributes)

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, depth-first."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class _SpanContext:
    """Context manager opening one recorded span on enter."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = Span(self._name, tracer.clock(), attributes=self._attributes)
        if tracer._stack:
            tracer._stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end = self._tracer.clock()
        # Spans are well-nested by construction (with-blocks); the top of
        # the stack is this span even when the body raised.
        self._tracer._stack.pop()
        return False


class Tracer:
    """Records a forest of spans plus a metrics registry.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonic seconds.  Injected so
        tests can drive deterministic timings; defaults to
        :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.metrics = Metrics()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes: object) -> _SpanContext:
        return _SpanContext(self, name, attributes)

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()
        self.metrics.reset()

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """The full trace: span trees plus the metrics snapshot."""
        return {
            "spans": [root.to_dict() for root in self.roots],
            "metrics": self.metrics.snapshot(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def summary(self) -> dict:
        """Aggregated per-span-name wall times plus the metrics snapshot.

        The machine-readable form benchmark runs emit: every span name maps
        to ``{count, total_s, mean_s, max_s}``.
        """
        stats: dict[str, dict] = {}
        for root in self.roots:
            for span in root.walk():
                entry = stats.setdefault(
                    span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
                )
                entry["count"] += 1
                entry["total_s"] += span.duration
                entry["max_s"] = max(entry["max_s"], span.duration)
        for entry in stats.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return {
            "spans": dict(sorted(stats.items())),
            "metrics": self.metrics.snapshot(),
        }

    def render(self) -> str:
        """Human-readable span forest, one line per span."""
        lines: list[str] = []
        for root in self.roots:
            _render_span(root, "", True, lines, is_root=True)
        return "\n".join(lines)


def _render_span(
    span: Span, prefix: str, last: bool, lines: list[str], is_root: bool = False
) -> None:
    attrs = " ".join(
        f"{key}={_render_value(value)}" for key, value in span.attributes.items()
    )
    label = f"{span.name} ({span.duration * 1000:.2f} ms)"
    if attrs:
        label += f"  {attrs}"
    if is_root:
        lines.append(label)
        child_prefix = ""
    else:
        connector = "└─ " if last else "├─ "
        lines.append(prefix + connector + label)
        child_prefix = prefix + ("   " if last else "│  ")
    for position, child in enumerate(span.children):
        _render_span(child, child_prefix, position == len(span.children) - 1, lines)


def _render_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, str):
        return repr(value)
    return str(value)


class _NoopSpan:
    """Measures its own duration, records nothing else."""

    __slots__ = ("_clock", "start", "end")

    def __init__(self, clock):
        self._clock = clock
        self.start = 0.0
        self.end: float | None = None

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        self.start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._clock()
        return False


class NoopTracer:
    """The zero-overhead default: same interface, no recording."""

    enabled = False
    #: Shared empty forest — "the no-op tracer adds no spans" is testable.
    roots: tuple = ()

    __slots__ = ("clock", "metrics")

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.metrics = NoopMetrics()

    def span(self, name: str, **attributes: object) -> _NoopSpan:
        return _NoopSpan(self.clock)

    def reset(self) -> None:
        pass

    def to_dict(self) -> dict:
        return {"spans": [], "metrics": self.metrics.snapshot()}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> dict:
        return {"spans": {}, "metrics": self.metrics.snapshot()}

    def render(self) -> str:
        return ""
