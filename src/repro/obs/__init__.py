"""Observability: spans, counters, histograms, trace export.

The instrument-first substrate every perf PR measures itself against.
Two implementations share one interface:

* :class:`Tracer` — records a tree of :class:`Span` objects (wall time via
  an injected monotonic clock, nested by with-block structure, arbitrary
  attributes) plus a :class:`Metrics` registry of counters and histograms.
* :class:`NoopTracer` — the zero-overhead default.  ``span()`` still
  measures its own duration (the pipeline's coarse stage timings read it),
  but records nothing: no span objects, no attributes, no metric values.

Components resolve their tracer lazily at the entry point of their main
method: an explicitly injected tracer wins, otherwise the process-wide
default (:func:`get_tracer`, a no-op unless :func:`set_tracer` /
:func:`use_tracer` installed a recording one).  See docs/observability.md
for the span-name and counter glossary and the JSON schema.

Single-threaded by design, like the rest of the reproduction: the span
stack is plain instance state.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import Metrics, MetricsLike, NoopMetrics
from repro.obs.tracer import NoopTracer, Span, Tracer

#: The process-wide zero-overhead default.
NOOP = NoopTracer()

_default: Tracer | NoopTracer = NOOP


def get_tracer() -> Tracer | NoopTracer:
    """The process-wide default tracer (a no-op unless one was installed)."""
    return _default


def set_tracer(tracer: Tracer | NoopTracer | None) -> Tracer | NoopTracer:
    """Install ``tracer`` as the process-wide default; returns the previous
    one so callers can restore it.  ``None`` reinstalls the no-op."""
    global _default
    previous = _default
    _default = tracer if tracer is not None else NOOP
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NoopTracer):
    """Scoped :func:`set_tracer`: install for the with-block, then restore."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


__all__ = [
    "Metrics",
    "MetricsLike",
    "NOOP",
    "NoopMetrics",
    "NoopTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
