"""Counter and histogram registries for the observability layer.

Counters are monotonically increasing numbers ("seeds_explored"); a
histogram keeps every observed value ("bfs_frontier" sizes) and summarizes
them on snapshot.  Names are dotted strings namespaced by subsystem —
``top_k.seeds_explored``, ``mining.paths_enumerated`` — listed in
docs/observability.md.

:class:`Metrics` is thread-safe: the serving layer increments one shared
registry from every worker thread, and an unguarded read-modify-write on a
dict slot loses updates under that interleaving.  A single lock around the
mutations keeps the hot path cheap (one uncontended acquire) and the
snapshot consistent.
"""

from __future__ import annotations

import threading
from typing import Protocol, runtime_checkable

from repro.contracts import guarded_by, single_threaded


@runtime_checkable
class MetricsLike(Protocol):
    """What a component needs from a metrics sink (structural type).

    Both :class:`Metrics` and :class:`NoopMetrics` satisfy it; serving
    components accept any implementation rather than the concrete class.
    """

    def incr(self, name: str, amount: float = 1) -> None: ...

    def observe(self, name: str, value: float) -> None: ...

    def counter(self, name: str) -> float: ...

    def snapshot(self) -> dict: ...


@guarded_by("_lock", "counters", "histograms")
class Metrics:
    """A recording registry of counters and histograms (thread-safe)."""

    __slots__ = ("counters", "histograms", "_lock")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}
        self._lock = threading.Lock()

    def incr(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.histograms.setdefault(name, []).append(value)

    def counter(self, name: str) -> float:
        with self._lock:
            return self.counters.get(name, 0)

    def snapshot(self) -> dict:
        """JSON-ready view: raw counters, summarized histograms."""
        with self._lock:
            counters = dict(self.counters)
            histograms = {name: list(values) for name, values in self.histograms.items()}
        return {
            "counters": dict(sorted(counters.items())),
            "histograms": {
                name: _summarize(values)
                for name, values in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.histograms.clear()

    @single_threaded
    def reset_after_fork(self) -> None:
        """Re-anchor this registry in a freshly-forked, single-threaded child.

        ``reset()`` under the inherited lock is not enough: if any parent
        thread held ``_lock`` at fork time, the copied lock is locked
        forever in the child and the first ``incr`` deadlocks.  The child
        is single-threaded when this runs, so replacing the lock (and
        dropping the parent's numbers) is safe and sufficient.
        """
        self._lock = threading.Lock()
        self.counters = {}
        self.histograms = {}


class NoopMetrics:
    """Records nothing; every query answers empty."""

    __slots__ = ()

    def incr(self, name: str, amount: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> float:
        return 0

    def snapshot(self) -> dict:
        return {"counters": {}, "histograms": {}}

    def reset(self) -> None:
        pass

    def reset_after_fork(self) -> None:
        pass


def _summarize(values: list[float]) -> dict:
    return {
        "count": len(values),
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "total": sum(values),
    }


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Combine :meth:`Metrics.snapshot` dicts from independent registries.

    The pre-fork serving layer aggregates per-worker registries into one
    cluster view: counters add, histogram summaries combine exactly
    (count/total sum, min/max extremize, mean recomputed from the
    combined totals).  Per-value percentiles cannot be merged from
    summaries and are deliberately absent — same shape as a single
    worker's snapshot.
    """
    counters: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, summary in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = dict(summary)
                continue
            merged["count"] += summary["count"]
            merged["total"] += summary["total"]
            merged["min"] = min(merged["min"], summary["min"])
            merged["max"] = max(merged["max"], summary["max"])
            merged["mean"] = merged["total"] / merged["count"] if merged["count"] else 0.0
    return {
        "counters": dict(sorted(counters.items())),
        "histograms": dict(sorted(histograms.items())),
    }
