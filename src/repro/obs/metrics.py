"""Counter and histogram registries for the observability layer.

Counters are monotonically increasing numbers ("seeds_explored"); a
histogram keeps every observed value ("bfs_frontier" sizes) and summarizes
them on snapshot.  Names are dotted strings namespaced by subsystem —
``top_k.seeds_explored``, ``mining.paths_enumerated`` — listed in
docs/observability.md.
"""

from __future__ import annotations


class Metrics:
    """A recording registry of counters and histograms."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}

    def incr(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, []).append(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def snapshot(self) -> dict:
        """JSON-ready view: raw counters, summarized histograms."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: _summarize(values)
                for name, values in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()


class NoopMetrics:
    """Records nothing; every query answers empty."""

    __slots__ = ()

    def incr(self, name: str, amount: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> float:
        return 0

    def snapshot(self) -> dict:
        return {"counters": {}, "histograms": {}}

    def reset(self) -> None:
        pass


def _summarize(values: list[float]) -> dict:
    return {
        "count": len(values),
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "total": sum(values),
    }
