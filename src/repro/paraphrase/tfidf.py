"""tf-idf scoring of predicate paths (Definition 4).

For a relation phrase ``rel`` with path sets ``PS(rel) = ⋃_j Path(v_j, v'_j)``:

* ``tf(L, PS(rel))``  — the number of supporting pairs whose path set
  contains L (how characteristic L is for this phrase);
* ``idf(L, T)``       — ``log(|T| / (|{rel : L ∈ PS(rel)}| + 1))`` over the
  whole phrase dictionary (how discriminative L is globally);
* ``tf-idf = tf × idf`` — Equation (1)'s confidence before normalization.

The idf term is what kills generic noise paths: (hasGender, hasGender)
connects the entity pair of nearly every person-person phrase, so its idf
approaches ``log(|T|/|T|) = 0``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

Path = tuple[int, ...]
#: path sets per supporting pair: one set of paths per pair.
PairPathSets = list[set[Path]]


def tf_value(path: Path, pair_path_sets: PairPathSets) -> int:
    """Number of supporting pairs whose path set contains ``path``."""
    return sum(1 for path_set in pair_path_sets if path in path_set)


def document_frequencies(
    all_phrase_paths: Mapping[str, Iterable[Path]],
) -> dict[Path, int]:
    """``path → |{rel : path ∈ PS(rel)}|`` in one pass over the dictionary.

    The idf denominator for every candidate path at once: scoring a whole
    mining run needs the count for each (phrase, path) combination, and
    recomputing it per lookup is quadratic in the dictionary size.
    """
    counts: dict[Path, int] = {}
    for paths in all_phrase_paths.values():
        for path in set(paths):
            counts[path] = counts.get(path, 0) + 1
    return counts


def smoothed_idf_from_count(containing: int, total: int) -> float:
    """Smoothed idf from a precomputed document frequency (see
    :func:`smoothed_idf_value` for the smoothing rationale)."""
    if total == 0:
        return 0.0
    return math.log((total + 1) / (containing + 1))


def idf_value(path: Path, all_phrase_paths: Mapping[str, Iterable[Path]]) -> float:
    """idf of ``path`` over the phrase dictionary T (Definition 4)."""
    total = len(all_phrase_paths)
    if total == 0:
        return 0.0
    containing = sum(
        1 for paths in all_phrase_paths.values() if path in set(paths)
    )
    return math.log(total / (containing + 1))


def smoothed_idf_value(path: Path, all_phrase_paths: Mapping[str, Iterable[Path]]) -> float:
    """idf with add-one smoothing on |T|: ``log((|T|+1) / (count+1))``.

    Definition 4's idf is ``log(|T|/(count+1))``, which is ≤ 0 whenever a
    path is unique to one phrase in a *small* dictionary (|T| = 2 →
    log(2/2) = 0).  At the paper's scale (350 k–1.6 M phrases) the two
    formulas are indistinguishable; the smoothed form keeps the intended
    ordering — unique paths positive, ubiquitous paths at zero — at any
    corpus size, so the miner uses it.
    """
    total = len(all_phrase_paths)
    if total == 0:
        return 0.0
    containing = sum(1 for paths in all_phrase_paths.values() if path in set(paths))
    return math.log((total + 1) / (containing + 1))


def tf_idf_value(
    path: Path,
    pair_path_sets: PairPathSets,
    all_phrase_paths: Mapping[str, Iterable[Path]],
) -> float:
    """tf-idf of ``path`` for one phrase against the whole dictionary."""
    return tf_value(path, pair_path_sets) * idf_value(path, all_phrase_paths)
