"""Simple-path enumeration between entity pairs (Section 3).

The paper finds all simple paths between the two entities of each
supporting pair, up to a length threshold θ (=4 in their experiments),
ignoring edge direction, via bidirectional BFS.  We implement exactly that:
breadth-first frontiers expanded from both endpoints meet in the middle,
which keeps the explored neighbourhood at radius ⌈θ/2⌉ instead of θ.

Paths are returned as *signed predicate tuples* (see
:mod:`repro.rdf.graph`): the sign records whether each hop follows or
opposes the predicate's direction, so the path can be re-walked
directionally at query time.
"""

from __future__ import annotations

from repro import obs
from repro.rdf.graph import KnowledgeGraph, encode_step, reverse_path

Path = tuple[int, ...]


def _expand_tree(
    kg: KnowledgeGraph, start: int, depth: int, tracer=obs.NOOP
) -> dict[int, list[tuple[Path, frozenset[int]]]]:
    """All simple walks of length ≤ depth from ``start``.

    Returns endpoint → list of (signed path, set of visited nodes including
    both endpoints).  BFS by level; simplicity enforced per walk.  Frontier
    sizes per level go to the ``mining.bfs_frontier`` histogram.
    """
    reached: dict[int, list[tuple[Path, frozenset[int]]]] = {
        start: [((), frozenset((start,)))]
    }
    frontier: list[tuple[int, Path, frozenset[int]]] = [(start, (), frozenset((start,)))]
    observe = tracer.metrics.observe
    for _ in range(depth):
        next_frontier: list[tuple[int, Path, frozenset[int]]] = []
        for node, path, visited in frontier:
            for edge in kg.undirected_neighbors(node):
                if edge.node in visited:
                    continue
                new_path = path + (encode_step(edge.predicate, edge.direction),)
                new_visited = visited | {edge.node}
                reached.setdefault(edge.node, []).append((new_path, new_visited))
                next_frontier.append((edge.node, new_path, new_visited))
        frontier = next_frontier
        observe("mining.bfs_frontier", len(frontier))
    return reached


def find_simple_paths(
    kg: KnowledgeGraph, source: int, target: int, max_length: int, tracer=None
) -> set[Path]:
    """All simple predicate paths from ``source`` to ``target``, length ≤ θ.

    Direction of individual edges is ignored for reachability (as in the
    paper's BFS) but recorded in the signed steps of each returned path.
    Returns the set of distinct predicate-path *patterns*; two different
    node routes with the same signed predicate sequence collapse into one.

    A literal endpoint is reached through its single incoming hop: paths
    never pass *through* literals, but a support pair like
    (Michael_Jordan, "1.98") mines the ⟨height⟩ predicate.
    """
    if tracer is None:
        tracer = obs.get_tracer()
    found = _find_simple_paths(kg, source, target, max_length, tracer)
    tracer.metrics.incr("mining.path_queries")
    tracer.metrics.incr("mining.paths_enumerated", len(found))
    return found


def _find_simple_paths(
    kg: KnowledgeGraph, source: int, target: int, max_length: int, tracer=obs.NOOP
) -> set[Path]:
    if max_length < 1:
        return set()
    if source == target:
        return set()
    if kg.store.is_literal_id(target):
        return _paths_to_literal(kg, source, target, max_length, tracer)
    if kg.store.is_literal_id(source):
        reversed_paths = _paths_to_literal(kg, target, source, max_length, tracer)
        return {reverse_path(path) for path in reversed_paths}
    forward_depth = (max_length + 1) // 2
    backward_depth = max_length // 2
    forward = _expand_tree(kg, source, forward_depth, tracer)
    backward = _expand_tree(kg, target, backward_depth, tracer)

    found: set[Path] = set()
    for meeting, forward_walks in forward.items():
        backward_walks = backward.get(meeting)
        if backward_walks is None:
            continue
        for forward_path, forward_visited in forward_walks:
            for backward_path, backward_visited in backward_walks:
                total = len(forward_path) + len(backward_path)
                if total == 0 or total > max_length:
                    continue
                # Simplicity: the two halves may share only the meeting node.
                if (forward_visited & backward_visited) != {meeting}:
                    continue
                found.add(forward_path + reverse_path(backward_path))
    return found


def _paths_to_literal(
    kg: KnowledgeGraph, source: int, literal: int, max_length: int, tracer=obs.NOOP
) -> set[Path]:
    """Simple paths ending in the final hop onto a literal object."""
    from repro.rdf.graph import forward_step

    structural = kg.structural_predicate_ids
    found: set[Path] = set()
    for holder, pid, _obj in kg.store.triples_ids(o=literal):
        if pid in structural:
            continue
        final = forward_step(pid)
        if holder == source and max_length >= 1:
            found.add((final,))
        if max_length >= 2:
            for prefix in _find_simple_paths(kg, source, holder, max_length - 1, tracer):
                found.add(prefix + (final,))
    return found


def describe_path(kg: KnowledgeGraph, path: Path) -> str:
    """Human-readable rendering: '<spouse> → <starring>⁻¹' style."""
    from repro.rdf.graph import step_is_forward, step_predicate

    parts = []
    for step in path:
        name = kg.iri_of(step_predicate(step)).local_name
        parts.append(name if step_is_forward(step) else f"{name}⁻¹")
    return " → ".join(parts)
