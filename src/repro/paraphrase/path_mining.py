"""Simple-path enumeration between entity pairs (Section 3).

The paper finds all simple paths between the two entities of each
supporting pair, up to a length threshold θ (=4 in their experiments),
ignoring edge direction, via bidirectional BFS.  We implement exactly that:
breadth-first frontiers expanded from both endpoints meet in the middle,
which keeps the explored neighbourhood at radius ⌈θ/2⌉ instead of θ.

Paths are returned as *signed predicate tuples* (see
:mod:`repro.rdf.kernel`): the sign records whether each hop follows or
opposes the predicate's direction, so the path can be re-walked
directionally at query time.

Hot-path layout: the BFS runs on the adjacency kernel's flat
``(steps, neighbors)`` rows, each walk is a pair of plain tuples (the
signed path and the node sequence — simplicity is a membership test on
the shared-prefix node tuple, no per-step ``frozenset`` copies), and both
the expansion trees and the literal-prefix enumerations are memoized in
kernel-scoped cache regions, so repeated endpoints across support pairs
are expanded once per store version.
"""

from __future__ import annotations

from repro import obs
from repro.rdf.graph import KnowledgeGraph, reverse_path

Path = tuple[int, ...]

#: endpoint → [(signed path, node sequence from start to endpoint)]
ExpansionTree = dict[int, list[tuple[Path, tuple[int, ...]]]]


def _expand_tree(
    kg: KnowledgeGraph, start: int, depth: int, tracer=obs.NOOP
) -> ExpansionTree:
    """All simple walks of length ≤ depth from ``start``.

    Returns endpoint → list of (signed path, visited node sequence
    including both endpoints).  BFS by level; simplicity enforced per walk
    by a membership test on the walk's own node tuple (walks are ≤ ⌈θ/2⌉
    long, so a tuple scan beats allocating a set per extension).

    Trees are memoized per (start, depth) in a kernel cache region —
    support-pair endpoints repeat heavily across phrases — so callers must
    treat the returned structure as immutable.  Each level records its
    expansion count in ``mining.bfs_expanded`` and its surviving frontier
    in ``mining.bfs_frontier``; an empty frontier stops the BFS early
    instead of looping to full depth.
    """
    cache = kg.kernel.cache_region("mining.expand_tree")
    key = (start, depth)
    cached = cache.get(key)
    if cached is not None:
        return cached
    entity_adjacency = kg.kernel.entity_adjacency
    observe = tracer.metrics.observe
    if depth == 1:
        # θ=2 splits into two depth-1 trees: one row scan, no frontier
        # machinery.  Every non-self-loop edge is one accepted extension,
        # so expanded == frontier == the number of walks added.
        reached_one: ExpansionTree = {start: [((), (start,))]}
        expanded_one = 0
        steps, neighbors = entity_adjacency(start)
        for step, neighbor in zip(steps, neighbors):
            if neighbor == start:
                continue
            expanded_one += 1
            walk = ((step,), (start, neighbor))
            walks = reached_one.get(neighbor)
            if walks is None:
                reached_one[neighbor] = [walk]
            else:
                walks.append(walk)
        if expanded_one:
            observe("mining.bfs_expanded", expanded_one)
            observe("mining.bfs_frontier", expanded_one)
        cache[key] = reached_one
        return reached_one
    reached: ExpansionTree = {start: [((), (start,))]}
    frontier: list[tuple[int, Path, tuple[int, ...]]] = [(start, (), (start,))]
    for _ in range(depth):
        next_frontier: list[tuple[int, Path, tuple[int, ...]]] = []
        expanded = 0
        for node, path, nodes in frontier:
            steps, neighbors = entity_adjacency(node)
            for step, neighbor in zip(steps, neighbors):
                if neighbor in nodes:
                    continue
                expanded += 1
                new_path = path + (step,)
                new_nodes = nodes + (neighbor,)
                walks = reached.get(neighbor)
                if walks is None:
                    reached[neighbor] = [(new_path, new_nodes)]
                else:
                    walks.append((new_path, new_nodes))
                next_frontier.append((neighbor, new_path, new_nodes))
        if not next_frontier:
            break
        observe("mining.bfs_expanded", expanded)
        observe("mining.bfs_frontier", len(next_frontier))
        frontier = next_frontier
    cache[key] = reached
    return reached


def find_simple_paths(
    kg: KnowledgeGraph, source: int, target: int, max_length: int, tracer=None
) -> set[Path]:
    """All simple predicate paths from ``source`` to ``target``, length ≤ θ.

    Direction of individual edges is ignored for reachability (as in the
    paper's BFS) but recorded in the signed steps of each returned path.
    Returns the set of distinct predicate-path *patterns*; two different
    node routes with the same signed predicate sequence collapse into one.

    A literal endpoint is reached through its single incoming hop: paths
    never pass *through* literals, but a support pair like
    (Michael_Jordan, "1.98") mines the ⟨height⟩ predicate.
    """
    if tracer is None:
        tracer = obs.get_tracer()
    found = _find_simple_paths(kg, source, target, max_length, tracer)
    tracer.metrics.incr("mining.path_queries")
    tracer.metrics.incr("mining.paths_enumerated", len(found))
    return found


def _find_simple_paths(
    kg: KnowledgeGraph, source: int, target: int, max_length: int, tracer=obs.NOOP
) -> set[Path]:
    if max_length < 1:
        return set()
    if source == target:
        return set()
    if kg.store.is_literal_id(target):
        return _paths_to_literal(kg, source, target, max_length, tracer)
    if kg.store.is_literal_id(source):
        reversed_paths = _paths_to_literal(kg, target, source, max_length, tracer)
        return {reverse_path(path) for path in reversed_paths}
    forward_depth = (max_length + 1) // 2
    backward_depth = max_length // 2
    forward = _expand_tree(kg, source, forward_depth, tracer)
    backward = _expand_tree(kg, target, backward_depth, tracer)
    if len(backward) < len(forward):
        # Intersect from the smaller tree; the meeting set is symmetric.
        forward, backward = backward, forward
        flip = True
    else:
        flip = False

    found: set[Path] = set()
    for meeting, left_walks in forward.items():
        right_walks = backward.get(meeting)
        if right_walks is None:
            continue
        for left_path, left_nodes in left_walks:
            for right_path, right_nodes in right_walks:
                total = len(left_path) + len(right_path)
                if total == 0 or total > max_length:
                    continue
                # Simplicity: the two halves may share only the meeting
                # node (the last element of both node sequences).
                if _halves_overlap(left_nodes, right_nodes):
                    continue
                if flip:
                    found.add(right_path + reverse_path(left_path))
                else:
                    found.add(left_path + reverse_path(right_path))
    return found


def _halves_overlap(left_nodes: tuple[int, ...], right_nodes: tuple[int, ...]) -> bool:
    """Whether two walk halves share any node besides their common last one.

    Node sequences are ≤ ⌈θ/2⌉ + 1 long, so nested tuple scans beat
    building and intersecting sets per walk pair.
    """
    for node in left_nodes[:-1]:
        if node in right_nodes:
            return True
    return False


def _paths_to_literal(
    kg: KnowledgeGraph, source: int, literal: int, max_length: int, tracer=obs.NOOP
) -> set[Path]:
    """Simple paths ending in the final hop onto a literal object.

    The entity-to-entity prefix enumeration is memoized per
    (source, holder, length budget) in a kernel cache region: distinct
    literals held by the same subject (heights, dates, names) would
    otherwise re-enumerate identical prefixes.
    """
    structural = kg.kernel.structural_predicate_ids
    prefix_cache = kg.kernel.cache_region("mining.literal_prefixes")
    found: set[Path] = set()
    for holder, pid, _obj in kg.store.triples_ids(o=literal):
        if pid in structural:
            continue
        final = pid + 1  # forward step onto the literal
        if holder == source and max_length >= 1:
            found.add((final,))
        if max_length >= 2:
            key = (source, holder, max_length - 1)
            prefixes = prefix_cache.get(key)
            if prefixes is None:
                prefixes = _find_simple_paths(kg, source, holder, max_length - 1, tracer)
                prefix_cache[key] = prefixes
            for prefix in prefixes:
                found.add(prefix + (final,))
    return found


def describe_path(kg: KnowledgeGraph, path: Path) -> str:
    """Human-readable rendering: '<spouse> → <starring>⁻¹' style."""
    from repro.rdf.graph import step_is_forward, step_predicate

    parts = []
    for step in path:
        name = kg.iri_of(step_predicate(step)).local_name
        parts.append(name if step_is_forward(step) else f"{name}⁻¹")
    return " → ".join(parts)
