"""Algorithm 1: mining the paraphrase dictionary from support pairs.

Input: a relation-phrase dataset T where each phrase carries supporting
entity pairs (as IRIs), and a knowledge graph G.  Output: a
:class:`ParaphraseDictionary` mapping each phrase to its top-k predicate
paths by tf-idf confidence.

Confidences are normalized per phrase to (0, 1] (the paper's Table 6 note:
"the confidence probabilities are normalized").

Mining is embarrassingly parallel across relation phrases: each phrase's
support pairs are enumerated independently and scoring happens afterwards
in the parent.  ``jobs > 1`` fans phrases out over a ``concurrent.futures``
pool — fork-server-free *fork* processes sharing the read-only store with
the parent, falling back to threads where fork is unavailable and to the
serial loop for a single phrase — while preserving the exact serial output:
results are collected in dataset order and scored identically, so the
mined dictionary is byte-for-byte the same at any job count.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from dataclasses import dataclass, field

from repro import obs
from repro.exceptions import MiningError
from repro.nlp.lemmatizer import lemmatize_adjective, lemmatize_noun, lemmatize_verb
from repro.paraphrase.dictionary import ParaphraseDictionary, PredicateMapping
from repro.paraphrase.path_mining import find_simple_paths
from repro.paraphrase.tfidf import (
    document_frequencies,
    smoothed_idf_from_count,
    tf_value,
)
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.terms import IRI

Path = tuple[int, ...]

#: Resolved support pairs of one phrase: (left candidate ids, right candidate ids).
_IdPairs = list[tuple[tuple[int, ...], tuple[int, ...]]]

#: Worker state for the phrase pool: (kg, max_path_length).  Set in the
#: parent immediately before the pool is created — fork workers inherit the
#: already-built adjacency kernel via copy-on-write; thread workers share it.
_WORKER_STATE: tuple[KnowledgeGraph, int] | None = None


def _collect_phrase_paths(
    task: tuple[int, _IdPairs],
) -> tuple[int, list[set[Path]], int, int]:
    """Pool worker: enumerate path sets for one phrase's resolved pairs.

    Returns (task index, per-pair path sets, path queries run, paths
    found) — the counters are re-applied to the parent's metrics registry
    so traces aggregate the same totals as a serial run.
    """
    index, id_pairs = task
    kg, max_path_length = _WORKER_STATE  # type: ignore[misc]
    path_sets, queries, enumerated = _phrase_path_sets(
        kg, max_path_length, id_pairs, obs.NOOP
    )
    return index, path_sets, queries, enumerated


def _phrase_path_sets(
    kg: KnowledgeGraph,
    max_path_length: int,
    id_pairs: _IdPairs,
    tracer,
) -> tuple[list[set[Path]], int, int]:
    """Per-pair path sets for one phrase (shared by serial and pool paths)."""
    path_sets: list[set[Path]] = []
    queries = 0
    enumerated = 0
    for left_ids, right_ids in id_pairs:
        paths: set[Path] = set()
        for left_id in left_ids:
            for right_id in right_ids:
                queries += 1
                found = find_simple_paths(
                    kg, left_id, right_id, max_path_length, tracer=tracer
                )
                enumerated += len(found)
                paths |= found
        if paths:
            path_sets.append(paths)
    return path_sets, queries, enumerated


def normalize_phrase(phrase: str) -> tuple[str, ...]:
    """Canonical lemma-tuple form of a relation phrase.

    "was married to" and "be married to" both normalize to
    ("be", "married"→"marry", "to") so surface variation in either the
    phrase dataset or the question collapses to one key.

    Each word is lemmatized verb-first (relation phrases are verb-centred),
    falling back to noun morphology ("children of" → ("child", "of")) so the
    result agrees with the POS-aware lemmas on dependency-tree nodes.
    """
    from repro.nlp import lexicon

    normalized: list[str] = []
    for word in phrase.lower().split():
        adjective_lemma = lemmatize_adjective(word)
        if adjective_lemma != word:
            # Graded adjectives ("largest" → "large") agree with the
            # POS-aware lemmas on dependency-tree nodes.
            normalized.append(adjective_lemma)
            continue
        noun_lemma = lemmatize_noun(word)
        if noun_lemma in lexicon.NOUNS or noun_lemma in lexicon.IRREGULAR_NOUN_PLURALS.values():
            # Known nouns take noun morphology ("movies" → "movie", never
            # the verb rule's "movy").
            normalized.append(noun_lemma)
            continue
        verb_lemma = lemmatize_verb(word)
        normalized.append(verb_lemma if verb_lemma != word else noun_lemma)
    return tuple(normalized)


@dataclass(slots=True)
class RelationPhraseDataset:
    """A Patty/ReVerb-style dataset: phrases with supporting entity pairs."""

    support: dict[str, list[tuple[IRI, IRI]]] = field(default_factory=dict)

    def add(self, phrase: str, pairs: list[tuple[IRI, IRI]]) -> None:
        self.support.setdefault(phrase, []).extend(pairs)

    def __len__(self) -> int:
        return len(self.support)

    def pair_count(self) -> int:
        return sum(len(pairs) for pairs in self.support.values())

    def statistics(self) -> dict[str, float]:
        """Table 5-shaped statistics of the dataset."""
        phrases = len(self.support)
        pairs = self.pair_count()
        return {
            "relation_phrases": phrases,
            "entity_pairs": pairs,
            "avg_pairs_per_phrase": (pairs / phrases) if phrases else 0.0,
        }


@dataclass(frozen=True, slots=True)
class MiningReport:
    """Diagnostics from one mining run."""

    phrases: int
    pairs_total: int
    pairs_located: int          # pairs whose both endpoints exist in G
    candidate_paths: int

    @property
    def located_fraction(self) -> float:
        """Fraction of support pairs found in the graph (the paper reports
        67 % of Patty pairs occur in DBpedia)."""
        if self.pairs_total == 0:
            return 0.0
        return self.pairs_located / self.pairs_total


class ParaphraseMiner:
    """Runs Algorithm 1 over a relation-phrase dataset.

    Parameters
    ----------
    kg:
        Knowledge graph to mine against.
    max_path_length:
        The θ threshold on simple-path length (the paper defaults to 4;
        Table 7 compares θ=2 and θ=4).
    top_k:
        Number of predicate paths kept per phrase.
    use_tfidf:
        When False, paths are scored by raw tf only — the ablation for the
        noise discussion in Section 3 (hasGender-style paths survive).
    jobs:
        Worker count for the per-phrase fan-out: 1 (default) mines
        serially in-process, N > 1 uses a pool of N fork processes
        (threads where fork is unavailable), 0 auto-sizes to the CPU
        count.  Output is identical at any job count.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        max_path_length: int = 4,
        top_k: int = 3,
        use_tfidf: bool = True,
        length_discount: float = 0.75,
        tracer=None,
        jobs: int = 1,
    ):
        if max_path_length < 1:
            raise MiningError("max_path_length must be at least 1")
        if top_k < 1:
            raise MiningError("top_k must be at least 1")
        if not 0 < length_discount <= 1:
            raise MiningError("length_discount must be in (0, 1]")
        if jobs < 0:
            raise MiningError("jobs must be 0 (auto) or a positive worker count")
        self.kg = kg
        self.max_path_length = max_path_length
        self.top_k = top_k
        self.use_tfidf = use_tfidf
        self.jobs = jobs
        # Exp 1 finds precision dropping sharply with path length and
        # recommends human verification of multi-hop mappings; the geometric
        # length discount is our automatic stand-in for that verification —
        # an L-hop path's score is multiplied by discount^(L-1).
        self.length_discount = length_discount
        self.tracer = tracer
        self.last_report: MiningReport | None = None

    # ------------------------------------------------------------------ #

    def mine(self, dataset: RelationPhraseDataset) -> ParaphraseDictionary:
        """Run Algorithm 1 and return the paraphrase dictionary."""
        tracer = self.tracer if self.tracer is not None else obs.get_tracer()
        with tracer.span("mining.mine", phrases=len(dataset)) as span:
            per_pair_sets, located, total = self._collect_path_sets(dataset, tracer)
            # Union of paths per phrase, for the idf denominator.
            phrase_paths: dict[str, set[Path]] = {
                phrase: set().union(*path_sets) if path_sets else set()
                for phrase, path_sets in per_pair_sets.items()
            }
            dictionary = ParaphraseDictionary()
            candidates = 0
            with tracer.span("mining.score_paths"):
                # idf denominators in one pass over the dictionary instead
                # of one scan per (phrase, path): |T| is fixed for the run
                # and each path's document frequency never changes.
                df = document_frequencies(phrase_paths)
                total_phrases = len(phrase_paths)
                for phrase, path_sets in per_pair_sets.items():
                    scored: list[tuple[Path, float]] = []
                    for path in phrase_paths[phrase]:
                        tf = tf_value(path, path_sets)
                        score = float(tf)
                        if self.use_tfidf:
                            score = tf * smoothed_idf_from_count(
                                df[path], total_phrases
                            )
                        score *= self.length_discount ** (len(path) - 1)
                        if score > 0:
                            scored.append((path, score))
                    candidates += len(scored)
                    scored.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
                    top = scored[: self.top_k]
                    mappings = self._normalize(top)
                    dictionary.add(normalize_phrase(phrase), mappings)
            self.last_report = MiningReport(
                phrases=len(per_pair_sets),
                pairs_total=total,
                pairs_located=located,
                candidate_paths=candidates,
            )
            span.set(
                pairs_total=total,
                pairs_located=located,
                candidate_paths=candidates,
            )
        return dictionary

    def remine_for_predicates(
        self,
        dataset: RelationPhraseDataset,
        dictionary: ParaphraseDictionary,
        new_predicates: set[IRI],
    ) -> int:
        """Incremental maintenance: re-mine only the phrases whose support
        pairs are incident to a newly introduced predicate.

        Returns the number of phrases re-mined.  This is the cheap update
        path Section 3 sketches instead of a full rebuild.
        """
        new_ids = {
            pid for pid in (self.kg.id_of(p) for p in new_predicates) if pid is not None
        }
        if not new_ids:
            return 0
        affected: dict[str, list[tuple[IRI, IRI]]] = {}
        for phrase, pairs in dataset.support.items():
            for left, right in pairs:
                left_id = self.kg.id_of(left)
                right_id = self.kg.id_of(right)
                if left_id is None or right_id is None:
                    continue
                kernel = self.kg.kernel
                incident = {
                    abs(step) - 1
                    for node in (left_id, right_id)
                    for step, _neighbor in kernel.entity_neighbors(node)
                }
                if incident & new_ids:
                    affected[phrase] = pairs
                    break
        if not affected:
            return 0
        sub_dataset = RelationPhraseDataset(dict(affected))
        partial = self.mine(sub_dataset)
        for phrase_words in partial.phrases():
            dictionary.add(phrase_words, partial.lookup(phrase_words))
        return len(affected)

    # ------------------------------------------------------------------ #

    def _collect_path_sets(self, dataset: RelationPhraseDataset, tracer=obs.NOOP):
        jobs = self._effective_jobs(len(dataset.support))
        per_pair_sets: dict[str, list[set[Path]]] = {}
        located = 0
        total = 0
        with tracer.span("mining.collect_paths", jobs=jobs):
            # Endpoint resolution stays in the parent: it is cheap dict
            # lookups, and it keeps the located/total accounting (the
            # paper's 67 % figure) out of the workers.
            phrases: list[str] = []
            resolved: list[_IdPairs] = []
            for phrase, pairs in dataset.support.items():
                id_pairs: _IdPairs = []
                for left, right in pairs:
                    total += 1
                    left_ids = self._resolve_endpoint(left)
                    right_ids = self._resolve_endpoint(right)
                    if not left_ids or not right_ids:
                        continue  # pair does not occur in G (the 33 % in Patty)
                    located += 1
                    id_pairs.append((tuple(left_ids), tuple(right_ids)))
                phrases.append(phrase)
                resolved.append(id_pairs)
            if jobs > 1:
                collected = self._collect_pooled(resolved, jobs, tracer)
            else:
                collected = [
                    _phrase_path_sets(self.kg, self.max_path_length, id_pairs, tracer)[0]
                    for id_pairs in resolved
                ]
            for phrase, path_sets in zip(phrases, collected):
                per_pair_sets[phrase] = path_sets
        return per_pair_sets, located, total

    def _effective_jobs(self, phrases: int) -> int:
        import os

        jobs = self.jobs if self.jobs != 0 else (os.cpu_count() or 1)
        return max(1, min(jobs, phrases))

    def _collect_pooled(
        self, resolved: list[_IdPairs], jobs: int, tracer
    ) -> list[list[set[Path]]]:
        """Fan phrases out over a worker pool, preserving dataset order.

        Fork processes share the parent's store and prebuilt adjacency
        kernel copy-on-write; where fork is unavailable the pool degrades
        to threads (same results, less parallelism).  Worker-side path
        counters come back with each result and are re-applied to the
        parent's metrics, so counter totals match a serial run; per-level
        BFS histograms are only recorded by in-process (serial) mining.
        """
        global _WORKER_STATE
        self.kg.kernel  # build once in the parent so every worker inherits it
        tasks = list(enumerate(resolved))
        collected: list[list[set[Path]] | None] = [None] * len(resolved)
        _WORKER_STATE = (self.kg, self.max_path_length)
        try:
            try:
                context = multiprocessing.get_context("fork")
                pool_factory = lambda: concurrent.futures.ProcessPoolExecutor(
                    max_workers=jobs, mp_context=context
                )
            except ValueError:
                pool_factory = lambda: concurrent.futures.ThreadPoolExecutor(
                    max_workers=jobs
                )
            with pool_factory() as pool:
                for index, path_sets, queries, enumerated in pool.map(
                    _collect_phrase_paths, tasks
                ):
                    collected[index] = path_sets
                    tracer.metrics.incr("mining.path_queries", queries)
                    tracer.metrics.incr("mining.paths_enumerated", enumerated)
        finally:
            _WORKER_STATE = None
        return collected  # type: ignore[return-value]

    def _resolve_endpoint(self, term) -> list[int]:
        """Graph ids a support-pair endpoint may denote (empty = absent).

        Literal endpoints come from text, so they match by lexical form
        regardless of datatype ("1.98" finds the xsd:decimal literal); all
        same-lexical literals are candidates.
        """
        from repro.rdf.terms import Literal

        found = self.kg.id_of(term)
        if found is not None:
            return [found]
        if isinstance(term, Literal):
            return sorted(self.kg.literal_ids_by_lexical(term.lexical))
        return []

    @staticmethod
    def _normalize(scored: list[tuple[Path, float]]) -> list[PredicateMapping]:
        if not scored:
            return []
        best = scored[0][1]
        if best <= 0:
            return []
        return [
            PredicateMapping(path, score / best)
            for path, score in scored
            if score > 0
        ]
