"""Algorithm 1: mining the paraphrase dictionary from support pairs.

Input: a relation-phrase dataset T where each phrase carries supporting
entity pairs (as IRIs), and a knowledge graph G.  Output: a
:class:`ParaphraseDictionary` mapping each phrase to its top-k predicate
paths by tf-idf confidence.

Confidences are normalized per phrase to (0, 1] (the paper's Table 6 note:
"the confidence probabilities are normalized").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.exceptions import MiningError
from repro.nlp.lemmatizer import lemmatize_adjective, lemmatize_noun, lemmatize_verb
from repro.paraphrase.dictionary import ParaphraseDictionary, PredicateMapping
from repro.paraphrase.path_mining import find_simple_paths
from repro.paraphrase.tfidf import smoothed_idf_value, tf_value
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.terms import IRI

Path = tuple[int, ...]


def normalize_phrase(phrase: str) -> tuple[str, ...]:
    """Canonical lemma-tuple form of a relation phrase.

    "was married to" and "be married to" both normalize to
    ("be", "married"→"marry", "to") so surface variation in either the
    phrase dataset or the question collapses to one key.

    Each word is lemmatized verb-first (relation phrases are verb-centred),
    falling back to noun morphology ("children of" → ("child", "of")) so the
    result agrees with the POS-aware lemmas on dependency-tree nodes.
    """
    from repro.nlp import lexicon

    normalized: list[str] = []
    for word in phrase.lower().split():
        adjective_lemma = lemmatize_adjective(word)
        if adjective_lemma != word:
            # Graded adjectives ("largest" → "large") agree with the
            # POS-aware lemmas on dependency-tree nodes.
            normalized.append(adjective_lemma)
            continue
        noun_lemma = lemmatize_noun(word)
        if noun_lemma in lexicon.NOUNS or noun_lemma in lexicon.IRREGULAR_NOUN_PLURALS.values():
            # Known nouns take noun morphology ("movies" → "movie", never
            # the verb rule's "movy").
            normalized.append(noun_lemma)
            continue
        verb_lemma = lemmatize_verb(word)
        normalized.append(verb_lemma if verb_lemma != word else noun_lemma)
    return tuple(normalized)


@dataclass(slots=True)
class RelationPhraseDataset:
    """A Patty/ReVerb-style dataset: phrases with supporting entity pairs."""

    support: dict[str, list[tuple[IRI, IRI]]] = field(default_factory=dict)

    def add(self, phrase: str, pairs: list[tuple[IRI, IRI]]) -> None:
        self.support.setdefault(phrase, []).extend(pairs)

    def __len__(self) -> int:
        return len(self.support)

    def pair_count(self) -> int:
        return sum(len(pairs) for pairs in self.support.values())

    def statistics(self) -> dict[str, float]:
        """Table 5-shaped statistics of the dataset."""
        phrases = len(self.support)
        pairs = self.pair_count()
        return {
            "relation_phrases": phrases,
            "entity_pairs": pairs,
            "avg_pairs_per_phrase": (pairs / phrases) if phrases else 0.0,
        }


@dataclass(frozen=True, slots=True)
class MiningReport:
    """Diagnostics from one mining run."""

    phrases: int
    pairs_total: int
    pairs_located: int          # pairs whose both endpoints exist in G
    candidate_paths: int

    @property
    def located_fraction(self) -> float:
        """Fraction of support pairs found in the graph (the paper reports
        67 % of Patty pairs occur in DBpedia)."""
        if self.pairs_total == 0:
            return 0.0
        return self.pairs_located / self.pairs_total


class ParaphraseMiner:
    """Runs Algorithm 1 over a relation-phrase dataset.

    Parameters
    ----------
    kg:
        Knowledge graph to mine against.
    max_path_length:
        The θ threshold on simple-path length (the paper defaults to 4;
        Table 7 compares θ=2 and θ=4).
    top_k:
        Number of predicate paths kept per phrase.
    use_tfidf:
        When False, paths are scored by raw tf only — the ablation for the
        noise discussion in Section 3 (hasGender-style paths survive).
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        max_path_length: int = 4,
        top_k: int = 3,
        use_tfidf: bool = True,
        length_discount: float = 0.75,
        tracer=None,
    ):
        if max_path_length < 1:
            raise MiningError("max_path_length must be at least 1")
        if top_k < 1:
            raise MiningError("top_k must be at least 1")
        if not 0 < length_discount <= 1:
            raise MiningError("length_discount must be in (0, 1]")
        self.kg = kg
        self.max_path_length = max_path_length
        self.top_k = top_k
        self.use_tfidf = use_tfidf
        # Exp 1 finds precision dropping sharply with path length and
        # recommends human verification of multi-hop mappings; the geometric
        # length discount is our automatic stand-in for that verification —
        # an L-hop path's score is multiplied by discount^(L-1).
        self.length_discount = length_discount
        self.tracer = tracer
        self.last_report: MiningReport | None = None

    # ------------------------------------------------------------------ #

    def mine(self, dataset: RelationPhraseDataset) -> ParaphraseDictionary:
        """Run Algorithm 1 and return the paraphrase dictionary."""
        tracer = self.tracer if self.tracer is not None else obs.get_tracer()
        with tracer.span("mining.mine", phrases=len(dataset)) as span:
            per_pair_sets, located, total = self._collect_path_sets(dataset, tracer)
            # Union of paths per phrase, for the idf denominator.
            phrase_paths: dict[str, set[Path]] = {
                phrase: set().union(*path_sets) if path_sets else set()
                for phrase, path_sets in per_pair_sets.items()
            }
            dictionary = ParaphraseDictionary()
            candidates = 0
            with tracer.span("mining.score_paths"):
                for phrase, path_sets in per_pair_sets.items():
                    scored: list[tuple[Path, float]] = []
                    for path in phrase_paths[phrase]:
                        tf = tf_value(path, path_sets)
                        score = float(tf)
                        if self.use_tfidf:
                            score = tf * smoothed_idf_value(path, phrase_paths)
                        score *= self.length_discount ** (len(path) - 1)
                        if score > 0:
                            scored.append((path, score))
                    candidates += len(scored)
                    scored.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
                    top = scored[: self.top_k]
                    mappings = self._normalize(top)
                    dictionary.add(normalize_phrase(phrase), mappings)
            self.last_report = MiningReport(
                phrases=len(per_pair_sets),
                pairs_total=total,
                pairs_located=located,
                candidate_paths=candidates,
            )
            span.set(
                pairs_total=total,
                pairs_located=located,
                candidate_paths=candidates,
            )
        return dictionary

    def remine_for_predicates(
        self,
        dataset: RelationPhraseDataset,
        dictionary: ParaphraseDictionary,
        new_predicates: set[IRI],
    ) -> int:
        """Incremental maintenance: re-mine only the phrases whose support
        pairs are incident to a newly introduced predicate.

        Returns the number of phrases re-mined.  This is the cheap update
        path Section 3 sketches instead of a full rebuild.
        """
        new_ids = {
            pid for pid in (self.kg.id_of(p) for p in new_predicates) if pid is not None
        }
        if not new_ids:
            return 0
        affected: dict[str, list[tuple[IRI, IRI]]] = {}
        for phrase, pairs in dataset.support.items():
            for left, right in pairs:
                left_id = self.kg.id_of(left)
                right_id = self.kg.id_of(right)
                if left_id is None or right_id is None:
                    continue
                incident = {
                    edge.predicate
                    for node in (left_id, right_id)
                    for edge in self.kg.undirected_neighbors(node)
                }
                if incident & new_ids:
                    affected[phrase] = pairs
                    break
        if not affected:
            return 0
        sub_dataset = RelationPhraseDataset(dict(affected))
        partial = self.mine(sub_dataset)
        for phrase_words in partial.phrases():
            dictionary.add(phrase_words, partial.lookup(phrase_words))
        return len(affected)

    # ------------------------------------------------------------------ #

    def _collect_path_sets(self, dataset: RelationPhraseDataset, tracer=obs.NOOP):
        per_pair_sets: dict[str, list[set[Path]]] = {}
        located = 0
        total = 0
        with tracer.span("mining.collect_paths"):
            for phrase, pairs in dataset.support.items():
                path_sets: list[set[Path]] = []
                for left, right in pairs:
                    total += 1
                    left_ids = self._resolve_endpoint(left)
                    right_ids = self._resolve_endpoint(right)
                    if not left_ids or not right_ids:
                        continue  # pair does not occur in G (the 33 % in Patty)
                    located += 1
                    paths: set[Path] = set()
                    for left_id in left_ids:
                        for right_id in right_ids:
                            paths |= find_simple_paths(
                                self.kg, left_id, right_id, self.max_path_length,
                                tracer=tracer,
                            )
                    if paths:
                        path_sets.append(paths)
                per_pair_sets[phrase] = path_sets
        return per_pair_sets, located, total

    def _resolve_endpoint(self, term) -> list[int]:
        """Graph ids a support-pair endpoint may denote (empty = absent).

        Literal endpoints come from text, so they match by lexical form
        regardless of datatype ("1.98" finds the xsd:decimal literal); all
        same-lexical literals are candidates.
        """
        from repro.rdf.terms import Literal

        found = self.kg.id_of(term)
        if found is not None:
            return [found]
        if isinstance(term, Literal):
            return sorted(self.kg.literal_ids_by_lexical(term.lexical))
        return []

    @staticmethod
    def _normalize(scored: list[tuple[Path, float]]) -> list[PredicateMapping]:
        if not scored:
            return []
        best = scored[0][1]
        if best <= 0:
            return []
        return [
            PredicateMapping(path, score / best)
            for path, score in scored
            if score > 0
        ]
