"""The paraphrase dictionary D: relation phrases → predicate paths.

Each entry maps a (lemmatized) relation phrase to a confidence-ranked list
of predicate paths (Figure 3 of the paper).  The dictionary also carries
the word-level inverted index that Algorithm 2 uses to find which relation
phrases occur in a dependency tree.

Maintenance (Section 3's closing remark): when predicates are removed from
the dataset, :meth:`remove_predicate` drops every mapping that traverses
them; newly introduced predicates are covered by re-mining only the phrases
whose support pairs touch them (:meth:`repro.paraphrase.ParaphraseMiner.
remine_for_predicates`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator

from repro.rdf.graph import step_predicate

Path = tuple[int, ...]


@dataclass(frozen=True, slots=True)
class PredicateMapping:
    """One phrase→path mapping with its confidence probability."""

    path: Path
    confidence: float

    @property
    def length(self) -> int:
        return len(self.path)

    @property
    def is_single_predicate(self) -> bool:
        return len(self.path) == 1


class ParaphraseDictionary:
    """Relation phrases with their top-k equivalent predicate paths."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, ...], list[PredicateMapping]] = {}
        self._word_index: dict[str, set[tuple[str, ...]]] = {}

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #

    def add(self, phrase_words: tuple[str, ...], mappings: list[PredicateMapping]) -> None:
        """Insert/replace the mappings for a phrase (given as lemma tuple)."""
        if not phrase_words:
            raise ValueError("relation phrase must have at least one word")
        # Ties on confidence prefer shorter paths (a single predicate beats
        # an equally-confident multi-hop path).
        ranked = sorted(mappings, key=lambda m: (-m.confidence, len(m.path), m.path))
        self._entries[phrase_words] = ranked
        for word in phrase_words:
            self._word_index.setdefault(word, set()).add(phrase_words)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, phrase_words: tuple[str, ...]) -> bool:
        return phrase_words in self._entries

    def phrases(self) -> Iterator[tuple[str, ...]]:
        return iter(self._entries)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, phrase_words: tuple[str, ...]) -> list[PredicateMapping]:
        """Ranked predicate paths for a phrase ([] when absent)."""
        return list(self._entries.get(phrase_words, ()))

    def phrases_containing(self, word: str) -> set[tuple[str, ...]]:
        """All phrases containing ``word`` — Algorithm 2's inverted index."""
        return set(self._word_index.get(word, ()))

    def vocabulary(self) -> set[str]:
        return set(self._word_index)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def remove_predicate(self, predicate_id: int) -> int:
        """Drop every mapping whose path uses ``predicate_id``.

        Returns the number of mappings removed.  Phrases left with no
        mappings stay in the dictionary (their embeddings can still be
        found; they simply produce no edge candidates).
        """
        removed = 0
        for phrase, mappings in self._entries.items():
            kept = [
                m for m in mappings
                if all(step_predicate(step) != predicate_id for step in m.path)
            ]
            removed += len(mappings) - len(kept)
            self._entries[phrase] = kept
        return removed

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Serialize to JSON (paths as lists of signed ints)."""
        payload = {
            " ".join(phrase): [
                {"path": list(m.path), "confidence": m.confidence} for m in mappings
            ]
            for phrase, mappings in self._entries.items()
        }
        return json.dumps(payload, sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "ParaphraseDictionary":
        dictionary = cls()
        for phrase_text, mappings in json.loads(text).items():
            dictionary.add(
                tuple(phrase_text.split()),
                [
                    PredicateMapping(tuple(m["path"]), float(m["confidence"]))
                    for m in mappings
                ],
            )
        return dictionary

    # ------------------------------------------------------------------ #
    # Portable serialization (IRIs, not ids)
    # ------------------------------------------------------------------ #
    #
    # The signed-integer steps above index THIS store's term dictionary;
    # they do not survive re-loading the graph from a file, which assigns
    # fresh ids in parse order.  The portable form names each step by its
    # predicate IRI and direction and is re-bound against a graph on load.

    def to_portable_json(self, kg) -> str:
        """Serialize with predicate IRIs so the dictionary survives a
        graph round-trip through N-Triples (see :mod:`repro.bundle`)."""
        from repro.rdf.graph import step_is_forward

        payload = {}
        for phrase, mappings in self._entries.items():
            payload[" ".join(phrase)] = [
                {
                    "steps": [
                        {
                            "predicate": kg.iri_of(step_predicate(step)).value,
                            "forward": step_is_forward(step),
                        }
                        for step in m.path
                    ],
                    "confidence": m.confidence,
                }
                for m in mappings
            ]
        return json.dumps(payload, sort_keys=True, indent=1)

    @classmethod
    def from_portable_json(cls, text: str, kg) -> "ParaphraseDictionary":
        """Load a portable dictionary, re-binding predicate IRIs to the
        given graph's ids.  Mappings whose predicates are absent from the
        graph are dropped (the maintenance semantics of Section 3)."""
        from repro.rdf.graph import backward_step, forward_step
        from repro.rdf.terms import IRI as _IRI

        dictionary = cls()
        for phrase_text, mappings in json.loads(text).items():
            rebound: list[PredicateMapping] = []
            for mapping in mappings:
                steps: list[int] = []
                for step in mapping["steps"]:
                    pid = kg.id_of(_IRI(step["predicate"]))
                    if pid is None:
                        steps = []
                        break
                    steps.append(
                        forward_step(pid) if step["forward"] else backward_step(pid)
                    )
                if steps:
                    rebound.append(
                        PredicateMapping(tuple(steps), float(mapping["confidence"]))
                    )
            dictionary.add(tuple(phrase_text.split()), rebound)
        return dictionary
