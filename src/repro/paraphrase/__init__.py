"""Offline phase: mining the paraphrase dictionary D (Section 3).

Given a relation-phrase dataset (phrases with supporting entity pairs, à la
Patty/ReVerb) and an RDF graph, Algorithm 1 finds for each phrase the top-k
predicates or *predicate paths* that are semantically equivalent:

1. locate each supporting pair in the graph and enumerate all simple paths
   between them up to length θ, ignoring edge direction (bidirectional BFS);
2. score each candidate path with tf-idf (Definition 4), treating each
   phrase's path multiset as a document — this suppresses noise paths like
   (hasGender, hasGender) that are frequent for *every* phrase;
3. keep the k best paths per phrase, with normalized confidences.

    from repro.paraphrase import ParaphraseMiner

    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(phrases)
    dictionary.lookup("play in")   # [(path, confidence), ...]
"""

from repro.paraphrase.path_mining import find_simple_paths
from repro.paraphrase.tfidf import idf_value, tf_idf_value, tf_value
from repro.paraphrase.dictionary import ParaphraseDictionary, PredicateMapping
from repro.paraphrase.miner import ParaphraseMiner, RelationPhraseDataset, normalize_phrase

__all__ = [
    "find_simple_paths",
    "idf_value",
    "tf_idf_value",
    "tf_value",
    "ParaphraseDictionary",
    "PredicateMapping",
    "ParaphraseMiner",
    "RelationPhraseDataset",
    "normalize_phrase",
]
