"""Admission control: a bounded in-flight budget with 429 backpressure.

The engine's worker pool has ``pool_size`` threads; the admission
controller lets at most ``pool_size + queue_limit`` requests exist at once
(running + waiting for a worker).  Everything beyond that is rejected
*immediately* with :class:`AdmissionRejected` — the transport maps it to
HTTP 429 — instead of growing an unbounded executor queue whose tail
latency the client would pay anyway.

``pressure()`` exposes current occupancy in [0, 1]; the engine reads it to
decide when to answer in degraded mode (smaller k, narrower candidate
lists).  Queue-depth and slot-hold-time histograms go to the engine's
metrics registry (``serve.queue_depth``, ``serve.in_flight_ms``).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.contracts import guarded_by
from repro.exceptions import ReproError
from repro.obs.metrics import MetricsLike, NoopMetrics


class AdmissionRejected(ReproError):
    """Raised when the bounded request budget is exhausted (HTTP 429)."""

    def __init__(self, capacity: int, in_flight: int):
        super().__init__(
            f"admission queue full: {in_flight} in flight, capacity {capacity}"
        )
        self.capacity = capacity
        self.in_flight = in_flight


@guarded_by("_lock", "_in_flight", "_admitted", "_rejected", "_peak")
class AdmissionController:
    """Counts in-flight requests against a hard capacity.

    Use as a context manager per request::

        with admission.admit():      # raises AdmissionRejected when full
            ... answer the question ...
    """

    def __init__(
        self,
        capacity: int,
        metrics: MetricsLike | None = None,
        clock: Callable[[], float] = time.monotonic,
        prefix: str = "serve",
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else NoopMetrics()
        self.clock = clock
        #: Metric-name prefix: the read path uses the default ``serve``,
        #: the ingest path uses ``serve.ingest`` so write backpressure is
        #: visible separately from question-answering backpressure.
        self.prefix = prefix
        self._lock = threading.Lock()
        self._in_flight = 0
        self._admitted = 0
        self._rejected = 0
        self._peak = 0

    # ------------------------------------------------------------------ #

    def admit(self) -> "_AdmissionToken":
        """Reserve one slot or raise :class:`AdmissionRejected`."""
        with self._lock:
            if self._in_flight >= self.capacity:
                self._rejected += 1
                self.metrics.incr(f"{self.prefix}.rejected")
                raise AdmissionRejected(self.capacity, self._in_flight)
            self._in_flight += 1
            self._admitted += 1
            self._peak = max(self._peak, self._in_flight)
            depth = self._in_flight
        self.metrics.observe(f"{self.prefix}.queue_depth", depth)
        return _AdmissionToken(self)

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    # ------------------------------------------------------------------ #

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def pressure(self) -> float:
        """Occupancy of the admission budget in [0, 1] (1 = saturated)."""
        with self._lock:
            if self.capacity == 0:
                return 1.0
            return self._in_flight / self.capacity

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "in_flight": self._in_flight,
                "peak_in_flight": self._peak,
                "admitted": self._admitted,
                "rejected": self._rejected,
            }


class _AdmissionToken:
    """Releases the reserved slot exactly once, with-block or manual."""

    __slots__ = ("_controller", "_released", "_admitted_at")

    def __init__(self, controller: AdmissionController):
        self._controller = controller
        self._released = False
        self._admitted_at = controller.clock()

    def release(self) -> None:
        if not self._released:
            self._released = True
            controller = self._controller
            controller.metrics.observe(
                f"{controller.prefix}.in_flight_ms",
                (controller.clock() - self._admitted_at) * 1000.0,
            )
            controller._release()

    def __enter__(self) -> "_AdmissionToken":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False
