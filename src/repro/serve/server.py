"""Stdlib-only JSON HTTP transport over a :class:`QAEngine`.

One thread per connection (``ThreadingHTTPServer``); actual answering
concurrency is still bounded by the engine's worker pool + admission
budget, so a thundering herd turns into fast 429s, not an overload.

Routes::

    POST /ask      {"question": str, "deadline_s"?: float, "trace"?: bool}
    POST /batch    {"questions": [str, ...], "deadline_s"?: float}
    GET  /healthz  liveness/readiness + store version
    GET  /metrics  the engine's counters and histogram summaries
    GET  /stats    caches, admission, kernel, config

Error mapping: malformed body → 400, unknown route → 404, admission
budget exhausted → 429 with a ``Retry-After`` hint.  Every response body
is JSON, including errors (``{"error": ...}``).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.admission import AdmissionRejected
from repro.serve.engine import QAEngine

__all__ = ["QAServer", "build_server"]

#: Cap on accepted request bodies — a question is a sentence, not a corpus.
MAX_BODY_BYTES = 1 << 20


class QAServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` that owns a reference to the engine."""

    daemon_threads = True
    #: Let quick restarts (tests, CI) rebind the port immediately.
    allow_reuse_address = True
    #: Load tests open a fresh TCP connection per request from many
    #: clients at once; the stdlib default backlog of 5 drops the burst
    #: with connection resets.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], engine: QAEngine):
        super().__init__(address, _Handler)
        self.engine = engine


class _Handler(BaseHTTPRequestHandler):
    #: Advertised in error bodies and the Server header.
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler casing)
        engine: QAEngine = self.server.engine
        if self.path == "/healthz":
            body = {
                "status": "ok" if engine.ready else "starting",
                "ready": engine.ready,
                "uptime_s": round(engine.uptime_s(), 3),
                "store_version": engine.store_version,
            }
            self._send_json(200 if engine.ready else 503, body)
        elif self.path == "/metrics":
            self._send_json(200, engine.metrics.snapshot())
        elif self.path == "/stats":
            self._send_json(200, engine.stats())
        else:
            self._send_json(404, {"error": f"no such route: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        engine: QAEngine = self.server.engine
        if self.path not in ("/ask", "/batch"):
            self._send_json(404, {"error": f"no such route: {self.path}"})
            return
        payload = self._read_json()
        if payload is None:
            return  # _read_json already answered with a 400
        try:
            if self.path == "/ask":
                self._handle_ask(engine, payload)
            else:
                self._handle_batch(engine, payload)
        except AdmissionRejected as rejected:
            self._send_json(
                429,
                {
                    "error": "server busy",
                    "in_flight": rejected.in_flight,
                    "capacity": rejected.capacity,
                },
                headers={"Retry-After": "1"},
            )
        except Exception as error:  # pragma: no cover - defensive surface
            engine.metrics.incr("serve.internal_errors")
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})

    # ------------------------------------------------------------------ #

    def _handle_ask(self, engine: QAEngine, payload: dict) -> None:
        question = payload.get("question")
        if not isinstance(question, str) or not question.strip():
            self._send_json(400, {"error": "'question' must be a non-empty string"})
            return
        deadline_s = _optional_number(payload, "deadline_s")
        if deadline_s is _INVALID:
            self._send_json(400, {"error": "'deadline_s' must be a positive number"})
            return
        response = engine.ask(
            question,
            deadline_s=deadline_s,
            trace=bool(payload.get("trace", False)),
        )
        self._send_json(200, response)

    def _handle_batch(self, engine: QAEngine, payload: dict) -> None:
        questions = payload.get("questions")
        if (
            not isinstance(questions, list)
            or not questions
            or not all(isinstance(q, str) and q.strip() for q in questions)
        ):
            self._send_json(
                400, {"error": "'questions' must be a non-empty list of strings"}
            )
            return
        deadline_s = _optional_number(payload, "deadline_s")
        if deadline_s is _INVALID:
            self._send_json(400, {"error": "'deadline_s' must be a positive number"})
            return
        responses = engine.batch(questions, deadline_s=deadline_s)
        self._send_json(200, {"responses": responses})

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "request body required (JSON object)"})
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._send_json(400, {"error": "request body is not valid JSON"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return None
        return payload

    def _send_json(
        self, status: int, body: dict, headers: dict[str, str] | None = None
    ) -> None:
        encoded = json.dumps(body, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args) -> None:
        # Per-request stderr lines would swamp load tests; the engine's
        # metrics registry is the serving log.
        pass


_INVALID = object()


def _optional_number(payload: dict, key: str):
    """The positive float at ``key``, None when absent, _INVALID when bad."""
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        return _INVALID
    return float(value)


def build_server(engine: QAEngine, host: str = "127.0.0.1", port: int = 8765) -> QAServer:
    """A bound (not yet serving) server; ``port=0`` picks an ephemeral port
    (read it back from ``server.server_address[1]`` — tests rely on this).
    """
    return QAServer((host, port), engine)
