"""Stdlib-only JSON HTTP transport over a :class:`QAEngine`.

One thread per connection (``ThreadingHTTPServer``); actual answering
concurrency is still bounded by the engine's worker pool + admission
budget, so a thundering herd turns into fast 429s, not an overload.
For true parallelism across cores, :mod:`repro.serve.prefork` runs N
processes each holding one of these servers over a shared listening
port — a :class:`QAServer` can adopt an already-bound socket for that.

Routes::

    POST /ask      {"question": str, "deadline_s"?: float, "trace"?: bool,
                    "no_cache"?: bool}
    POST /batch    {"questions": [str, ...], "deadline_s"?: float,
                    "no_cache"?: bool}
    POST /ingest   {"add"?: [[s, p, o], ...], "remove"?: [[s, p, o], ...]}
                   (authenticated; see below) — apply one triple batch to
                   the live overlay store and refresh derived state
    POST /compact  {"shards"?: int, "snapshot_path"?: str}
                   (authenticated) — re-compact base + delta into a fresh
                   frozen base and swap it in atomically
    GET  /healthz  liveness/readiness + store version (+ worker pid/index)
    GET  /metrics  the engine's counters and histogram summaries;
                   in a multi-worker deployment, aggregated across workers
    GET  /stats    caches, admission, kernel, config (always this worker)

Wire triples are ``[subject, predicate, object]``; subject and predicate
are IRI strings, the object is an IRI string or
``{"literal": str, "language"?: str, "datatype"?: str}``.

The write endpoints are off unless the server was built with an
``ingest_token``; requests present it as ``X-Ingest-Token: <token>`` or
``Authorization: Bearer <token>``.  No token configured → 403; wrong
token → 401 (compared constant-time).

Error mapping: malformed body → 400, missing ``Content-Length`` → 411,
oversized body → 413, unknown route → 404, admission budget exhausted →
429 with a ``Retry-After`` hint (reads and writes each have their own
budget).  Every response body is JSON, including errors
(``{"error": ...}``).

Two transport-level invariants the handler maintains:

* **Keep-alive never desynchronizes.**  A request rejected before its
  body was read (411/413) answers with ``Connection: close`` and drops
  the connection — otherwise the unread body bytes would be parsed as
  the next request's request line, poisoning every subsequent exchange
  on the connection.
* **A disconnected client is not an error.**  ``BrokenPipeError`` /
  ``ConnectionResetError`` while writing means the client hung up;
  the handler counts ``serve.client_disconnects`` and stops writing
  instead of logging an internal error and pushing a 500 at a dead
  socket.
"""

from __future__ import annotations

import hmac
import json
import os
import socket
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import merge_snapshots
from repro.rdf.terms import IRI, Literal, Triple
from repro.serve.admission import AdmissionRejected
from repro.serve.engine import QAEngine

__all__ = ["QAServer", "build_server"]

#: Cap on accepted request bodies — a question is a sentence, not a corpus.
MAX_BODY_BYTES = 1 << 20

#: Budget for one sibling-worker metrics fetch during aggregation.
PEER_TIMEOUT_S = 2.0


class QAServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` that owns a reference to the engine.

    Parameters
    ----------
    address:
        ``(host, port)`` to bind — ignored when ``sock`` is given.
    engine:
        The warm :class:`QAEngine` answering requests.
    sock:
        An already-bound listening socket to adopt instead of binding a
        fresh one.  The pre-fork supervisor binds (``SO_REUSEPORT`` or a
        single shared socket) in the parent and each worker wraps its
        inherited socket this way.
    worker:
        ``{"index": int, "pid": int, "workers": int}`` identifying this
        process in a multi-worker deployment (surfaced on ``/healthz``).
    peers:
        Sibling admin endpoints ``[{"index": int, "url": str}, ...]``
        (including this worker's own entry); when set, ``GET /metrics``
        aggregates counters and histograms across all of them.
    ingest_token:
        Shared secret enabling the write endpoints (``POST /ingest``,
        ``POST /compact``).  None (the default) keeps them disabled —
        every write answers 403.  Single-worker only: in a pre-fork
        deployment each worker holds its own copy of the store, so a
        write applied to one would silently diverge the others.
    """

    daemon_threads = True
    #: Let quick restarts (tests, CI) rebind the port immediately.
    allow_reuse_address = True
    #: Load tests open a fresh TCP connection per request from many
    #: clients at once; the stdlib default backlog of 5 drops the burst
    #: with connection resets.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        engine: QAEngine,
        sock: socket.socket | None = None,
        worker: dict | None = None,
        peers: list[dict] | None = None,
        ingest_token: str | None = None,
    ):
        if sock is None:
            super().__init__(address, _Handler)
        else:
            # Adopt the inherited socket: skip bind, replace the fresh
            # unbound socket the base constructor made, then activate
            # (listen() on an already-listening socket is idempotent).
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()
            self.socket = sock
            self.server_address = sock.getsockname()
            host, port = self.server_address[:2]
            self.server_name = host
            self.server_port = port
            self.server_activate()
        self.engine = engine
        self.worker = worker
        self.peers = peers
        self.ingest_token = ingest_token


class _Handler(BaseHTTPRequestHandler):
    #: Advertised in error bodies and the Server header.
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler casing)
        engine: QAEngine = self.server.engine
        if self.path == "/healthz":
            body = {
                "status": "ok" if engine.ready else "starting",
                "ready": engine.ready,
                "uptime_s": round(engine.uptime_s(), 3),
                "store_version": engine.store_version,
                "pid": os.getpid(),
            }
            if self.server.worker is not None:
                body["worker"] = self.server.worker
            self._send_json(200 if engine.ready else 503, body)
        elif self.path == "/metrics":
            if self.server.peers:
                self._send_json(200, self._cluster_metrics())
            else:
                self._send_json(200, engine.metrics.snapshot())
        elif self.path == "/stats":
            self._send_json(200, engine.stats())
        else:
            self._send_json(404, {"error": f"no such route: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        engine: QAEngine = self.server.engine
        if self.path not in ("/ask", "/batch", "/ingest", "/compact"):
            self._send_json(404, {"error": f"no such route: {self.path}"})
            return
        if self.path in ("/ingest", "/compact") and not self._authorize_write():
            return  # _authorize_write already answered 401/403
        payload = self._read_json()
        if payload is None:
            return  # _read_json already answered
        try:
            if self.path == "/ask":
                self._handle_ask(engine, payload)
            elif self.path == "/ingest":
                self._handle_ingest(engine, payload)
            elif self.path == "/compact":
                self._handle_compact(engine, payload)
            else:
                self._handle_batch(engine, payload)
        except AdmissionRejected as rejected:
            self._send_json(
                429,
                {
                    "error": "server busy",
                    "in_flight": rejected.in_flight,
                    "capacity": rejected.capacity,
                },
                headers={"Retry-After": "1"},
            )
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up while we were answering; nothing to send
            # and nobody to send it to.
            self._client_disconnected()
        except Exception as error:  # pragma: no cover - defensive surface
            engine.metrics.incr("serve.internal_errors")
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})

    # ------------------------------------------------------------------ #

    def _handle_ask(self, engine: QAEngine, payload: dict) -> None:
        question = payload.get("question")
        if not isinstance(question, str) or not question.strip():
            self._send_json(400, {"error": "'question' must be a non-empty string"})
            return
        deadline_s = _optional_number(payload, "deadline_s")
        if deadline_s is _INVALID:
            self._send_json(400, {"error": "'deadline_s' must be a positive number"})
            return
        response = engine.ask(
            question,
            deadline_s=deadline_s,
            trace=bool(payload.get("trace", False)),
            use_cache=not bool(payload.get("no_cache", False)),
        )
        self._send_json(200, response)

    def _handle_batch(self, engine: QAEngine, payload: dict) -> None:
        questions = payload.get("questions")
        if (
            not isinstance(questions, list)
            or not questions
            or not all(isinstance(q, str) and q.strip() for q in questions)
        ):
            self._send_json(
                400, {"error": "'questions' must be a non-empty list of strings"}
            )
            return
        deadline_s = _optional_number(payload, "deadline_s")
        if deadline_s is _INVALID:
            self._send_json(400, {"error": "'deadline_s' must be a positive number"})
            return
        responses = engine.batch(
            questions,
            deadline_s=deadline_s,
            use_cache=not bool(payload.get("no_cache", False)),
        )
        self._send_json(200, {"responses": responses})

    # ------------------------------------------------------------------ #
    # Live ingest
    # ------------------------------------------------------------------ #

    def _authorize_write(self) -> bool:
        """Token-gate the write endpoints; False after answering 401/403.

        Runs *before* the body is read, so rejections close the
        connection (the same keep-alive reasoning as 411/413: leaving the
        unread body on the socket would poison the next request).
        """
        token = self.server.ingest_token
        if token is None:
            self._send_json(
                403,
                {"error": "ingest is disabled (server started without a token)"},
                close=True,
            )
            return False
        provided = self.headers.get("X-Ingest-Token")
        if provided is None:
            auth = self.headers.get("Authorization", "")
            if auth.startswith("Bearer "):
                provided = auth[len("Bearer "):]
        if provided is None or not hmac.compare_digest(provided, token):
            self.server.engine.metrics.incr("serve.ingest.unauthorized")
            self._send_json(401, {"error": "bad or missing ingest token"}, close=True)
            return False
        return True

    def _handle_ingest(self, engine: QAEngine, payload: dict) -> None:
        adds = _parse_wire_triples(payload.get("add", []))
        if isinstance(adds, str):
            self._send_json(400, {"error": f"'add': {adds}"})
            return
        removes = _parse_wire_triples(payload.get("remove", []))
        if isinstance(removes, str):
            self._send_json(400, {"error": f"'remove': {removes}"})
            return
        if not adds and not removes:
            self._send_json(
                400, {"error": "batch is empty ('add' and/or 'remove' required)"}
            )
            return
        self._send_json(200, engine.ingest(adds, removes))

    def _handle_compact(self, engine: QAEngine, payload: dict) -> None:
        shards = payload.get("shards")
        if shards is not None and (
            isinstance(shards, bool) or not isinstance(shards, int) or shards < 1
        ):
            self._send_json(400, {"error": "'shards' must be a positive integer"})
            return
        snapshot_path = payload.get("snapshot_path")
        if snapshot_path is not None and not isinstance(snapshot_path, str):
            self._send_json(400, {"error": "'snapshot_path' must be a string"})
            return
        self._send_json(
            200, engine.compact(shards=shards, snapshot_path=snapshot_path)
        )

    # ------------------------------------------------------------------ #
    # Cluster introspection
    # ------------------------------------------------------------------ #

    def _cluster_metrics(self) -> dict:
        """``/metrics`` aggregated across every worker's admin endpoint.

        The local registry is read directly; siblings are fetched over
        their loopback admin ports with a short timeout.  A worker that
        cannot be reached (mid-respawn) is reported in its per-worker
        entry and simply missing from the merged totals — aggregation
        degrades, it never 500s.
        """
        local_index = (self.server.worker or {}).get("index")
        snapshots: list[dict] = []
        workers: list[dict] = []
        for peer in self.server.peers:
            entry: dict = {"index": peer["index"], "url": peer["url"]}
            if peer["index"] == local_index:
                snap = self.server.engine.metrics.snapshot()
                entry["pid"] = os.getpid()
            else:
                try:
                    with urllib.request.urlopen(
                        f"{peer['url']}/metrics", timeout=PEER_TIMEOUT_S
                    ) as response:
                        snap = json.loads(response.read())
                    with urllib.request.urlopen(
                        f"{peer['url']}/healthz", timeout=PEER_TIMEOUT_S
                    ) as response:
                        entry["pid"] = json.loads(response.read()).get("pid")
                except (urllib.error.URLError, ConnectionError, OSError, TimeoutError) as exc:
                    entry["error"] = str(exc)
                    workers.append(entry)
                    continue
            entry["counters"] = snap.get("counters", {})
            snapshots.append(snap)
            workers.append(entry)
        merged = merge_snapshots(snapshots)
        merged["workers"] = workers
        return merged

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _read_json(self) -> dict | None:
        """The request body as a JSON object, or None after answering.

        Rejections that happen *before* the body was consumed (missing
        length, oversized) close the connection: on HTTP/1.1 keep-alive
        the unread body would otherwise be parsed as the next request.
        """
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            # Chunked or absent framing: we cannot know where the body
            # ends, so we cannot drain it — reject and close.
            self._send_json(
                411, {"error": "Content-Length required (JSON object body)"},
                close=True,
            )
            return None
        try:
            length = int(length_header)
        except ValueError:
            length = -1
        if length <= 0:
            self._send_json(
                400, {"error": "request body required (JSON object)"}, close=True
            )
            return None
        if length > MAX_BODY_BYTES:
            # Refusing to read MAX+ bytes is the point; the unread body
            # makes the connection unusable, so it goes down with the 413.
            self._send_json(
                413,
                {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"},
                close=True,
            )
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._send_json(400, {"error": "request body is not valid JSON"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return None
        return payload

    def _send_json(
        self,
        status: int,
        body: dict,
        headers: dict[str, str] | None = None,
        close: bool = False,
    ) -> None:
        encoded = json.dumps(body, default=str).encode("utf-8")
        if close:
            self.close_connection = True
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            if close:
                self.send_header("Connection", "close")
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):
            self._client_disconnected()

    def _client_disconnected(self) -> None:
        """Account a mid-response hangup and stop talking to the socket."""
        self.close_connection = True
        self.server.engine.metrics.incr("serve.client_disconnects")

    def log_message(self, format: str, *args) -> None:
        # Per-request stderr lines would swamp load tests; the engine's
        # metrics registry is the serving log.
        pass


_INVALID = object()


def _parse_wire_triples(items) -> "list[Triple] | str":
    """Decode wire-format triples; returns an error string on bad input.

    Each item is ``[s, p, o]`` — subject/predicate IRI strings, object an
    IRI string or ``{"literal": ..., "language"?: ..., "datatype"?: ...}``.
    """
    if not isinstance(items, list):
        return "must be a list of [s, p, o] triples"
    triples: list[Triple] = []
    for position, item in enumerate(items):
        if not isinstance(item, list) or len(item) != 3:
            return f"item {position} is not an [s, p, o] triple"
        s, p, o = item
        if not isinstance(s, str) or not s:
            return f"item {position}: subject must be an IRI string"
        if not isinstance(p, str) or not p:
            return f"item {position}: predicate must be an IRI string"
        obj: IRI | Literal
        if isinstance(o, str) and o:
            obj = IRI(o)
        elif isinstance(o, dict) and isinstance(o.get("literal"), str):
            language = o.get("language")
            datatype = o.get("datatype")
            if language is not None and not isinstance(language, str):
                return f"item {position}: 'language' must be a string"
            if datatype is not None and not isinstance(datatype, str):
                return f"item {position}: 'datatype' must be an IRI string"
            if language is not None and datatype is not None:
                return f"item {position}: literal cannot have both language and datatype"
            obj = Literal(
                o["literal"],
                datatype=IRI(datatype) if datatype is not None else None,
                language=language,
            )
        else:
            return (
                f"item {position}: object must be an IRI string or "
                "{'literal': ...}"
            )
        triples.append(Triple(IRI(s), IRI(p), obj))
    return triples


def _optional_number(payload: dict, key: str):
    """The positive float at ``key``, None when absent, _INVALID when bad."""
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        return _INVALID
    return float(value)


def build_server(
    engine: QAEngine,
    host: str = "127.0.0.1",
    port: int = 8765,
    ingest_token: str | None = None,
) -> QAServer:
    """A bound (not yet serving) server; ``port=0`` picks an ephemeral port
    (read it back from ``server.server_address[1]`` — tests rely on this).
    ``ingest_token`` enables the authenticated write endpoints.
    """
    return QAServer((host, port), engine, ingest_token=ingest_token)
