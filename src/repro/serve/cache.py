"""Serving-layer caches: LRU+TTL answer cache and entity-link cache.

Keys carry the **store version** (:attr:`TripleStore.version`) and a
**config fingerprint** alongside the normalized question text, so a cached
entry can never be served across a store mutation or an engine
reconfiguration: after ``KnowledgeGraph.refresh()`` follows a mutation,
every lookup computes a different key and misses, and the stale entries
age out of the LRU tail.  There is deliberately no explicit flush — the
versioned keys make stale reads structurally impossible rather than
operationally avoided.

Counters (``serve.cache.{hit,miss,evict,expired}``, and the same under
``serve.link_cache.*``) are reported into whatever :class:`repro.obs.Metrics`
registry the owner passes in; the registry itself is thread-safe.
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.contracts import guarded_by, single_threaded
from repro.obs.metrics import MetricsLike, NoopMetrics

_WHITESPACE_RE = re.compile(r"\s+")


def normalize_question(question: str) -> str:
    """Canonical cache form of a question: case, spacing, end punctuation.

    "Who is the mayor of Berlin?", "who is the  mayor of berlin" and
    "WHO IS THE MAYOR OF BERLIN ?" all map to one key.  Internal
    punctuation stays — it can be meaningful ("U.S.", "Benedict XVI").
    """
    collapsed = _WHITESPACE_RE.sub(" ", question).strip()
    return collapsed.rstrip(" ?!.").casefold()


@guarded_by("_lock", "_entries", "_hits", "_misses", "_evictions")
class TTLCache:
    """Thread-safe LRU cache whose entries also expire after ``ttl`` seconds.

    ``maxsize=0`` disables the cache entirely (every ``get`` misses, ``put``
    is a no-op) — the serving engine's cache-off switch.  ``clock`` is
    injectable for deterministic TTL tests.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsLike | None = None,
        name: str = "serve.cache",
    ):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.maxsize = maxsize
        self.ttl = ttl
        self.clock = clock
        self.metrics = metrics if metrics is not None else NoopMetrics()
        self.name = name
        self._entries: OrderedDict[Hashable, tuple[float, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value, or None on miss/expiry (refreshes LRU order)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_at, value = entry
                if self.clock() - stored_at < self.ttl:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    self.metrics.incr(f"{self.name}.hit")
                    return value
                del self._entries[key]
                self.metrics.incr(f"{self.name}.expired")
            self._misses += 1
            self.metrics.incr(f"{self.name}.miss")
            return None

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if self.maxsize == 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self.clock(), value)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                self.metrics.incr(f"{self.name}.evict")

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every entry; ``reset_stats`` also zeroes the lifetime
        hit/miss/eviction counters."""
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self._hits = 0
                self._misses = 0
                self._evictions = 0

    @single_threaded
    def reset_after_fork(self) -> None:
        """Start this cache fresh in a freshly-forked, single-threaded child.

        Drops entries *and* stats (inherited entries carry the parent's
        monotonic clock anchors; inherited counters would misattribute the
        parent's traffic) and — unlike :meth:`clear` — replaces the lock:
        a parent thread holding ``_lock`` at fork time leaves the copied
        lock locked forever in the child.
        """
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters + occupancy, the shape ``GET /stats`` reports."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "ttl_s": self.ttl,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": round(self._hits / lookups, 4) if lookups else 0.0,
            }


def answer_cache_key(
    question: str, store_version: int, fingerprint: str
) -> tuple[str, int, str]:
    """Cache key of one answered question under one engine configuration."""
    return (normalize_question(question), store_version, fingerprint)


class CachingLinker:
    """An :class:`EntityLinker` wrapper sharing link candidates via a TTL cache.

    Entity linking is the one per-question stage whose inputs repeat across
    *different* questions (the same argument phrase shows up everywhere),
    so the serving engine shares one candidate cache across all requests.
    Keys include the store version; everything else delegates to the
    wrapped linker, including the ``index`` attribute the phrase mapper's
    longest-match probe reads.
    """

    def __init__(self, linker, cache: TTLCache, store):
        self._linker = linker
        self._cache = cache
        self._store = store

    def link(self, phrase: str, tracer=None) -> list:
        key = (phrase, self._store.version)
        cached = self._cache.get(key)
        if cached is not None:
            return list(cached)
        candidates = self._linker.link(phrase, tracer=tracer)
        # Store a tuple: cached values are shared between threads and must
        # never alias the mutable list a caller might sort or trim.
        self._cache.put(key, tuple(candidates))
        return candidates

    def __getattr__(self, name: str):
        return getattr(self._linker, name)
