"""The warm QA engine: one long-lived pipeline amortized across requests.

The paper's online phase (Section 4.2, Table 11) answers in sub-second
time *because* everything expensive — the paraphrase dictionary, the
linker's label index, the adjacency kernel — was built offline.  The
one-shot CLI pays that setup on every invocation; :class:`QAEngine` pays
it once at startup and then serves questions from a bounded thread pool:

* **warm state** — knowledge graph, mined dictionary, entity-linker index
  and adjacency kernel are constructed (and exercised) in :meth:`warm`;
* **caching** — answers and entity-link candidates are cached under keys
  that include the store version and a config fingerprint
  (:mod:`repro.serve.cache`), so `KnowledgeGraph.refresh()` after a store
  mutation invalidates by construction;
* **admission control** — at most ``pool_size + queue_limit`` requests in
  flight; beyond that :class:`AdmissionRejected` (HTTP 429 upstream);
* **deadlines** — a per-request budget threaded into the top-k search,
  which stops cooperatively and returns partial top-k with
  ``terminated_by="deadline"``;
* **degradation** — past a pressure threshold requests are answered by a
  degraded pipeline (smaller k, trimmed candidate lists) and marked
  ``degraded: true``.

Each request runs under its own tracer (or the no-op), never the
process-wide default: the recording :class:`~repro.obs.Tracer` keeps a
span *stack* and is single-threaded by design.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.contracts import fork_shared, guarded_by, single_threaded
from repro.core.pipeline import Answer, GAnswer
from repro.exceptions import EngineClosedError
from repro.linking.linker import EntityLinker
from repro.obs.metrics import Metrics
from repro.paraphrase.dictionary import ParaphraseDictionary
from repro.rdf.backend import CompactBackend
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.overlay import OverlayBackend
from repro.rdf.terms import Triple
from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.cache import CachingLinker, TTLCache, answer_cache_key

__all__ = ["EngineConfig", "QAEngine", "ServedSystem", "AdmissionRejected"]


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Tunables of one serving engine (all surfaced as CLI flags)."""

    k: int = 10                       # top-k matches per question
    pool_size: int = 4                # worker threads answering questions
    queue_limit: int = 12             # extra requests allowed to wait
    deadline_s: float | None = 10.0   # default per-request budget (None = off)
    cache_size: int = 1024            # answer cache entries (0 disables)
    cache_ttl_s: float = 300.0        # answer cache TTL
    link_cache_size: int = 4096       # entity-link candidate cache entries
    link_cache_ttl_s: float = 600.0   # link cache TTL
    degrade_pressure: float = 0.75    # admission occupancy that triggers degradation
    degraded_k: int = 3               # top-k under degradation
    degraded_candidate_limit: int = 3  # candidate-list width under degradation
    enable_aggregation: bool = False  # superlative post-processing extension
    ingest_capacity: int = 2          # ingest batches in flight (excess → 429)

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if not 0.0 <= self.degrade_pressure <= 1.0:
            raise ValueError("degrade_pressure must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.ingest_capacity < 1:
            raise ValueError("ingest_capacity must be at least 1")

    def fingerprint(self) -> str:
        """Stable digest of every knob that changes *answers* (cache key part)."""
        return (
            f"k={self.k};agg={int(self.enable_aggregation)};"
            f"dk={self.degraded_k};dcl={self.degraded_candidate_limit}"
        )


@dataclass(slots=True)
class EngineResult:
    """What the engine computed for one question (the cacheable part)."""

    answer: Answer
    degraded: bool = False
    #: Monotonic timestamp of computation — informational only; freshness
    #: is enforced by the answer cache's own TTL clock.  Only meaningful
    #: within the process that computed it: monotonic anchors do not
    #: travel across a fork, which is why :meth:`QAEngine.reset_after_fork`
    #: drops inherited cache entries instead of trusting their stamps.
    computed_at: float = field(default_factory=time.monotonic)


@guarded_by("_state_lock", "_ready", "_closed")
@fork_shared("config", "kg", "dictionary", "linker", "_system", "_degraded_system")
class QAEngine:
    """A resident :class:`GAnswer` wrapper serving many questions.

    Parameters
    ----------
    kg, dictionary:
        The warm offline state: knowledge graph and mined paraphrase
        dictionary (share them with the offline miner / evaluation).
    config:
        An :class:`EngineConfig`; defaults serve interactive workloads.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        dictionary: ParaphraseDictionary,
        config: EngineConfig | None = None,
        base_linker: EntityLinker | None = None,
    ):
        self.config = config if config is not None else EngineConfig()
        self.kg = kg
        self.dictionary = dictionary
        self.metrics = Metrics()
        self.answer_cache = TTLCache(
            maxsize=self.config.cache_size,
            ttl=self.config.cache_ttl_s,
            metrics=self.metrics,
            name="serve.cache",
        )
        self.link_cache = TTLCache(
            maxsize=self.config.link_cache_size,
            ttl=self.config.link_cache_ttl_s,
            metrics=self.metrics,
            name="serve.link_cache",
        )
        if base_linker is None:
            base_linker = EntityLinker(kg)
        self.linker = CachingLinker(base_linker, self.link_cache, kg.store)
        self._system = GAnswer(
            kg,
            dictionary,
            k=self.config.k,
            enable_aggregation=self.config.enable_aggregation,
            linker=self.linker,
        )
        self._degraded_system = GAnswer(
            kg,
            dictionary,
            k=self.config.degraded_k,
            enable_aggregation=self.config.enable_aggregation,
            linker=self.linker,
            candidate_limit=self.config.degraded_candidate_limit,
        )
        self.admission = AdmissionController(
            capacity=self.config.pool_size + self.config.queue_limit,
            metrics=self.metrics,
        )
        self.write_admission = AdmissionController(
            capacity=self.config.ingest_capacity,
            metrics=self.metrics,
            prefix="serve.ingest",
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.pool_size, thread_name_prefix="qa-engine"
        )
        self._trace_ids = itertools.count(1)
        self._started_at = time.monotonic()
        self._ready = False
        self._closed = False
        self._warm_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._ingest_lock = threading.Lock()

    @classmethod
    def from_snapshot(
        cls, path, config: EngineConfig | None = None
    ) -> "QAEngine":
        """An engine booted from a compiled snapshot (``repro compile``).

        The snapshot restores the frozen store, the prebuilt kernel and
        graph caches, the id-level paraphrase dictionary, and the
        compiled linker index — :meth:`warm` then finds everything
        already built, so cold start is dominated by file decode instead
        of parsing, re-indexing, and label scanning.
        """
        from repro.rdf.snapshot import load_snapshot

        state = load_snapshot(path)
        return cls(
            state.kg,
            state.dictionary,
            config,
            base_linker=state.build_linker(),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def warm(self) -> dict:
        """Build every lazy structure the first request would otherwise pay.

        Touches the adjacency kernel, the class set, the label index, and
        the linker's label index; returns the kernel statistics so callers
        (the CLI, /healthz diagnostics) can report the warmed footprint.
        Idempotent and safe to call concurrently.
        """
        with self._warm_lock:
            with self.metrics_span("serve.warmup"):
                kernel = self.kg.kernel
                _ = self.kg.class_ids
                _ = self.kg.label_index
                _ = self.linker.index  # builds the wrapped linker's LabelIndex
                stats = kernel.statistics()
            with self._state_lock:
                self._ready = True
            return stats

    def metrics_span(self, name: str):
        """A duration observation recorded as ``{name}_ms`` on exit."""
        engine = self

        class _Timed:
            def __enter__(self):
                self._started = time.monotonic()
                return self

            def __exit__(self, exc_type, exc, tb):
                engine.metrics.observe(
                    f"{name}_ms", (time.monotonic() - self._started) * 1000.0
                )
                return False

        return _Timed()

    @property
    def ready(self) -> bool:
        with self._state_lock:
            return self._ready and not self._closed

    @property
    def store_version(self) -> int:
        return self.kg.store_version

    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    def refresh(self) -> None:
        """Re-derive graph caches after a store mutation.

        The answer/link caches need no flush: their keys carry the store
        version, so entries computed before the mutation can no longer be
        looked up.
        """
        self.kg.refresh()

    @single_threaded
    def reset_after_fork(self) -> "QAEngine":
        """Re-anchor every per-process structure in a forked worker.

        ``os.fork()`` copies the engine's Python state but not its
        threads, and monotonic clock anchors taken in the parent are not
        meaningful in the child (``CLOCK_MONOTONIC`` happens to be
        system-wide on Linux, but nothing guarantees it elsewhere, and a
        cache entry stamped before the fork describes the parent's
        traffic either way).  Call this in the child — while it is still
        single-threaded, before serving — to rebuild:

        * the worker pool (the parent's pool threads do not exist here);
        * the admission controller (fresh in-flight/peak accounting);
        * the answer/link caches (entries + stats dropped; TTL anchors
          restart on this process's clock; their *locks* are replaced —
          a parent thread holding one at fork time leaves the copied
          lock locked forever in the child);
        * the metrics registry (same lock-replacement reasoning),
          trace-id counter, uptime anchor, and the engine's own locks.

        The expensive shared state — knowledge graph, kernel rows,
        dictionary, linker index, and any mmap-backed triple columns —
        is untouched: that is exactly what the fork is sharing.
        Returns ``self``; call :meth:`warm` afterwards to flip ready.
        """
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.pool_size, thread_name_prefix="qa-engine"
        )
        self.metrics.reset_after_fork()
        self.admission = AdmissionController(
            capacity=self.config.pool_size + self.config.queue_limit,
            metrics=self.metrics,
        )
        self.write_admission = AdmissionController(
            capacity=self.config.ingest_capacity,
            metrics=self.metrics,
            prefix="serve.ingest",
        )
        self.answer_cache.reset_after_fork()
        self.link_cache.reset_after_fork()
        self._warm_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._ingest_lock = threading.Lock()
        self._trace_ids = itertools.count(1)
        self._started_at = time.monotonic()
        self._ready = False
        self._closed = False
        return self

    def close(self) -> None:
        with self._state_lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QAEngine":
        self.warm()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #

    def ask(
        self,
        question: str,
        deadline_s: float | None = None,
        trace: bool = False,
        use_cache: bool = True,
    ) -> dict:
        """Answer one question through admission control and the pool.

        Returns the JSON-ready response dict (see :meth:`_render`).
        Raises :class:`AdmissionRejected` when the request budget is full.
        ``use_cache=False`` bypasses the answer cache in both directions
        (no lookup, no store) — the load test's cache-miss passes use it
        to measure the engine instead of the cache.
        """
        with self.admission.admit():
            future = self._submit(question, deadline_s, trace, use_cache)
            result, tracer, from_cache = future.result()
        return self._render(result, tracer, from_cache)

    def batch(
        self,
        questions: list[str],
        deadline_s: float | None = None,
        use_cache: bool = True,
    ) -> list[dict]:
        """Fan a list of questions out over the pool; one response per
        question, in order.  Questions the admission budget rejects come
        back as ``{"error": "busy"}`` entries instead of failing the batch.
        """
        pending: list[tuple[Future | None, object | None]] = []
        for question in questions:
            try:
                token = self.admission.admit()
            except AdmissionRejected:
                pending.append((None, None))
                continue
            pending.append(
                (self._submit(question, deadline_s, False, use_cache), token)
            )
        responses: list[dict] = []
        for future, token in pending:
            if future is None:
                responses.append({"error": "busy", "status": 429})
                continue
            try:
                result, tracer, from_cache = future.result()
                responses.append(self._render(result, tracer, from_cache))
            finally:
                token.release()
        return responses

    def ask_answer(self, question: str, deadline_s: float | None = None) -> Answer:
        """The raw pipeline :class:`Answer` through the warm path.

        The interactive shell and the served evaluation adapter use this:
        same admission, pool, cache, and degradation behavior as
        :meth:`ask`, but the caller gets term objects instead of strings.
        Treat the result as read-only — cached answers are shared.
        """
        with self.admission.admit():
            result, _tracer, _cached = self._submit(
                question, deadline_s, False, True
            ).result()
        return result.answer

    def as_system(self) -> "ServedSystem":
        """An ``evaluate_system``-compatible adapter over this engine."""
        return ServedSystem(self)

    # ------------------------------------------------------------------ #
    # Live ingest
    # ------------------------------------------------------------------ #

    def _ensure_writable(self) -> None:
        """Wrap a frozen store in a writable overlay, once, in place.

        Caller holds ``_ingest_lock``.  The swap keeps length and version
        (the overlay starts with an empty delta), so readers and the
        kernel are unaffected; only the facade's backend pointer changes.
        """
        store = self.kg.store
        if not store.writable:
            store.swap_backend(OverlayBackend(store.backend))

    def ingest(
        self,
        adds: list[Triple],
        removes: list[Triple] | None = None,
        tracer: "obs.Tracer | None" = None,
    ) -> dict:
        """Apply one batch of triple adds/removes to the live store.

        Writers serialize on the ingest lock; at most
        ``config.ingest_capacity`` batches may be in flight (running or
        waiting on the lock) before :class:`AdmissionRejected` — writes
        get their own admission budget so a write burst turns into 429s
        instead of starving question answering.

        After the batch lands the graph is refreshed with *incremental*
        kernel patching: only adjacency rows of touched nodes are
        rebuilt, the rest are reused by reference.  Readers never block —
        the overlay publishes rows copy-on-write and the version bump per
        mutation invalidates answer-cache entries by construction.
        """
        removes = removes if removes is not None else []
        span = tracer.span if tracer is not None else obs.NOOP.span
        with self.write_admission.admit():
            with self._ingest_lock:
                with self.metrics_span("serve.ingest"):
                    self._ensure_writable()
                    store = self.kg.store
                    with span("ingest.apply", adds=len(adds), removes=len(removes)):
                        removed = sum(1 for triple in removes if store.remove(triple))
                        added = store.add_all(adds)
                    if added or removed:
                        with span("ingest.refresh"):
                            self.kg.refresh(incremental=True)
        self.metrics.incr("serve.ingest.requests")
        self.metrics.incr("serve.ingest.added_triples", added)
        self.metrics.incr("serve.ingest.removed_triples", removed)
        backend = self.kg.store.backend
        delta = getattr(backend, "delta_statistics", None)
        return {
            "added": added,
            "removed": removed,
            "store_version": self.store_version,
            "triples": len(self.kg.store),
            "delta": delta() if delta is not None else None,
        }

    def compact(
        self,
        shards: int | None = None,
        snapshot_path: str | None = None,
    ) -> dict:
        """Re-compact base + delta into a fresh frozen base and swap it in.

        Runs under the ingest lock (writers pause; readers keep going
        against the old backend) and swaps atomically: the new backend is
        a fresh overlay with an empty delta over a rebuilt frozen base
        holding identical content at the same version, so the kernel and
        every version-keyed cache stay valid with no refresh.  In-flight
        iterators drain against the old backend, whose mmap (if any) is
        released when the last reference drops.

        ``shards=K`` rebuilds into a sharded base; ``snapshot_path``
        additionally persists a compiled snapshot of the compacted state
        (single-file, or sharded when ``shards`` is set).
        """
        with self._ingest_lock:
            with self.metrics_span("serve.compact"):
                store = self.kg.store
                old = store.backend
                version = old.version
                if shards is not None and shards > 1:
                    from repro.rdf.shard import ShardedBackend

                    frozen = ShardedBackend.from_triples(
                        old.triples_ids(), shards=shards, version=version
                    )
                else:
                    frozen = CompactBackend.from_triples(
                        old.triples_ids(), version=version
                    )
                store.swap_backend(OverlayBackend(frozen))
                if snapshot_path is not None:
                    from repro.rdf.snapshot import compile_snapshot

                    compile_snapshot(
                        snapshot_path, self.kg, self.dictionary, shards=shards
                    )
        self.metrics.incr("serve.compactions")
        return {
            "triples": len(self.kg.store),
            "store_version": self.store_version,
            "shards": shards,
            "snapshot": snapshot_path,
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _submit(
        self, question: str, deadline_s: float | None, trace: bool,
        use_cache: bool = True,
    ) -> Future:
        with self._state_lock:
            if self._closed:
                raise EngineClosedError("engine is closed")
        return self._pool.submit(
            self._process, question, deadline_s, trace, use_cache
        )

    def _process(
        self, question: str, deadline_s: float | None, trace: bool,
        use_cache: bool = True,
    ) -> tuple[EngineResult, "obs.Tracer | None", bool]:
        started = time.monotonic()
        self.metrics.incr("serve.requests")
        key = answer_cache_key(
            question, self.store_version, self.config.fingerprint()
        )
        if use_cache:
            cached = self.answer_cache.get(key)
            if cached is not None:
                self.metrics.observe(
                    "serve.latency_ms", (time.monotonic() - started) * 1000.0
                )
                return cached, None, True
        else:
            self.metrics.incr("serve.cache_bypass")

        degraded = self.admission.pressure() >= self.config.degrade_pressure
        system = self._degraded_system if degraded else self._system
        if degraded:
            self.metrics.incr("serve.degraded")

        budget = deadline_s if deadline_s is not None else self.config.deadline_s
        deadline = None if budget is None else started + budget
        tracer = obs.Tracer() if trace else obs.NOOP
        answer = system.answer(question, tracer=tracer, deadline=deadline)

        result = EngineResult(answer=answer, degraded=degraded)
        if answer.terminated_by == "deadline":
            self.metrics.incr("serve.deadline_expired")
        elif not degraded and use_cache:
            # Partial (deadline-cut) and degraded answers are never cached:
            # a later uncontended request should get the full-quality one.
            # Bypassed requests don't store either — a cache-miss
            # measurement pass must not warm the cache it is avoiding.
            self.answer_cache.put(key, result)
        self.metrics.observe(
            "serve.latency_ms", (time.monotonic() - started) * 1000.0
        )
        return result, (tracer if trace else None), False

    def _render(self, result: EngineResult, tracer, from_cache: bool = False) -> dict:
        """The JSON response body for one computed (or cached) result."""
        answer = result.answer
        response = {
            "trace_id": f"req-{next(self._trace_ids)}",
            "question": answer.question,
            "answers": [str(term) for term in answer.answers],
            "boolean": answer.boolean,
            "processed": answer.processed,
            "failure": answer.failure,
            "terminated_by": answer.terminated_by,
            "sparql": answer.sparql_queries[0] if answer.sparql_queries else None,
            "degraded": result.degraded,
            "cached": from_cache,
            "store_version": self.store_version,
            "timings_ms": {
                "understanding": round(answer.understanding_time * 1000.0, 3),
                "evaluation": round(answer.evaluation_time * 1000.0, 3),
                "total": round(answer.total_time * 1000.0, 3),
            },
        }
        if tracer is not None and tracer.enabled:
            response["trace"] = tracer.summary()
        return response

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """The ``GET /stats`` body: caches, admission, kernel, store."""
        backend = self.kg.store.backend
        store_stats: dict = {"backend": type(backend).__name__}
        delta = getattr(backend, "delta_statistics", None)
        if delta is not None:
            # Overlay store: base/delta/tombstone sizes tell operators
            # when an online compaction is worth triggering.
            store_stats["overlay"] = delta()
        shards = getattr(backend, "shards", None)
        if shards is not None:
            # Sharded store: report residency so operators can see lazy
            # segment loading (and eviction) at work.
            store_stats["shards"] = shards
            store_stats["loaded_segments"] = backend.loaded_segments()
        return {
            "store_version": self.store_version,
            "uptime_s": round(self.uptime_s(), 3),
            "ready": self.ready,
            "store": store_stats,
            "config": {
                "k": self.config.k,
                "pool_size": self.config.pool_size,
                "queue_limit": self.config.queue_limit,
                "deadline_s": self.config.deadline_s,
                "degrade_pressure": self.config.degrade_pressure,
                "degraded_k": self.config.degraded_k,
            },
            "answer_cache": self.answer_cache.stats(),
            "link_cache": self.link_cache.stats(),
            "admission": self.admission.stats(),
            "kernel": self.kg.kernel.statistics(),
        }


class ServedSystem:
    """Adapter: the engine as an ``evaluate_system``-compatible system.

    Each ``answer()`` goes through the engine's full serving path —
    admission, pool, answer cache, degradation — so an evaluation run
    through it exercises exactly what production requests exercise.
    """

    def __init__(self, engine: QAEngine):
        self.engine = engine

    def answer(self, question: str) -> Answer:
        return self.engine.ask_answer(question)
