"""Resident serving layer over the GAnswer pipeline.

The paper splits work into an offline phase (paraphrase-dictionary
mining) and an online phase that must answer interactively (Section 1,
Table 11).  This package is the online phase as a *service*: one warm
:class:`QAEngine` holding the knowledge graph, dictionary, linker index
and adjacency kernel, a bounded worker pool with admission control and
per-request deadlines, versioned answer/link caches, and a stdlib-only
JSON HTTP transport (:mod:`repro.serve.server`).

Entry points: ``repro serve`` (CLI), :func:`QAEngine.ask` (in-process),
``scripts/load_test.py`` (benchmark → ``BENCH_serve.json``).
"""

from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.cache import CachingLinker, TTLCache, answer_cache_key, normalize_question
from repro.serve.engine import EngineConfig, QAEngine, ServedSystem
from repro.serve.prefork import PreforkServer, supports_reuseport
from repro.serve.server import QAServer, build_server

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "CachingLinker",
    "EngineConfig",
    "PreforkServer",
    "QAEngine",
    "QAServer",
    "ServedSystem",
    "TTLCache",
    "answer_cache_key",
    "build_server",
    "normalize_question",
    "supports_reuseport",
]
