"""Pre-fork multi-process serving: N workers behind one port.

A single :class:`QAServer` is thread-per-connection, but CPython's GIL
serializes the CPU-bound QA work, so one process cannot use more than
one core no matter how many threads it runs.  This module runs the same
server in N forked worker processes that all accept on the same
``host:port``:

* **Bind before fork.**  The parent binds one listening socket per
  worker with ``SO_REUSEPORT`` (the kernel load-balances accepts across
  them) — or, where ``SO_REUSEPORT`` is unavailable, a single shared
  socket every worker accepts on.  Binding in the parent means a
  respawned worker inherits a still-valid fd; no re-bind race.
* **Warm once, share pages.**  The engine is built (and its snapshot
  mmapped) in the parent; after ``fork()`` every worker shares the same
  physical pages for the triple columns, so N workers cost one copy of
  the graph.  Each worker calls :meth:`QAEngine.reset_after_fork` to
  rebuild the process-local machinery (thread pool, locks, monotonic
  anchors, caches) that does not survive a fork.
* **Supervise.**  The parent loops in ``waitpid``: a worker that dies is
  respawned from the same inherited sockets; SIGTERM/SIGINT tears the
  whole tree down.  The parent never serves HTTP itself.
* **Aggregate.**  Every worker also serves a loopback *admin* endpoint
  on its own ephemeral port; ``GET /metrics`` on the public port fans
  out to the sibling admin endpoints and merges the registries
  (:func:`repro.obs.metrics.merge_snapshots`), so one scrape sees the
  whole deployment.

Usage (what ``repro serve --workers N`` runs)::

    supervisor = PreforkServer(engine, host="127.0.0.1", port=8765, workers=4)
    host, port = supervisor.start()     # sockets bound, nothing forked yet
    print(f"listening on {host}:{port}")
    supervisor.run()                    # forks workers, supervises until signalled
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
from dataclasses import dataclass, field

from repro.serve.engine import QAEngine
from repro.serve.server import QAServer

__all__ = ["PreforkServer", "supports_reuseport"]


def supports_reuseport() -> bool:
    """Whether this platform can load-balance accepts across per-worker
    sockets; without it the workers share one socket (fork-after-bind)."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    except OSError:  # pragma: no cover - no IPv4 stack
        return False
    with probe:
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        except OSError:  # pragma: no cover - kernel without SO_REUSEPORT
            return False
    return True


def _listener(host: str, port: int, reuseport: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(QAServer.request_queue_size)
    except OSError:
        sock.close()
        raise
    return sock


@dataclass
class _Worker:
    index: int
    listen_sock: socket.socket
    admin_sock: socket.socket
    pid: int = 0
    respawns: int = 0


class PreforkServer:
    """Bind, fork, supervise: N :class:`QAServer` workers on one port.

    The engine must already be constructed (its heavy state — KG, kernel,
    dictionary, mmap columns — is what the forks share); it does not need
    to be warm, each worker warms its own copy after the fork.

    ``max_respawns`` bounds respawns *per worker slot*; a worker that
    keeps crashing stops being restarted (a crash-loop would otherwise
    spin forever), and the supervisor exits once no workers remain.
    """

    def __init__(
        self,
        engine: QAEngine,
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: int = 2,
        max_respawns: int = 8,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.engine = engine
        self.host = host
        self.port = port
        self.workers = workers
        self.max_respawns = max_respawns
        self.reuseport = False
        self._workers: list[_Worker] = []
        self._peers: list[dict] = []
        self._shutdown = threading.Event()

    # ------------------------------------------------------------------ #
    # Parent: bind + supervise
    # ------------------------------------------------------------------ #

    def start(self) -> tuple[str, int]:
        """Bind every socket (public listeners + per-worker admin) in the
        parent and return the public ``(host, port)``.  Nothing forks yet,
        so the caller can print the address before the workers exist."""
        self.reuseport = self.workers > 1 and supports_reuseport()
        listeners: list[socket.socket] = []
        first = _listener(self.host, self.port, self.reuseport)
        listeners.append(first)
        bound_port = first.getsockname()[1]
        if self.reuseport:
            try:
                for _ in range(self.workers - 1):
                    listeners.append(_listener(self.host, bound_port, True))
            except OSError:
                # Some stacks accept the sockopt but refuse the second
                # bind; fall back to one shared socket.
                for extra in listeners[1:]:
                    extra.close()
                listeners = [first]
                self.reuseport = False
        self.port = bound_port
        for index in range(self.workers):
            listen_sock = listeners[index] if self.reuseport else first
            admin_sock = _listener("127.0.0.1", 0, False)
            self._workers.append(_Worker(index, listen_sock, admin_sock))
            self._peers.append(
                {"index": index, "url": f"http://127.0.0.1:{admin_sock.getsockname()[1]}"}
            )
        return self.host, self.port

    def run(self) -> int:
        """Fork the workers and supervise until SIGTERM/SIGINT (or until
        every worker slot has exhausted its respawn budget)."""
        if not self._workers:
            self.start()

        class _Stop(Exception):
            pass

        def _on_signal(signum, frame):
            # Raising is load-bearing: PEP 475 retries waitpid after the
            # handler returns, so a returning handler would never break
            # the supervision loop.
            self._shutdown.set()
            raise _Stop()

        previous = {
            signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
            signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
        }
        for worker in self._workers:
            self._spawn(worker)
        exit_code = 0
        try:
            while True:
                alive = {w.pid: w for w in self._workers if w.pid}
                if not alive:
                    print("repro serve: no workers left, exiting", file=sys.stderr)
                    exit_code = 1
                    break
                try:
                    pid, status = os.waitpid(-1, 0)
                except ChildProcessError:
                    break
                worker = alive.get(pid)
                if worker is None:
                    continue
                worker.pid = 0
                if self._shutdown.is_set():
                    continue
                worker.respawns += 1
                if worker.respawns > self.max_respawns:
                    print(
                        f"repro serve: worker {worker.index} exceeded "
                        f"{self.max_respawns} respawns, giving up on it",
                        file=sys.stderr,
                    )
                    continue
                print(
                    f"repro serve: worker {worker.index} (pid {pid}) exited "
                    f"with status {status}, respawning",
                    file=sys.stderr,
                )
                self._spawn(worker)
        except _Stop:
            pass
        finally:
            self._shutdown.set()
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._terminate_workers()
            self._close_sockets()
        return exit_code

    def _terminate_workers(self) -> None:
        for worker in self._workers:
            if worker.pid:
                try:
                    os.kill(worker.pid, signal.SIGTERM)
                except ProcessLookupError:
                    worker.pid = 0
        for worker in self._workers:
            if worker.pid:
                try:
                    os.waitpid(worker.pid, 0)
                except ChildProcessError:
                    pass
                worker.pid = 0

    def _close_sockets(self) -> None:
        seen: set[int] = set()
        for worker in self._workers:
            for sock in (worker.listen_sock, worker.admin_sock):
                if id(sock) not in seen:
                    seen.add(id(sock))
                    sock.close()

    # ------------------------------------------------------------------ #
    # Child
    # ------------------------------------------------------------------ #

    def _spawn(self, worker: _Worker) -> None:
        pid = os.fork()
        if pid:
            worker.pid = pid
            return
        # Child: never return into the supervisor's stack.
        try:
            code = self._worker_main(worker)
        except BaseException:  # noqa: BLE001 - last-resort worker crash log
            import traceback

            traceback.print_exc()
            code = 1
        finally:
            # Skip atexit/GC finalizers — they belong to the parent's
            # state (its server objects, its engine) which this child
            # must not tear down.
            os._exit(code)

    def _worker_main(self, me: _Worker) -> int:
        # Drop inherited fds that belong to siblings: their admin sockets
        # always, their listeners only in SO_REUSEPORT mode (in shared-
        # socket mode every worker holds the same listener).
        for other in self._workers:
            if other.index == me.index:
                continue
            other.admin_sock.close()
            if self.reuseport:
                other.listen_sock.close()

        signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(0))
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent coordinates

        engine = self.engine.reset_after_fork()
        engine.warm()
        info = {"index": me.index, "pid": os.getpid(), "workers": self.workers}

        public = QAServer(
            me.listen_sock.getsockname()[:2],
            engine,
            sock=me.listen_sock,
            worker=info,
            peers=self._peers,
        )
        # Admin endpoint: local registry only (peers=None) — it is what
        # the siblings' aggregation fans out to, so it must never fan out
        # itself (that would recurse across the cluster).
        admin = QAServer(
            me.admin_sock.getsockname()[:2],
            engine,
            sock=me.admin_sock,
            worker=info,
            peers=None,
        )
        admin_thread = threading.Thread(
            target=admin.serve_forever, name="qa-admin", daemon=True
        )
        admin_thread.start()
        try:
            public.serve_forever()
        except (SystemExit, KeyboardInterrupt):
            pass
        finally:
            admin.shutdown()
            public.server_close()
            admin.server_close()
            engine.close()
        return 0
