"""Lexical scope and lock-context resolution over parent-linked ASTs.

The lock-discipline rule needs one question answered per attribute
access: *which ``self.<lock>`` locks are held here?*  With parent links
installed by the walker this is a walk up the ancestor chain collecting
``with self.<lock>:`` items, stopping at the enclosing function boundary
(a nested function does not inherit the caller's lexical lock context —
it may run on another thread, so claiming its definer's locks would be
unsound).
"""

from __future__ import annotations

import ast
from typing import Iterator

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The parent chain of a node, nearest first."""
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


def enclosing_function(node: ast.AST) -> FunctionNode | None:
    """The nearest function/method the node's code runs in."""
    for parent in ancestors(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent
    return None


def enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    for parent in ancestors(node):
        if isinstance(parent, ast.ClassDef):
            return parent
    return None


def _self_locks_of_with(stmt: ast.With | ast.AsyncWith) -> Iterator[str]:
    for item in stmt.items:
        expr = item.context_expr
        # `with self._lock:` — the canonical guard shape.  A lock reached
        # through a helper (`with self._lock_for(x):`) is not recognized;
        # the rule wants guards to be grep-ably simple.
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            yield expr.attr


def locks_held_at(node: ast.AST) -> frozenset[str]:
    """Names of ``self.<lock>`` attributes locked around ``node``.

    Walks ancestors up to (not past) the enclosing function: a lock taken
    by a *caller* is a dynamic fact, and a lock taken in a function that
    merely lexically contains this one is not held on this code path's
    thread by construction.
    """
    held: set[str] = set()
    for parent in ancestors(node):
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            held.update(_self_locks_of_with(parent))
        elif isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return frozenset(held)


def is_self_attribute(node: ast.AST, name: str | None = None) -> bool:
    """Whether ``node`` is ``self.<name>`` (any attribute when name is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (name is None or node.attr == name)
    )
