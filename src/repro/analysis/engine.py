"""Lint orchestration: configuration, file walking, rule dispatch.

:func:`run_lint` is the one entry point the CLI, the baseline
regenerator, and the test suite share.  The default :class:`LintConfig`
*is* the project policy — the layer map, the fork-risky constructor
list, the monotonic-clock exemptions — so a bare ``repro lint`` enforces
exactly what CI enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.baseline import (
    BaselineDiff,
    diff_against_baseline,
    load_baseline,
)
from repro.analysis.rulebase import Finding
from repro.analysis.rules import ALL_RULES, RULES_BY_NAME
from repro.analysis.walker import ModuleInfo, iter_python_files, load_module
from repro.exceptions import LintError

#: Packages below the serving layer must not reach up into it (or into
#: the CLI / the experiment harness / this analysis package).  Keys are
#: longest-prefix matched, so a deeper entry can carve out an exception.
DEFAULT_LAYERING: Mapping[str, tuple[str, ...]] = {
    prefix: ("repro.serve", "repro.cli", "repro.experiments", "repro.analysis")
    for prefix in (
        "repro.rdf",
        "repro.nlp",
        "repro.obs",
        "repro.match",
        "repro.core",
        "repro.linking",
        "repro.paraphrase",
        "repro.sparql",
        "repro.eval",
        "repro.datasets",
        "repro.baselines",
    )
} | {
    "repro.serve": ("repro.cli", "repro.experiments", "repro.analysis"),
    "repro.analysis": ("repro.serve", "repro.cli", "repro.experiments"),
}

#: Constructors whose results do not survive a fork intact: locks and
#: pools (threads vanish, held locks stay locked), sockets (shared fds),
#: caches/metrics (parent traffic + parent clock anchors), clock anchors
#: and counters (parent epoch).
DEFAULT_FORK_RISKY: tuple[str, ...] = (
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "Lock",
    "RLock",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "socket.socket",
    "itertools.count",
    "time.monotonic",
    "Metrics",
    "TTLCache",
    "AdmissionController",
)


@dataclass(frozen=True)
class LintConfig:
    """Tunable policy of one lint run (defaults = the project policy)."""

    #: rule names to run; None runs every registered rule.
    rules: tuple[str, ...] | None = None
    layering: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERING)
    )
    fork_risky: tuple[str, ...] = DEFAULT_FORK_RISKY
    #: method names that count as delegated resets in reset_after_fork.
    reset_methods: tuple[str, ...] = ("reset_after_fork",)
    mutating_store_methods: tuple[str, ...] = (
        "add", "add_all", "add_all_ids", "remove",
    )
    frozen_constructors: tuple[str, ...] = (
        "CompactBackend",
        "CompactBackend.from_triples",
        "ShardedBackend",
        "ShardedBackend.from_triples",
        "ShardedBackend.lazy",
    )
    frozen_provenance_calls: tuple[str, ...] = ("compacted", "sharded", "load_snapshot")
    #: method calls whose *receiver* is thereby known frozen: calling
    #: .overlay() requires (and forever after assumes) a frozen base.
    frozen_receiver_calls: tuple[str, ...] = ("overlay",)
    #: constructors that capture their first argument as a frozen base —
    #: OverlayBackend(base) promises never to mutate base, and neither
    #: may anyone else for the overlay's lifetime.
    frozen_capture_constructors: tuple[str, ...] = ("OverlayBackend",)
    #: annotation names that mark a parameter as a frozen store/backend.
    frozen_annotations: tuple[str, ...] = ("CompactBackend", "ShardedBackend")
    #: module prefixes where wall-clock time.time() is legitimate
    #: (harness timing reports wall time by design).
    monotonic_exempt_modules: tuple[str, ...] = ("repro.experiments",)
    banned_raises: tuple[str, ...] = ("Exception", "BaseException", "RuntimeError")
    private_access_checked: bool = True

    def selected_rules(self):
        if self.rules is None:
            return ALL_RULES
        unknown = [name for name in self.rules if name not in RULES_BY_NAME]
        if unknown:
            known = ", ".join(sorted(RULES_BY_NAME))
            raise LintError(f"unknown rule(s) {unknown}; known rules: {known}")
        return tuple(RULES_BY_NAME[name] for name in self.rules)


@dataclass
class LintReport:
    """Everything one run produced, pre-split against the baseline."""

    new_findings: tuple[Finding, ...]
    known_findings: tuple[Finding, ...]
    stale_baseline: tuple[tuple[str, str, str], ...]
    files_scanned: int
    rules_run: tuple[str, ...]
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.new_findings

    @property
    def all_findings(self) -> tuple[Finding, ...]:
        return tuple(
            sorted(
                self.new_findings + self.known_findings,
                key=lambda f: (f.relpath, f.line, f.col, f.rule),
            )
        )


def package_identity(path: Path) -> tuple[str, str]:
    """``(relpath, module)`` of a file, anchored at its package root.

    Walks up through ``__init__.py``-bearing directories so the identity
    is stable no matter where the tree is checked out:
    ``/anywhere/src/repro/serve/engine.py`` ->
    (``repro/serve/engine.py``, ``repro.serve.engine``).  A file outside
    any package is identified by its own name.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    directory = path.parent
    package_dirs: list[str] = []
    while (directory / "__init__.py").exists():
        package_dirs.append(directory.name)
        directory = directory.parent
    package_dirs.reverse()
    module_parts = package_dirs + parts
    if not module_parts:
        module_parts = [path.stem]
    relpath = "/".join(package_dirs + [path.name]) if package_dirs else path.name
    return relpath, ".".join(module_parts)


def scan(paths: Iterable[Path]) -> list[ModuleInfo]:
    modules: list[ModuleInfo] = []
    seen: set[Path] = set()
    for root in paths:
        root = root.resolve()
        if not root.exists():
            raise LintError(f"lint path does not exist: {root}")
        for file_path in iter_python_files(root):
            if file_path in seen:
                continue
            seen.add(file_path)
            relpath, module = package_identity(file_path)
            modules.append(load_module(file_path, relpath, module))
    return modules


def run_lint(
    paths: Iterable[Path],
    config: LintConfig | None = None,
    baseline_path: Path | None = None,
) -> LintReport:
    """Scan ``paths``, run the selected rules, and diff the baseline."""
    config = config if config is not None else LintConfig()
    rules = config.selected_rules()
    modules = scan(paths)
    findings: list[Finding] = []
    suppressed = 0
    for module in modules:
        for rule in rules:
            for finding in rule.check(module, config):
                if module.suppressed(rule.name, finding.line):
                    suppressed += 1
                    continue
                findings.append(finding)
    findings.sort(key=lambda f: (f.relpath, f.line, f.col, f.rule))
    if baseline_path is not None:
        diff = diff_against_baseline(findings, load_baseline(baseline_path))
    else:
        diff = BaselineDiff(new=tuple(findings), known=(), stale=())
    return LintReport(
        new_findings=diff.new,
        known_findings=diff.known,
        stale_baseline=diff.stale,
        files_scanned=len(modules),
        rules_run=tuple(rule.name for rule in rules),
        suppressed=suppressed,
    )
