"""Project lint engine: static enforcement of repro's own invariants.

The serving refactors (PRs 4-6) introduced contracts that ordinary
tooling cannot check: lock-guarded fields, fork-reset requirements,
frozen-store discipline, monotonic-clock arithmetic, layer boundaries,
and the :class:`~repro.exceptions.ReproError` hierarchy.  This package
walks the source tree with :mod:`ast` (no third-party dependencies) and
enforces each invariant as a named rule — see docs/static-analysis.md
for the catalog.

Entry points:

* ``repro lint`` — the CLI (JSON output, rule selection, baselines);
* :func:`run_lint` — the library call the CLI and the tests share;
* :data:`repro.analysis.rules.ALL_RULES` — the rule registry.
"""

from repro.analysis.engine import LintConfig, LintReport, run_lint
from repro.analysis.rulebase import Finding, Rule

__all__ = ["Finding", "LintConfig", "LintReport", "Rule", "run_lint"]
