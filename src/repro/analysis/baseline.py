"""Baselines: grandfather pre-existing findings, fail only on new ones.

A baseline file is JSON holding finding *keys* — ``(rule, path, message)``
triples, no line numbers — so the gate is insensitive to unrelated edits
shifting code around.  Comparison is multiset-aware: two identical
findings in one file need two baseline entries.

``scripts/lint_baseline.py`` regenerates the file; the committed one is
kept empty for ``repro/serve`` and ``repro/obs`` by policy (violations
there get fixed, not suppressed — see docs/static-analysis.md).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.rulebase import Finding
from repro.exceptions import LintError

BASELINE_VERSION = 1


@dataclass(frozen=True, slots=True)
class BaselineDiff:
    """Findings split against a baseline."""

    #: findings not covered by the baseline — these fail the run.
    new: tuple[Finding, ...]
    #: findings covered (and consumed) by baseline entries.
    known: tuple[Finding, ...]
    #: baseline entries no finding matched — stale, the baseline should
    #: be regenerated to shrink.
    stale: tuple[tuple[str, str, str], ...]


def save_baseline(path: Path, findings: list[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": relpath, "message": message}
            for rule, relpath, message in sorted(f.key for f in findings)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Counter:
    """The baseline as a multiset of finding keys."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise LintError(
            f"baseline {path} has unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise LintError(f"baseline {path} is missing the findings list")
    keys: Counter = Counter()
    for entry in entries:
        try:
            keys[(entry["rule"], entry["path"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise LintError(f"baseline {path} has a malformed entry: {entry!r}") from exc
    return keys


def diff_against_baseline(findings: list[Finding], baseline: Counter) -> BaselineDiff:
    remaining = Counter(baseline)
    new: list[Finding] = []
    known: list[Finding] = []
    for finding in findings:
        if remaining[finding.key] > 0:
            remaining[finding.key] -= 1
            known.append(finding)
        else:
            new.append(finding)
    stale = tuple(
        key for key, count in sorted(remaining.items()) for _ in range(count)
    )
    return BaselineDiff(new=tuple(new), known=tuple(known), stale=stale)
