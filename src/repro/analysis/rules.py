"""The six project rules.  See docs/static-analysis.md for the catalog.

Each rule is deliberately *syntactic*: it checks the shapes this codebase
actually uses (``with self._lock:``, ``self.x = threading.Lock()``,
``store.compacted()``) rather than attempting whole-program type
inference.  Where a deliberate exception exists — the double-checked read
in ``KnowledgeGraph.kernel`` — the code carries an inline
``# lint: ignore[rule]`` pragma, which is visible and greppable, instead
of a baseline entry, which is neither.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.rulebase import Finding, Rule
from repro.analysis.scopes import (
    enclosing_function,
    is_self_attribute,
    locks_held_at,
)
from repro.analysis.walker import (
    ClassInfo,
    ModuleInfo,
    dotted_name,
    is_single_threaded,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import LintConfig

#: Methods where unguarded access to guarded fields is always legal: the
#: object cannot be shared before construction finishes.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _name_matches(dotted: str | None, patterns: tuple[str, ...]) -> str | None:
    """The first pattern ``dotted`` matches (exactly or as a ``.``-suffix)."""
    if dotted is None:
        return None
    for pattern in patterns:
        if dotted == pattern or dotted.endswith("." + pattern):
            return pattern
    return None


def _walk_skipping_nested_classes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a method body without descending into nested class bodies.

    A class defined inside a method has its own ``self``; treating its
    attribute accesses as the outer instance's would be wrong in both
    directions.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class LockDisciplineRule(Rule):
    """Guarded fields may only be touched under their declared lock."""

    name = "lock-discipline"
    summary = (
        "fields declared via @guarded_by must be accessed inside "
        "`with self.<lock>:` blocks"
    )

    def check(self, module: ModuleInfo, config: "LintConfig") -> Iterator[Finding]:
        for cls in module.classes:
            if not cls.guarded:
                continue
            for method_name, method in cls.methods.items():
                if method_name in _CONSTRUCTION_METHODS:
                    continue
                if is_single_threaded(method):
                    continue
                yield from self._check_method(module, cls, method)

    def _check_method(
        self, module: ModuleInfo, cls: ClassInfo, method: ast.AST
    ) -> Iterator[Finding]:
        for node in _walk_skipping_nested_classes(method):
            if not isinstance(node, ast.Attribute):
                continue
            if not is_self_attribute(node):
                continue
            lock = cls.guarded.get(node.attr)
            if lock is None:
                continue
            if lock in locks_held_at(node):
                continue
            access = "write to" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read of"
            yield self.finding(
                module,
                node,
                f"{access} {cls.name}.{node.attr} outside `with self.{lock}:` "
                f"(declared lock-guarded)",
            )


class ForkSafetyRule(Rule):
    """Lock/pool/socket/cache state must be re-created after a fork."""

    name = "fork-safety"
    summary = (
        "attributes holding locks, pools, sockets, caches, or clock "
        "anchors must be reset in reset_after_fork()"
    )

    def check(self, module: ModuleInfo, config: "LintConfig") -> Iterator[Finding]:
        for cls in module.classes:
            reset = cls.methods.get("reset_after_fork")
            if reset is None:
                continue
            init = cls.methods.get("__init__")
            if init is None:
                continue
            risky = self._risky_attributes(init, config)
            handled = self._reset_attributes(reset, config)
            for attr, (node, kind) in risky.items():
                if attr in handled or attr in cls.fork_shared:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{cls.name}.{attr} holds {kind} state but is neither "
                    f"re-created nor reset_after_fork()-delegated in "
                    f"{cls.name}.reset_after_fork() (declare @fork_shared "
                    f"if sharing it across the fork is intended)",
                )

    def _risky_attributes(
        self, init: ast.AST, config: "LintConfig"
    ) -> dict[str, tuple[ast.AST, str]]:
        risky: dict[str, tuple[ast.AST, str]] = {}
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not is_self_attribute(target):
                    continue
                for call in ast.walk(node.value):
                    if not isinstance(call, ast.Call):
                        continue
                    kind = _name_matches(dotted_name(call.func), config.fork_risky)
                    if kind is not None:
                        risky.setdefault(target.attr, (node, kind))
                        break
        return risky

    def _reset_attributes(self, reset: ast.AST, config: "LintConfig") -> set[str]:
        handled: set[str] = set()
        for node in ast.walk(reset):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if is_self_attribute(target):
                        handled.add(target.attr)
            elif isinstance(node, ast.Call):
                func = node.func
                # self.<attr>.reset_after_fork(...) delegates the reset.
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in config.reset_methods
                    and is_self_attribute(func.value)
                ):
                    handled.add(func.value.attr)
        return handled


class FrozenStoreRule(Rule):
    """No mutating calls on stores/backends provenanced as frozen."""

    name = "frozen-store"
    summary = (
        "objects obtained from .compacted()/.sharded(), load_snapshot(), "
        "frozen-backend construction, or captured as an overlay base "
        "(.overlay() receivers, OverlayBackend(base)) must not receive "
        "add/remove calls"
    )

    def check(self, module: ModuleInfo, config: "LintConfig") -> Iterator[Finding]:
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            yield from self._check_function(module, func, config)

    def _is_frozen_expr(self, expr: ast.AST, config: "LintConfig") -> bool:
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in config.frozen_provenance_calls:
            return True
        dotted = dotted_name(func)
        if dotted is not None and (
            dotted in config.frozen_provenance_calls
            or _name_matches(dotted, config.frozen_constructors) is not None
        ):
            return True
        return False

    def _root_name(self, expr: ast.AST) -> str | None:
        while isinstance(expr, ast.Attribute):
            expr = expr.value
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    def _check_function(
        self, module: ModuleInfo, func: ast.AST, config: "LintConfig"
    ) -> Iterator[Finding]:
        # Pass 1: locals (and self attributes) bound to frozen provenance
        # anywhere in the function — order-insensitive on purpose: a
        # mutation before the rebinding is equally suspicious in the
        # shapes this codebase uses.
        frozen_names: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._is_frozen_expr(node.value, config):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        frozen_names.add(target.id)
                    elif is_self_attribute(target):
                        frozen_names.add(f"self.{target.attr}")
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if self._is_frozen_expr(node.value, config) and isinstance(
                    node.target, ast.Name
                ):
                    frozen_names.add(node.target.id)
            elif isinstance(node, ast.Call):
                # Overlay provenance, two shapes: `base.overlay()` only
                # works over (and perpetually assumes) a frozen base, and
                # `OverlayBackend(base)` captures its first argument with
                # the promise that nobody mutates it afterwards.
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in config.frozen_receiver_calls
                ):
                    receiver = callee.value
                    if isinstance(receiver, ast.Name):
                        frozen_names.add(receiver.id)
                    elif is_self_attribute(receiver):
                        frozen_names.add(f"self.{receiver.attr}")
                dotted = dotted_name(callee)
                if (
                    dotted is not None
                    and _name_matches(dotted, config.frozen_capture_constructors)
                    is not None
                    and node.args
                ):
                    captured = node.args[0]
                    if isinstance(captured, ast.Name):
                        frozen_names.add(captured.id)
                    elif is_self_attribute(captured):
                        frozen_names.add(f"self.{captured.attr}")
        # Parameters annotated with a frozen backend type are frozen too.
        args_node = getattr(func, "args", None)
        if args_node is not None:
            for arg in (
                list(args_node.posonlyargs) + list(args_node.args) + list(args_node.kwonlyargs)
            ):
                annotation = arg.annotation
                if annotation is not None:
                    rendered = dotted_name(annotation) or (
                        annotation.value if isinstance(annotation, ast.Constant) else None
                    )
                    if isinstance(rendered, str) and any(
                        name in rendered for name in config.frozen_annotations
                    ):
                        frozen_names.add(arg.arg)
        # Pass 2: mutating method calls on frozen receivers.
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                continue
            if callee.attr not in config.mutating_store_methods:
                continue
            receiver = callee.value
            if self._is_frozen_expr(receiver, config):
                yield self.finding(
                    module,
                    node,
                    f".{callee.attr}() called directly on a frozen "
                    f"store/backend expression",
                )
                continue
            root = self._root_name(receiver)
            qualified = (
                f"self.{receiver.attr}"
                if is_self_attribute(receiver)
                else root
            )
            if root in frozen_names or qualified in frozen_names:
                yield self.finding(
                    module,
                    node,
                    f".{callee.attr}() called on '{qualified or root}', which is "
                    f"snapshot-loaded/compacted and therefore frozen",
                )


class MonotonicTimeRule(Rule):
    """TTL/deadline arithmetic must use the monotonic clock."""

    name = "monotonic-time"
    summary = (
        "time.time() is wall-clock (steps on NTP/suspend); deadlines, "
        "TTLs, and durations must use time.monotonic()"
    )

    def check(self, module: ModuleInfo, config: "LintConfig") -> Iterator[Finding]:
        if module.module.startswith(config.monotonic_exempt_modules):
            return
        bare_time_imported = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "time"
            and any(alias.name == "time" and alias.asname is None for alias in node.names)
            for node in ast.walk(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted == "time.time" or (dotted == "time" and bare_time_imported):
                yield self.finding(
                    module,
                    node,
                    "time.time() used; use time.monotonic() for intervals/"
                    "deadlines (or add the module to the rule's exempt list "
                    "if this is genuine wall-clock timestamping)",
                )


class LayeringRule(Rule):
    """Lower layers must not import upper ones; no foreign _private access."""

    name = "layering"
    summary = (
        "rdf/nlp/match/core/... must not import serve/cli/experiments; "
        "cross-module access to _private attributes is forbidden"
    )

    def check(self, module: ModuleInfo, config: "LintConfig") -> Iterator[Finding]:
        yield from self._check_imports(module, config)
        if config.private_access_checked:
            yield from self._check_private_access(module)

    def _layer_of(self, module: ModuleInfo, config: "LintConfig") -> str | None:
        best: str | None = None
        for prefix in config.layering:
            if module.module == prefix or module.module.startswith(prefix + "."):
                if best is None or len(prefix) > len(best):
                    best = prefix
        return best

    def _check_imports(self, module: ModuleInfo, config: "LintConfig") -> Iterator[Finding]:
        layer = self._layer_of(module, config)
        if layer is None:
            return
        forbidden = config.layering[layer]
        for imported, lineno in module.imports:
            for prefix in forbidden:
                if imported == prefix or imported.startswith(prefix + "."):
                    anchor = ast.AST()
                    anchor.lineno = lineno  # type: ignore[attr-defined]
                    anchor.col_offset = 0  # type: ignore[attr-defined]
                    yield self.finding(
                        module,
                        anchor,
                        f"{layer} must not import {imported} "
                        f"(layer boundary: {layer} < {prefix})",
                    )

    def _check_private_access(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            receiver = node.value
            if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
                continue
            # Module-private: the attribute is defined by something in
            # this very file (classmethod constructors, helper tokens).
            if attr in module.defined_private_names:
                continue
            # Attributes of imported *modules* (os._exit) are a stdlib
            # affair, not a cross-layer reach into project internals.
            if isinstance(receiver, ast.Name) and receiver.id in module.imported_names:
                continue
            yield self.finding(
                module,
                node,
                f"access to foreign private attribute '.{attr}' "
                f"(not defined in {module.relpath}); use or add a public "
                f"accessor instead",
            )


class ExceptionDisciplineRule(Rule):
    """Library code raises ReproError subclasses, not bare Exception."""

    name = "exception-discipline"
    summary = (
        "raise sites must use ReproError subclasses (or builtin value "
        "errors), never Exception/BaseException/RuntimeError"
    )

    def check(self, module: ModuleInfo, config: "LintConfig") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            dotted = dotted_name(target)
            matched = _name_matches(dotted, config.banned_raises)
            if matched is None and dotted not in config.banned_raises:
                continue
            yield self.finding(
                module,
                node,
                f"raise {dotted}: public errors must be ReproError "
                f"subclasses (see repro.exceptions) so callers can catch "
                f"one base class",
            )


ALL_RULES: tuple[Rule, ...] = (
    LockDisciplineRule(),
    ForkSafetyRule(),
    FrozenStoreRule(),
    MonotonicTimeRule(),
    LayeringRule(),
    ExceptionDisciplineRule(),
)

RULES_BY_NAME: dict[str, Rule] = {rule.name: rule for rule in ALL_RULES}
