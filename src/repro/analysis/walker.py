"""Source discovery and per-module AST model for the lint rules.

One :class:`ModuleInfo` per file, carrying everything every rule needs so
each file is read and parsed exactly once per run:

* the parsed tree, with parent links (``node.parent``) installed so rules
  can walk *up* — the lock tracker resolves enclosing ``with`` blocks and
  functions this way;
* per-class contract metadata read statically from the
  :mod:`repro.contracts` decorators (``@guarded_by``, ``@fork_shared``)
  and the set of attribute/method names each class defines;
* the import table (for the layering rule) and the names imports bind
  (so ``os._exit`` is recognized as a foreign *module* attribute, not a
  cross-class private access);
* suppression pragmas: ``# lint: ignore[rule-a, rule-b]`` (or a bare
  ``# lint: ignore``) on a line suppresses findings anchored to it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.exceptions import LintError

PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")

#: Decorator names the walker understands (from repro.contracts).
_GUARDED_DECORATOR = "guarded_by"
_FORK_SHARED_DECORATOR = "fork_shared"
_SINGLE_THREADED_DECORATOR = "single_threaded"


@dataclass
class ClassInfo:
    """Statically-extracted facts about one class definition."""

    name: str
    node: ast.ClassDef
    #: guarded field name -> lock attribute name (from @guarded_by).
    guarded: dict[str, str] = field(default_factory=dict)
    #: fields declared deliberately fork-shared (from @fork_shared).
    fork_shared: frozenset[str] = frozenset()
    #: top-level methods by name (no nested functions).
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(default_factory=dict)
    #: every attribute name the class plausibly defines: methods, class
    #: vars, slots entries, and ``self.X`` assignment targets.
    attribute_names: set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed source file plus the derived facts rules consume."""

    path: Path
    #: stable identity used in findings and baselines, e.g.
    #: ``repro/serve/engine.py`` — independent of where the tree lives.
    relpath: str
    #: dotted module name, e.g. ``repro.serve.engine``.
    module: str
    tree: ast.Module
    source_lines: list[str]
    #: line number -> rule names suppressed there ({"*"} = all rules).
    pragmas: dict[int, set[str]] = field(default_factory=dict)
    classes: list[ClassInfo] = field(default_factory=list)
    #: (imported module, line) pairs, absolute form, for the layering rule.
    imports: list[tuple[str, int]] = field(default_factory=list)
    #: local names bound by import statements (``os``, ``load_snapshot``).
    imported_names: set[str] = field(default_factory=set)
    #: private names (``_x``) defined by this module's classes/functions.
    defined_private_names: set[str] = field(default_factory=set)

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.pragmas.get(line)
        return rules is not None and ("*" in rules or rule in rules)


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def _install_parents(tree: ast.Module) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.parent = parent  # type: ignore[attr-defined]


def _parse_pragmas(lines: list[str]) -> dict[int, set[str]]:
    pragmas: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "lint:" not in line:
            continue
        match = PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            pragmas[lineno] = {"*"}
        else:
            pragmas[lineno] = {part.strip() for part in rules.split(",") if part.strip()}
    return pragmas


def decorator_name(node: ast.expr) -> str | None:
    """The trailing name of a decorator expression (``a.b`` -> ``b``)."""
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _string_args(call: ast.Call) -> list[str]:
    return [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]


def is_single_threaded(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        decorator_name(dec) == _SINGLE_THREADED_DECORATOR for dec in func.decorator_list
    )


def _collect_class(node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(name=node.name, node=node)
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name = decorator_name(dec)
        args = _string_args(dec)
        if name == _GUARDED_DECORATOR and len(args) >= 2:
            lock, *fields = args
            for field_name in fields:
                info.guarded[field_name] = lock
        elif name == _FORK_SHARED_DECORATOR and args:
            info.fork_shared = info.fork_shared | frozenset(args)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = stmt
            info.attribute_names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.attribute_names.add(target.id)
            # __slots__ entries are attribute declarations too.
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
            ) and isinstance(stmt.value, (ast.Tuple, ast.List)):
                for element in stmt.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        info.attribute_names.add(element.value)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.attribute_names.add(stmt.target.id)
    # self.X assignment targets anywhere inside the class body.
    for inner in ast.walk(node):
        if isinstance(inner, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = inner.targets if isinstance(inner, ast.Assign) else [inner.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.attribute_names.add(target.attr)
    return info


def load_module(path: Path, relpath: str, module: str) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises LintError on bad syntax)."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    _install_parents(tree)
    lines = source.splitlines()
    info = ModuleInfo(
        path=path,
        relpath=relpath,
        module=module,
        tree=tree,
        source_lines=lines,
        pragmas=_parse_pragmas(lines),
    )
    package = module.rsplit(".", 1)[0] if "." in module else module
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            info.classes.append(_collect_class(node))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                info.imports.append((alias.name, node.lineno))
                info.imported_names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.level == 0:
                target = node.module
            else:
                # Relative import: anchor it to this module's package.
                base = package.split(".")
                if node.level > 1:
                    base = base[: len(base) - (node.level - 1)]
                suffix = [node.module] if node.module else []
                target = ".".join(base + suffix)
            info.imports.append((target, node.lineno))
            for alias in node.names:
                info.imported_names.add(alias.asname or alias.name)
    for cls in info.classes:
        info.defined_private_names.update(
            name for name in cls.attribute_names if name.startswith("_")
        )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name.startswith("_"):
            info.defined_private_names.add(node.name)
    return info
