"""Render a lint run for humans (text) and machines (``--json``)."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import LintReport


def render_text(report: "LintReport") -> str:
    lines: list[str] = []
    for finding in report.new_findings:
        lines.append(finding.render())
    if report.known_findings:
        lines.append(
            f"-- {len(report.known_findings)} pre-existing finding(s) "
            f"covered by the baseline (not shown; regenerate with "
            f"scripts/lint_baseline.py to review)"
        )
    if report.stale_baseline:
        lines.append(
            f"-- {len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} no longer "
            f"fired — regenerate the baseline to shrink it"
        )
    summary = (
        f"repro lint: {report.files_scanned} files, "
        f"{len(report.rules_run)} rules, "
        f"{len(report.new_findings)} new finding(s)"
    )
    if report.known_findings:
        summary += f", {len(report.known_findings)} baselined"
    if report.suppressed:
        summary += f", {report.suppressed} pragma-suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: "LintReport") -> str:
    per_rule: dict[str, int] = {}
    for finding in report.new_findings:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    payload = {
        "files_scanned": report.files_scanned,
        "rules": list(report.rules_run),
        "findings": [finding.to_json() for finding in report.new_findings],
        "baselined": [finding.to_json() for finding in report.known_findings],
        "stale_baseline": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in report.stale_baseline
        ],
        "suppressed": report.suppressed,
        "counts_by_rule": dict(sorted(per_rule.items())),
        "ok": not report.new_findings,
    }
    return json.dumps(payload, indent=2)
