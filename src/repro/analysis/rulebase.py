"""Finding model, rule base class, and the rule registry.

A rule is a named check over one :class:`~repro.analysis.walker.ModuleInfo`
at a time; the engine feeds it every module in the scanned tree and
collects :class:`Finding` objects.  Findings are identified for baseline
purposes by ``(rule, relpath, message)`` — deliberately *not* by line
number, so unrelated edits above a pre-existing finding do not churn the
baseline — while the line/column still render in reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import LintConfig
    from repro.analysis.walker import ModuleInfo


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    relpath: str
    line: int
    col: int
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across line-number churn."""
        return (self.rule, self.relpath, self.message)

    def render(self) -> str:
        return f"{self.relpath}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.relpath,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class: subclasses set ``name``/``summary`` and implement check."""

    #: kebab-case rule id, used in CLI selection, pragmas, and baselines.
    name: str = ""
    #: one-line description rendered by ``repro lint --list-rules``.
    summary: str = ""

    def check(self, module: "ModuleInfo", config: "LintConfig") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: "ModuleInfo", node, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            relpath=module.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
