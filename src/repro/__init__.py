"""repro — graph data driven natural language question answering over RDF.

A from-scratch reproduction of Zou et al., "Natural Language Question
Answering over RDF — A Graph Data Driven Approach" (SIGMOD 2014), the system
later released as *gAnswer*.

The top-level package re-exports the main entry points:

* :class:`repro.core.GAnswer` — the end-to-end question answering pipeline.
* :class:`repro.rdf.TripleStore` / :class:`repro.rdf.KnowledgeGraph` — the
  RDF substrate.
* :func:`repro.datasets.build_dbpedia_mini` — the curated DBpedia-like
  knowledge base all examples and benchmarks run against.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.rdf import IRI, KnowledgeGraph, Literal, Triple, TripleStore

__version__ = "1.0.0"

__all__ = [
    "IRI",
    "KnowledgeGraph",
    "Literal",
    "Triple",
    "TripleStore",
    "__version__",
]


def __getattr__(name: str):
    # GAnswer lives behind a lazy import so `import repro` stays cheap and
    # the rdf substrate can be used without pulling in the NLP stack.
    if name in ("GAnswer", "Answer"):
        from repro.core.pipeline import Answer, GAnswer

        return {"GAnswer": GAnswer, "Answer": Answer}[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
