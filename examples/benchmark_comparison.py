#!/usr/bin/env python
"""Scenario: the full QALD benchmark, head to head against the baselines.

Regenerates the headline comparison of the paper (Table 8 + Figure 6):
runs gAnswer, DEANNA, and the template baseline over all 99 questions and
prints the QALD summary table plus the timing comparison on the common
correctly-answered questions.

Run:  python examples/benchmark_comparison.py          (fast, plain KG)
      python examples/benchmark_comparison.py --padded (DBpedia-like scale)
"""

import sys

from repro.experiments.online import figure6_runtime, table8_end_to_end


def main() -> None:
    print(table8_end_to_end().render())
    print()
    padded = "--padded" in sys.argv
    distractors = 25 if padded else 0
    print(figure6_runtime(distractors=distractors).render())
    if not padded:
        print("\n(re-run with --padded for DBpedia-like candidate-list "
              "sizes, where the speedup gap matches the paper)")


if __name__ == "__main__":
    main()
