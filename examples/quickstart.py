#!/usr/bin/env python
"""Quickstart: answer the paper's running example end to end.

Builds the mini-DBpedia knowledge graph, mines the paraphrase dictionary
(the offline phase, Algorithm 1), and answers "Who was married to an actor
that played in Philadelphia?" — the question of Figure 1 — showing every
artefact the pipeline produces along the way.

Run:  python examples/quickstart.py
"""

from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.paraphrase import ParaphraseMiner
from repro.paraphrase.path_mining import describe_path
from repro.paraphrase.miner import normalize_phrase


def main() -> None:
    print("1. Building the mini-DBpedia knowledge graph ...")
    kg = build_dbpedia_mini()
    stats = kg.store.statistics()
    print(f"   {stats['triples']} triples, {stats['nodes']} nodes, "
          f"{stats['predicates']} predicates\n")

    print("2. Mining the paraphrase dictionary (offline phase, Algorithm 1) ...")
    phrases = build_phrase_dataset()
    miner = ParaphraseMiner(kg, max_path_length=4, top_k=3)
    dictionary = miner.mine(phrases)
    print(f"   {len(dictionary)} relation phrases mapped; "
          f"{miner.last_report.located_fraction:.0%} of support pairs "
          f"located in the graph")
    for phrase in ("was married to", "played in"):
        mappings = dictionary.lookup(normalize_phrase(phrase))
        rendered = ", ".join(
            f"{describe_path(kg, m.path)} ({m.confidence:.2f})" for m in mappings
        )
        print(f"   {phrase!r} → {rendered}")
    print()

    print("3. Answering the running example ...")
    system = GAnswer(kg, dictionary)
    question = "Who was married to an actor that played in Philadelphia?"
    result = system.answer(question)

    print(f"   Question: {question}")
    print(f"   Semantic query graph: {result.semantic_graph}")
    print(f"   Understanding took {result.understanding_time * 1000:.2f} ms "
          f"(paper bound: < 100 ms)")
    print(f"   Evaluation took {result.evaluation_time * 1000:.2f} ms")
    print(f"   Answers: {[str(a) for a in result.answers]}")
    print()
    print("   Top match as SPARQL (Algorithm 3's output):")
    for line in result.sparql_queries[0].splitlines():
        print(f"     {line}")
    print()
    print("   Note how 'Philadelphia' was disambiguated to the film — the "
          "city and the 76ers never participate in a match.")


if __name__ == "__main__":
    main()
