#!/usr/bin/env python
"""Scenario: bring your own knowledge base.

Shows the full adoption path for a downstream user: load an RDF dataset
from N-Triples, provide a relation-phrase dataset for your domain, mine
the dictionary, and start asking questions.  The domain here is a tiny
software-projects graph, nothing like the bundled movie/politics data —
demonstrating the system is not hard-wired to the benchmark.

Run:  python examples/custom_knowledge_base.py
"""

from repro.core import GAnswer
from repro.paraphrase import ParaphraseMiner, RelationPhraseDataset
from repro.rdf import IRI, KnowledgeGraph, TripleStore, parse_ntriples

NTRIPLES = """\
# A small software-projects knowledge base.
<kb:Linux> <rdf:type> <kb:OperatingSystem> .
<kb:Linux> <http://www.w3.org/2000/01/rdf-schema#label> "Linux" .
<kb:Linus_Torvalds> <http://www.w3.org/2000/01/rdf-schema#label> "Linus Torvalds" .
<kb:Linux> <kb:createdBy> <kb:Linus_Torvalds> .
<kb:Git> <kb:createdBy> <kb:Linus_Torvalds> .
<kb:Git> <http://www.w3.org/2000/01/rdf-schema#label> "Git" .
<kb:Git> <rdf:type> <kb:VersionControlSystem> .
<kb:Python> <kb:createdBy> <kb:Guido_van_Rossum> .
<kb:Python> <http://www.w3.org/2000/01/rdf-schema#label> "Python" .
<kb:Guido_van_Rossum> <http://www.w3.org/2000/01/rdf-schema#label> "Guido van Rossum" .
<kb:Guido_van_Rossum> <kb:worksAt> <kb:Dropbox> .
<kb:Dropbox> <http://www.w3.org/2000/01/rdf-schema#label> "Dropbox" .
<kb:CPython> <kb:implements> <kb:Python> .
<kb:CPython> <http://www.w3.org/2000/01/rdf-schema#label> "CPython" .
"""

# Patch the rdf:type IRI to the real namespace for the type edges above.
NTRIPLES = NTRIPLES.replace(
    "<rdf:type>", "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
)


def main() -> None:
    store = TripleStore()
    store.add_all(parse_ntriples(NTRIPLES))
    kg = KnowledgeGraph(store)
    print(f"Loaded {len(store)} triples from N-Triples.\n")

    # Your domain's relation phrases with example pairs from the data.
    phrases = RelationPhraseDataset()
    phrases.add("created", [(IRI("kb:Linus_Torvalds"), IRI("kb:Linux"))])
    phrases.add("was created by", [(IRI("kb:Git"), IRI("kb:Linus_Torvalds"))])
    phrases.add("works at", [(IRI("kb:Guido_van_Rossum"), IRI("kb:Dropbox"))])

    dictionary = ParaphraseMiner(kg, max_path_length=2, top_k=2).mine(phrases)
    system = GAnswer(kg, dictionary)

    for question in (
        "Who created Git?",
        "Who created Python?",
        "Where does Guido van Rossum work at?",
    ):
        result = system.answer(question)
        answers = ", ".join(str(a) for a in result.answers) or f"({result.failure})"
        print(f"Q: {question}")
        print(f"A: {answers}\n")


if __name__ == "__main__":
    main()
