#!/usr/bin/env python
"""Scenario: watch graph data driven disambiguation happen.

The paper's central idea: keep ALL candidate meanings of every phrase and
let the subgraph match decide.  This demo inspects the candidate space for
the running example — showing "Philadelphia" linked to the city, the film,
and the 76ers — then shows which candidates neighborhood pruning removes
and which candidate survives into the match.

Run:  python examples/disambiguation_demo.py
"""

import copy

from repro.core import GAnswer
from repro.core.phrase_mapping import PhraseMapper
from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.match import neighborhood_prune
from repro.paraphrase import ParaphraseMiner
from repro.paraphrase.path_mining import describe_path


def name_of(kg, node_id):
    """Local name for IRIs (distinguishes the label-sharing homonyms)."""
    from repro.rdf import IRI

    term = kg.term_of(node_id)
    return term.local_name if isinstance(term, IRI) else str(term)


def describe_candidates(kg, vertex, graph):
    qs_vertex = graph.vertices[vertex.vertex_id]
    if vertex.wildcard:
        return f"?{qs_vertex.phrase} → wildcard (matches everything)"
    rendered = ", ".join(
        f"{name_of(kg, c.node_id)}{' [class]' if c.is_class else ''}"
        f" ({c.confidence:.2f})"
        for c in vertex.candidates
    )
    return f"{qs_vertex.phrase!r} → {rendered}"


def main() -> None:
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_phrase_dataset()
    )
    system = GAnswer(kg, dictionary)
    question = "Who was married to an actor that played in Philadelphia?"
    result = system.answer(question)
    graph = result.semantic_graph

    print(f"Question: {question}\n")
    print("Semantic query graph Q^S (Definition 2):")
    for edge in graph.edges:
        source = graph.vertices[edge.source].phrase
        target = graph.vertices[edge.target].phrase
        print(f"  [{source}] --{' '.join(edge.phrase_words)}--> [{target}]")
    print()

    mapper = PhraseMapper(kg, dictionary)
    space = mapper.build_candidate_space(graph)
    print("Candidate lists BEFORE pruning (ambiguity kept, Section 4.2.1):")
    for vertex in space.vertices.values():
        print(f"  {describe_candidates(kg, vertex, graph)}")
    for index, edge in enumerate(space.edges):
        paths = ", ".join(
            f"{describe_path(kg, c.path)} ({c.confidence:.2f})"
            for c in edge.candidates
        )
        print(f"  edge {index}: {paths}")
    print()

    pruned_space = copy.deepcopy(space)
    removed = neighborhood_prune(kg, pruned_space)
    print(f"Neighborhood pruning removed {removed} candidate(s) "
          "(Section 4.2.2 — like u5 in Figure 2):")
    for vertex in pruned_space.vertices.values():
        print(f"  {describe_candidates(kg, vertex, graph)}")
    print()

    print("Top match (disambiguation resolved by the data):")
    match = result.matches[0]
    for vertex_id, node in match.bindings:
        phrase = graph.vertices[vertex_id].phrase
        print(f"  [{phrase}] → {name_of(kg, node)}")
    print(f"\nAnswer: {[str(a) for a in result.answers]}")


if __name__ == "__main__":
    main()
