#!/usr/bin/env python
"""Scenario: the SPARQL engine on its own.

The QA pipeline sits on a real SPARQL subset engine; this demo exercises
it directly over the mini-DBpedia KB — basic graph patterns, FILTER,
ORDER BY/LIMIT (the paper's aggregation workaround shape), UNION,
OPTIONAL, SPARQL 1.1 property paths, and the matching-based executor that
demonstrates the paper's "answering SPARQL = subgraph matching" point.

Run:  python examples/sparql_playground.py
"""

from repro.datasets import build_dbpedia_mini
from repro.sparql import evaluate, parse_query
from repro.sparql.graph_executor import evaluate_by_matching, is_compilable

QUERIES = [
    ("Basic graph pattern (join)",
     "SELECT ?who WHERE { ?a <ont:spouse> ?who . "
     "?a <ont:starring> <res:Philadelphia_(film)> }"),
    ("FILTER on a numeric literal",
     "SELECT ?p ?h WHERE { ?p <ont:height> ?h . FILTER(?h > 1.75) }"),
    ("The paper's aggregation shape: ORDER BY DESC + LIMIT 1",
     "SELECT ?c WHERE { ?c <ont:populationTotal> ?n } ORDER BY DESC(?n) LIMIT 1"),
    ("UNION of predicates",
     "SELECT ?p WHERE { { ?p <ont:starring> <res:Philadelphia_(film)> } "
     "UNION { ?p <ont:director> <res:Philadelphia_(film)> } }"),
    ("OPTIONAL left join",
     "SELECT ?actor ?spouse WHERE { ?actor <ont:starring> <res:Philadelphia_(film)> . "
     "OPTIONAL { ?actor <ont:spouse> ?spouse } }"),
    ("Property path: 2-hop sequence (player → league)",
     "SELECT ?p WHERE { ?p <ont:team>/<ont:league> <res:Premier_League> }"),
    ("Property path: alternative",
     "SELECT ?x WHERE { <res:Margaret_Thatcher> <ont:child>|<ont:spouse> ?x }"),
    ("Property path: inverse",
     "SELECT ?film WHERE { ?film ^<ont:starring> <res:Tom_Cruise> }"),
    ("ASK",
     "ASK { <res:Michelle_Obama> ^<ont:spouse> <res:Barack_Obama> }"),
    ("COUNT",
     "SELECT COUNT(?m) WHERE { ?m <ont:country> <res:Argentina> }"),
]


def render(result) -> str:
    if isinstance(result, bool):
        return "yes" if result else "no"
    if isinstance(result, int):
        return str(result)
    rows = []
    for row in result:
        rows.append(", ".join(
            f"{var}={term}" for var, term in sorted(row.items(), key=lambda kv: kv[0].name)
        ))
    return "\n    ".join(rows) if rows else "(empty)"


def main() -> None:
    kg = build_dbpedia_mini()
    for title, query_text in QUERIES:
        print(f"-- {title}")
        print(f"   {query_text}")
        query = parse_query(query_text)
        print(f"    {render(evaluate(kg.store, query))}")
        print()

    print("-- The gStore equivalence: same BGP through the subgraph matcher")
    query = parse_query(
        "SELECT ?who WHERE { ?a <ont:spouse> ?who . "
        "?a <ont:starring> <res:Philadelphia_(film)> }"
    )
    assert is_compilable(query) is None
    rows = evaluate_by_matching(kg, query)
    print(f"    {render(rows)}  (identical to the algebraic engine)")


if __name__ == "__main__":
    main()
