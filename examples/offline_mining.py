#!/usr/bin/env python
"""Scenario: the offline phase — mining and maintaining the dictionary.

Demonstrates Algorithm 1 in isolation: multi-hop path discovery (the
"uncle of" pattern of Figure 4), tf-idf noise suppression (the
(hasGender, hasGender) discussion), serialization, and incremental
maintenance when predicates are added or removed.

Run:  python examples/offline_mining.py
"""

from repro.paraphrase import (
    ParaphraseDictionary,
    ParaphraseMiner,
    RelationPhraseDataset,
    normalize_phrase,
)
from repro.paraphrase.path_mining import describe_path
from repro.rdf import IRI, KnowledgeGraph, Triple, TripleStore


def build_family_graph() -> KnowledgeGraph:
    """Figure 4's situation: uncles, spouses, and ubiquitous noise."""
    store = TripleStore()
    e = lambda name: IRI(f"ex:{name}")
    for family in ("kennedy", "corr"):
        store.add_all(
            [
                Triple(e(f"{family}_grandpa"), e("hasChild"), e(f"{family}_uncle")),
                Triple(e(f"{family}_grandpa"), e("hasChild"), e(f"{family}_parent")),
                Triple(e(f"{family}_parent"), e("hasChild"), e(f"{family}_nephew")),
                Triple(e(f"{family}_uncle"), e("spouse"), e(f"{family}_aunt")),
                # Noise: everyone shares a residence, connecting every pair.
                Triple(e(f"{family}_uncle"), e("livesIn"), e("usa")),
                Triple(e(f"{family}_nephew"), e("livesIn"), e("usa")),
                Triple(e(f"{family}_aunt"), e("livesIn"), e("usa")),
            ]
        )
    return KnowledgeGraph(store)


def main() -> None:
    kg = build_family_graph()
    e = lambda name: IRI(f"ex:{name}")

    dataset = RelationPhraseDataset()
    dataset.add("uncle of", [
        (e("kennedy_uncle"), e("kennedy_nephew")),
        (e("corr_uncle"), e("corr_nephew")),
    ])
    dataset.add("is married to", [
        (e("kennedy_uncle"), e("kennedy_aunt")),
        (e("corr_uncle"), e("corr_aunt")),
    ])

    print("Mining with tf-idf scoring (Algorithm 1, Definition 4):")
    miner = ParaphraseMiner(kg, max_path_length=3, top_k=3)
    dictionary = miner.mine(dataset)
    for phrase in ("uncle of", "is married to"):
        print(f"  {phrase!r}:")
        for mapping in dictionary.lookup(normalize_phrase(phrase)):
            print(f"    {describe_path(kg, mapping.path)}  "
                  f"confidence {mapping.confidence:.2f}")
    print("  → the 3-hop hasChild⁻¹·hasChild·hasChild path wins for "
          "'uncle of'; the (livesIn, livesIn⁻¹) noise is idf-suppressed.\n")

    print("Raw-frequency ablation (noise survives):")
    raw = ParaphraseMiner(kg, max_path_length=3, top_k=3, use_tfidf=False,
                          length_discount=1.0).mine(dataset)
    for mapping in raw.lookup(normalize_phrase("uncle of")):
        print(f"    {describe_path(kg, mapping.path)}  "
              f"confidence {mapping.confidence:.2f}")
    print()

    print("Serialization round-trip:")
    payload = dictionary.to_json()
    restored = ParaphraseDictionary.from_json(payload)
    print(f"  {len(payload)} bytes of JSON; restored "
          f"{len(restored)} phrases intact\n")

    print("Incremental maintenance (Section 3): a direct uncleOf predicate "
          "appears ...")
    kg.store.add(Triple(e("kennedy_uncle"), e("uncleOf"), e("kennedy_nephew")))
    kg.store.add(Triple(e("corr_uncle"), e("uncleOf"), e("corr_nephew")))
    kg.refresh()
    remined = miner.remine_for_predicates(dataset, dictionary, {e("uncleOf")})
    print(f"  re-mined {remined} affected phrase(s); new top mapping:")
    top = dictionary.lookup(normalize_phrase("uncle of"))[0]
    print(f"    {describe_path(kg, top.path)}  confidence {top.confidence:.2f}")

    print("\n... and removing it again prunes the mappings:")
    uncle_id = kg.id_of(e("uncleOf"))
    removed = dictionary.remove_predicate(uncle_id)
    print(f"  {removed} mapping(s) dropped; top is back to:")
    top = dictionary.lookup(normalize_phrase("uncle of"))[0]
    print(f"    {describe_path(kg, top.path)}  confidence {top.confidence:.2f}")


if __name__ == "__main__":
    main()
