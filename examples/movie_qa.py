#!/usr/bin/env python
"""Scenario: an interactive movie/people QA session over the mini KG.

Runs a batch of questions across every shape the system supports —
factoids, lists, multi-constraint, yes/no, literal answers, demonyms —
and prints answers with per-stage timings.  Pass your own question as an
argument to try it live:

    python examples/movie_qa.py "Who developed Minecraft?"
"""

import sys

from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.paraphrase import ParaphraseMiner

QUESTIONS = [
    "Who is the mayor of Berlin?",
    "Give me all movies directed by Francis Ford Coppola.",
    "Which books by Kerouac were published by Viking Press?",
    "Is Michelle Obama the wife of Barack Obama?",
    "How tall is Michael Jordan?",
    "When did Michael Jackson die?",
    "Give me all Argentine films.",
    "Which country does the creator of Miffy come from?",
    "Who was called Scarface?",
    "What are the nicknames of San Francisco?",
]


def show(result) -> None:
    if result.boolean is not None:
        answer_text = "yes" if result.boolean else "no"
    elif result.answers:
        answer_text = ", ".join(str(a) for a in result.answers)
    else:
        answer_text = f"(no answer: {result.failure})"
    total_ms = result.total_time * 1000
    print(f"Q: {result.question}")
    print(f"A: {answer_text}   [{total_ms:.1f} ms]")
    print()


def main() -> None:
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_phrase_dataset()
    )
    system = GAnswer(kg, dictionary)

    questions = sys.argv[1:] if len(sys.argv) > 1 else QUESTIONS
    for question in questions:
        show(system.answer(question))


if __name__ == "__main__":
    main()
