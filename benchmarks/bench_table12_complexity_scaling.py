"""Tables 3 & 12 — measured complexity of both pipelines.

The claim: our question understanding is polynomial (it barely moves as
candidate lists grow — disambiguation is deferred to evaluation), while
DEANNA's understanding carries the NP-hard joint-disambiguation ILP whose
cost grows with the candidate count.  The benchmark times our
understanding-heavy path on the longest sweep question.
"""

from repro.core import GAnswer
from repro.experiments.complexity import candidate_scaling, understanding_scaling


def test_table12_understanding_scaling(benchmark, record_result, setup_plain):
    system = GAnswer(setup_plain.kg, setup_plain.dictionary)
    benchmark(
        lambda: system.answer(
            "Give me all people that were born in Vienna and died in Berlin."
        )
    )
    result = record_result(understanding_scaling())
    times = [row[2] for row in result.rows]
    assert max(times) < 100.0  # all under the paper's 100 ms bound


def test_table12_candidate_scaling(benchmark, record_result):
    from repro.experiments.common import default_setup
    from repro.linking import EntityLinker

    setup = default_setup(50)
    system = GAnswer(
        setup.kg, setup.dictionary, linker=EntityLinker(setup.kg, max_candidates=40)
    )
    benchmark(
        lambda: system.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
    )
    result = record_result(candidate_scaling())
    ours = [row[1] for row in result.rows]
    deanna = [row[2] for row in result.rows]
    # DEANNA's understanding grows with candidates; at the largest size the
    # gap is clear.
    assert deanna[-1] > deanna[0]
    assert deanna[-1] > 2 * ours[-1]
