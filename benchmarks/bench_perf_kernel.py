"""Hot-path kernel microbenchmarks: adjacency expansion and path mining.

The adjacency kernel (``repro.rdf.kernel``) is the substrate of both hot
loops — the offline bidirectional path BFS and the online match-time path
walking.  These benchmarks time the kernel layers directly on the Table 7
synthetic scenario; ``scripts/perf_baseline.py`` emits the same scenarios
as a machine-readable baseline (``BENCH_kernel.json``) that CI's
perf-smoke job gates on.
"""

from repro.datasets import SyntheticConfig, build_phrase_dataset, build_synthetic_kg
from repro.datasets.patty_sim import scale_phrase_dataset
from repro.datasets.synthetic import entity_pool
from repro.paraphrase import ParaphraseMiner
from repro.rdf.kernel import AdjacencyKernel


def _scenario():
    kg = build_synthetic_kg(
        SyntheticConfig(entities=1000, triples_per_entity=4, predicates=30)
    )
    dataset = scale_phrase_dataset(build_phrase_dataset(), 100, 5, entity_pool(kg))
    return kg, dataset


def test_kernel_build(benchmark):
    kg, _ = _scenario()
    kernel = benchmark(lambda: AdjacencyKernel(kg.store))
    stats = kernel.statistics()
    assert stats["edge_slots_full"] >= stats["edge_slots_entity"] > 0


def test_kernel_adjacency_expansion(benchmark):
    kg, _ = _scenario()
    kernel = kg.kernel
    nodes = sorted(kg.store.node_ids())

    def expand():
        return sum(len(kernel.adjacency(node)[0]) for node in nodes)

    slots = benchmark(expand)
    assert slots == kernel.statistics()["edge_slots_full"]


def test_kernel_path_mining(benchmark):
    kg, dataset = _scenario()

    def mine():
        kg.refresh()  # cold caches: time a genuine offline run
        return ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(dataset)

    dictionary = benchmark.pedantic(mine, rounds=2, iterations=1)
    assert len(list(dictionary.phrases())) > 0
