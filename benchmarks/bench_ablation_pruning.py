"""Ablation — neighborhood-based pruning (Section 4.2.2).

Pruning must not change any answer (it removes only candidates that can
appear in no match) while reducing evaluation work on graphs with large
candidate lists.  The benchmark times the evaluation stage with pruning
on; the driver compares both configurations over the full question set.
"""

from repro.core import GAnswer
from repro.datasets import qald_questions
from repro.eval import evaluate_system
from repro.experiments.complexity import pruning_ablation


def test_ablation_pruning(benchmark, record_result, setup_padded):
    system = GAnswer(setup_padded.kg, setup_padded.dictionary, use_pruning=True)
    benchmark(
        lambda: system.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
    )
    result = record_result(pruning_ablation())
    with_row, without_row = result.rows
    assert with_row[1] == without_row[1]  # identical right counts
