"""Ablation — tf-idf vs raw-frequency path scoring (Section 3).

Reproduces the (hasGender, hasGender) noise discussion: with tf-idf the
ubiquitous noise path scores zero and disappears; with raw term frequency
it ties the true relation path.  The benchmark times the tf-idf mining
run on the noise fixture via the driver.
"""

from repro.experiments.offline import tfidf_ablation


def test_ablation_tfidf(benchmark, record_result):
    result = benchmark.pedantic(tfidf_ablation, rounds=2, iterations=1)
    record_result(result)
    tfidf_row = next(row for row in result.rows if "tf-idf" in row[0])
    raw_row = next(row for row in result.rows if "raw" in row[0])
    assert tfidf_row[3] == "no"    # noise path suppressed
    assert raw_row[3] == "yes"     # noise path survives
    assert tfidf_row[2] == 1.0     # the true uncle path stays on top
