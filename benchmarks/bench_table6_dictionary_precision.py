"""Table 6 / Exp 1 — paraphrase dictionary contents and precision.

Regenerates the sample-mappings table and the precision-by-path-length
measurement (the paper: P@3 ≈ 50 % at length 1, dropping sharply with
length).  The benchmark times one full mining run on the noisy dataset.
"""

from repro.datasets import build_dbpedia_mini, build_noisy_phrase_dataset
from repro.experiments.offline import precision_by_length, table6_dictionary_precision
from repro.paraphrase import ParaphraseMiner


def test_table6_dictionary_precision(benchmark, record_result):
    kg = build_dbpedia_mini()
    phrases = build_noisy_phrase_dataset()
    benchmark(
        lambda: ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(phrases)
    )
    record_result(table6_dictionary_precision())
    precision = precision_by_length()
    # Exp 1's shape: high precision for single predicates, degrading for
    # longer paths.
    assert precision[1] > 0.5
    longest = max(precision)
    assert longest > 1
    assert precision[longest] < precision[1]
