"""Table 7 / Exp 2 — offline dictionary-mining time vs θ and scale.

The paper's shape: mining time grows steeply from θ=2 to θ=4 (17 min →
3.88 h on wordnet-wikipedia; 119 min → 30.33 h on freebase-wikipedia) and
with the phrase-dataset size.  The benchmark times the θ=2 mining run on
the small scaled dataset; the driver sweeps the full grid.
"""

from repro.datasets import SyntheticConfig, build_phrase_dataset, build_synthetic_kg
from repro.datasets.patty_sim import scale_phrase_dataset
from repro.datasets.synthetic import entity_pool
from repro.experiments.offline import table7_offline_time
from repro.paraphrase import ParaphraseMiner


def test_table7_offline_time(benchmark, record_result):
    synth = build_synthetic_kg(
        SyntheticConfig(entities=1000, triples_per_entity=4, predicates=30)
    )
    dataset = scale_phrase_dataset(
        build_phrase_dataset(), 100, 5, entity_pool(synth)
    )
    benchmark.pedantic(
        lambda: ParaphraseMiner(synth, max_path_length=2, top_k=3).mine(dataset),
        rounds=2, iterations=1,
    )
    result = record_result(table7_offline_time())
    for row in result.rows:
        theta2, theta4 = row[1], row[2]
        assert theta4 > theta2  # θ=4 is always slower
    small_theta4 = result.rows[0][2]
    large_theta4 = result.rows[1][2]
    assert large_theta4 > small_theta4  # larger dataset is slower
