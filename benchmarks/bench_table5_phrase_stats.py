"""Table 5 — relation-phrase dataset statistics.

Regenerates the Patty-dataset statistics table at several scales; the
benchmark times construction of the large (freebase-like) dataset.
"""

from repro.datasets import SyntheticConfig, build_phrase_dataset, build_synthetic_kg
from repro.datasets.patty_sim import scale_phrase_dataset
from repro.datasets.synthetic import entity_pool
from repro.experiments.offline import table5_phrase_statistics


def test_table5_phrase_statistics(benchmark, record_result):
    synth = build_synthetic_kg(SyntheticConfig(entities=500, triples_per_entity=4))
    pool = entity_pool(synth)

    benchmark(
        lambda: scale_phrase_dataset(build_phrase_dataset(), 1200, 6, pool)
    )
    result = record_result(table5_phrase_statistics())
    small = next(row for row in result.rows if "wordnet" in row[0])
    large = next(row for row in result.rows if "freebase" in row[0])
    # The shape of Table 5: the freebase-like dataset has several times
    # more phrases, with single-digit average support in both.
    assert large[1] > 3 * small[1]
    assert 1 <= small[3] <= 15
    assert 1 <= large[3] <= 15
