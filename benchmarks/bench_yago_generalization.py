"""Generalization — the second (YAGO2-style) repository.

Section 6 mentions evaluating on Yago2 besides DBpedia but omits the
results for space.  This benchmark supplies them for the reproduction:
the identical pipeline, with nothing tuned, mines the YAGO-style KB's
dictionary and answers all 20 of its benchmark questions exactly.
"""

from repro.core import GAnswer
from repro.datasets.yago_mini import (
    build_yago_mini,
    yago_phrase_dataset,
    yago_questions,
)
from repro.eval.metrics import term_to_gold
from repro.experiments.common import ExperimentResult
from repro.paraphrase import ParaphraseMiner


def test_yago_generalization(benchmark, record_result):
    kg = build_yago_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        yago_phrase_dataset()
    )
    system = GAnswer(kg, dictionary)
    questions = yago_questions()

    def run_all():
        return [system.answer(question.text) for question in questions]

    results = benchmark(run_all)

    table = ExperimentResult(
        "yago_generalization",
        "Generalization — YAGO2-style repository, 20 questions",
        ["question", "answers", "total (ms)"],
    )
    right = 0
    for question, result in zip(questions, results):
        produced = frozenset(term_to_gold(t) for t in result.answers)
        right += produced == question.gold
        table.rows.append(
            [
                question.text,
                ", ".join(sorted(str(a) for a in result.answers)) or "(none)",
                round(result.total_time * 1000, 2),
            ]
        )
    table.notes.append(f"exactly right: {right}/20")
    record_result(table)
    assert right == 20
