"""Table 4 — RDF graph statistics.

Regenerates the dataset-statistics table (the paper reports DBpedia's
5.2 M entities / 60 M triples / 1643 predicates); the benchmark times the
knowledge-graph construction itself.
"""

from repro.datasets import build_dbpedia_mini
from repro.experiments.offline import table4_graph_statistics


def test_table4_graph_statistics(benchmark, record_result):
    benchmark(build_dbpedia_mini)
    result = record_result(table4_graph_statistics())
    mini_row = result.rows[0]
    assert mini_row[1] > 100      # nodes
    assert mini_row[2] > 400      # triples
    assert mini_row[3] > 40       # predicates
