"""Table 11 — the correctly-answered questions with response times.

Regenerates the per-question listing.  The shape to check: exactly the
paper's 32 QALD question ids are answered, with every response time far
under the paper's own 250–2565 ms range (our substrate is tiny).  The
benchmark times the slowest of the paper's listed questions.
"""

from repro.core import GAnswer
from repro.experiments import paper
from repro.experiments.online import table11_answered_questions


def test_table11_answered_questions(benchmark, record_result, setup_plain):
    system = GAnswer(setup_plain.kg, setup_plain.dictionary)
    # Q19 (born in Vienna, died in Berlin) is among the paper's slowest.
    benchmark(
        lambda: system.answer(
            "Give me all people that were born in Vienna and died in Berlin."
        )
    )
    result = record_result(table11_answered_questions())
    measured_ids = {int(row[0][1:]) for row in result.rows}
    assert measured_ids == set(paper.TABLE11_QUESTION_IDS)
    assert len(result.rows) == 32
    for row in result.rows:
        assert row[2] < 2565  # every answer faster than the paper's slowest
