"""Table 8 — end-to-end QALD evaluation.

Regenerates the headline comparison: our method vs DEANNA vs the template
baseline over all 99 questions, with the paper's published campaign
numbers quoted alongside.  The benchmark times one full 99-question run
of our method.
"""

from repro.core import GAnswer
from repro.datasets import qald_questions
from repro.eval import evaluate_system
from repro.experiments.online import table8_end_to_end


def test_table8_end_to_end(benchmark, record_result, setup_plain):
    system = GAnswer(setup_plain.kg, setup_plain.dictionary)
    questions = qald_questions()

    runs = benchmark.pedantic(
        lambda: evaluate_system(system, questions, "Our Method (repro)"),
        rounds=2, iterations=1,
    )
    # Also publish the per-question QALD-3-format results (the paper ships
    # these in its full version).
    from pathlib import Path

    from repro.eval.qald_format import write_qald_results

    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)
    write_qald_results(runs, output_dir / "qald_results.json")

    result = record_result(table8_end_to_end())
    rows = {row[0]: row for row in result.rows}
    ours = rows["Our Method (repro)"]
    deanna = rows["DEANNA (repro)"]
    template = rows["Template QA (repro)"]
    # The paper's headline: 32 right for us, 21 for DEANNA, and we win on
    # every aggregate.
    assert ours[2] == 32
    assert deanna[2] == 21
    assert ours[2] > deanna[2] > template[2]
    assert ours[6] > deanna[6]  # F-1
