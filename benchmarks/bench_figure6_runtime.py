"""Figure 6 — online running time comparison, ours vs DEANNA.

Regenerates the per-question timing comparison on the distractor-padded
graph (DBpedia-like candidate lists).  The paper's shape: our total
response time beats DEANNA's on every common question, by 2–68×, and our
question understanding stays under 100 ms.  The benchmark times one
answer of the running example on the padded graph.
"""

from repro.core import GAnswer
from repro.experiments.online import figure6_runtime


_QUESTION = "Who was married to an actor that played in Philadelphia?"


def test_figure6_runtime(benchmark, record_result, setup_padded):
    system = GAnswer(setup_padded.kg, setup_padded.dictionary)
    benchmark(lambda: system.answer(_QUESTION))

    result = record_result(figure6_runtime(distractors=25))
    assert result.rows, "no commonly-answered questions to compare"
    speedups = [float(row[5].rstrip("x")) for row in result.rows]
    # Shape: ours wins on the vast majority of questions, with a wide
    # spread of factors (the paper reports 2–68x).
    faster = sum(1 for s in speedups if s > 1.0)
    assert faster / len(speedups) >= 0.8
    assert max(speedups) / max(min(speedups), 1e-9) > 3  # wide spread
    # Understanding bound: every question understood within 100 ms.
    understanding = [row[1] for row in result.rows]
    assert max(understanding) < 100.0
