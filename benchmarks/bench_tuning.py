"""Parameter tuning on the QALD training split (θ and k sweeps).

Regenerates the tuning sweeps that justify the paper's defaults (θ=4,
k=10).  The benchmark times one training-split evaluation at the default
parameters.
"""

from repro.core import GAnswer
from repro.datasets.qald import qald_train_questions
from repro.eval import evaluate_system
from repro.experiments.tuning import k_sweep, theta_sweep


def test_tuning_theta_sweep(benchmark, record_result, setup_plain):
    system = GAnswer(setup_plain.kg, setup_plain.dictionary)
    questions = qald_train_questions()
    benchmark.pedantic(
        lambda: evaluate_system(system, questions, "train"),
        rounds=2, iterations=1,
    )
    result = record_result(theta_sweep())
    by_theta = {row[0]: row for row in result.rows}
    # θ=4 (the paper's default) is on the quality plateau; θ=1 is worse
    # (multi-hop relations unreachable) and mining gets dearer with θ.
    assert by_theta[4][1] >= by_theta[1][1]
    assert by_theta[4][1] == max(row[1] for row in result.rows)
    assert by_theta[4][3] >= by_theta[1][3]


def test_tuning_k_sweep(benchmark, record_result, setup_plain):
    system = GAnswer(setup_plain.kg, setup_plain.dictionary, k=1)
    benchmark(lambda: system.answer("Who directed The Godfather?"))
    result = record_result(k_sweep())
    rights = [row[1] for row in result.rows]
    # k=10 (the default) matches the best observed quality.
    by_k = {row[0]: row for row in result.rows}
    assert by_k[10][1] == max(rights)
