"""Table 9 — ablation of the four argument-finding heuristic rules.

The paper: with the rules, arguments are found for 48 questions (vs 32)
and 32 questions are answered correctly (vs 21).  The shape to check is
both metrics improving when the rules are on.  The benchmark times a
full evaluation run with the rules disabled.
"""

from repro.core import GAnswer
from repro.datasets import qald_questions
from repro.eval import evaluate_system
from repro.experiments.online import table9_heuristic_rules


def test_table9_heuristic_rules(benchmark, record_result, setup_plain):
    without = GAnswer(setup_plain.kg, setup_plain.dictionary, use_heuristic_rules=False)
    questions = qald_questions()
    benchmark.pedantic(
        lambda: evaluate_system(without, questions, "no-rules"),
        rounds=2, iterations=1,
    )
    result = record_result(table9_heuristic_rules())
    arguments_row, answers_row = result.rows
    assert arguments_row[2] > arguments_row[1]   # rules find more arguments
    assert answers_row[2] > answers_row[1]       # rules answer more questions
    assert answers_row[2] == 32                  # the paper's right count
