"""Scaling — end-to-end time vs knowledge-graph size.

Beyond the paper's tables: sweep the distractor padding (which grows the
graph and every candidate list the way full DBpedia does) and check that
answers stay identical while time grows gently.  A second axis grows a
synthetic graph to 10^6 triples and runs the same subject-bound workload
on single-segment vs sharded storage — identical rows required.  The
benchmark times the running example on the largest padded graph.
"""

from repro.core import GAnswer
from repro.experiments.common import default_setup
from repro.experiments.complexity import kg_size_scaling


def test_scaling_kg_size(benchmark, record_result):
    setup = default_setup(100)
    system = GAnswer(setup.kg, setup.dictionary)
    benchmark(
        lambda: system.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
    )
    result = record_result(kg_size_scaling())
    distractor_rows = [r for r in result.rows if r[0].startswith("distractors=")]
    answers = {row[3] for row in distractor_rows}
    assert len(answers) == 1  # identical answers at every scale
    assert "Melanie_Griffith" in answers.pop()
    times = [row[2] for row in distractor_rows]
    # Time grows sub-linearly in the padding: 100x distractors should not
    # cost 100x the latency.
    assert times[-1] < times[0] * 100
    # The storage axis rows come in (single, sharded) pairs per scale and
    # must retrieve identical row counts.
    storage_rows = [r for r in result.rows if r[0].startswith("triples=")]
    assert storage_rows and len(storage_rows) % 2 == 0
    for single, sharded in zip(storage_rows[::2], storage_rows[1::2]):
        assert single[3] == sharded[3]
