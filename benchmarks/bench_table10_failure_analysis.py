"""Table 10 — failure analysis.

Regenerates the failure-class breakdown.  The paper's shape: aggregation
is the largest class (35 %), then entity linking (27 %), then relation
extraction (22 %), then other (16 %).  The benchmark times the failure
classification over a full evaluation run.
"""

from repro.experiments.online import run_ganswer, table10_failure_analysis


def test_table10_failure_analysis(benchmark, record_result):
    run = run_ganswer()
    benchmark(run.failure_counts)

    result = record_result(table10_failure_analysis())
    counts = {row[0].split(" ")[0]: row[1] for row in result.rows}
    assert (
        counts["aggregation"]
        > counts["entity_linking"]
        > counts["relation_extraction"]
        > counts["other"]
    )
    ratios = {row[0].split(" ")[0]: float(row[2].rstrip("%")) / 100 for row in result.rows}
    # Each ratio within ten points of the paper's.
    paper = {"entity_linking": 0.27, "relation_extraction": 0.22,
             "aggregation": 0.35, "other": 0.16}
    for reason, expected in paper.items():
        assert abs(ratios[reason] - expected) < 0.10
