"""Ablation — TA-style early termination (Algorithm 3).

The threshold stop must leave the top-k matches unchanged (it only skips
provably-dominated seeds).  The driver compares full-run right counts and
evaluation time with the stop on and off.
"""

from repro.core import GAnswer
from repro.experiments.complexity import ta_ablation


def test_ablation_ta(benchmark, record_result, setup_padded):
    system = GAnswer(setup_padded.kg, setup_padded.dictionary, use_ta=True)
    benchmark(
        lambda: system.answer("Which cities does the Weser flow through?")
    )
    result = record_result(ta_ablation())
    with_row, without_row = result.rows
    assert with_row[1] == without_row[1]  # identical right counts
