"""Benchmark harness configuration.

Every benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md's experiment index).  The regenerated rows are
printed and also written to ``benchmarks/output/<experiment_id>.txt`` so
EXPERIMENTS.md can quote them.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

_OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def record_result():
    """Persist and print a driver's ExperimentResult."""

    def _record(result):
        _OUTPUT_DIR.mkdir(exist_ok=True)
        rendered = result.render()
        (_OUTPUT_DIR / f"{result.experiment_id}.txt").write_text(rendered + "\n")
        print("\n" + rendered)
        return result

    return _record


@pytest.fixture(scope="session")
def setup_plain():
    from repro.experiments.common import default_setup

    return default_setup(0)


@pytest.fixture(scope="session")
def setup_padded():
    from repro.experiments.common import default_setup

    return default_setup(25)
