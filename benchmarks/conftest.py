"""Benchmark harness configuration.

Every benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md's experiment index).  The regenerated rows are
printed and also written to ``benchmarks/output/<experiment_id>.txt`` so
EXPERIMENTS.md can quote them.

Every benchmark additionally runs under a recording ``repro.obs`` tracer:
the aggregated per-stage wall times and search counters of each test are
written to ``benchmarks/output/traces/<test_name>.json`` (the
``Tracer.summary()`` shape — see docs/observability.md).

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro import obs

_OUTPUT_DIR = Path(__file__).parent / "output"
_TRACE_DIR = _OUTPUT_DIR / "traces"


@pytest.fixture(scope="session")
def record_result():
    """Persist and print a driver's ExperimentResult."""

    def _record(result):
        _OUTPUT_DIR.mkdir(exist_ok=True)
        rendered = result.render()
        (_OUTPUT_DIR / f"{result.experiment_id}.txt").write_text(rendered + "\n")
        print("\n" + rendered)
        return result

    return _record


@pytest.fixture(autouse=True)
def trace_run(request):
    """Record spans/counters for every benchmark and emit a timing JSON."""
    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        yield tracer
    summary = tracer.summary()
    if not summary["spans"] and not summary["metrics"]["counters"]:
        return
    _TRACE_DIR.mkdir(parents=True, exist_ok=True)
    safe_name = re.sub(r"[^\w.-]+", "_", request.node.name)
    (_TRACE_DIR / f"{safe_name}.json").write_text(
        json.dumps(summary, indent=2, default=str) + "\n"
    )


@pytest.fixture(scope="session")
def setup_plain():
    from repro.experiments.common import default_setup

    return default_setup(0)


@pytest.fixture(scope="session")
def setup_padded():
    from repro.experiments.common import default_setup

    return default_setup(25)
