#!/usr/bin/env python
"""Perf baseline for the hot-path graph kernel (BENCH_kernel.json).

Times the four layers the adjacency kernel accelerates and writes a
machine-readable baseline:

* ``kernel_build``        — full index construction from the triple store;
* ``adjacency_expansion`` — streaming every (step, neighbor) slot;
* ``walk_path``           — signed-path walking (the match-time check);
* ``path_mining``         — offline dictionary mining, θ=4 (Algorithm 1);
* ``end_to_end_qa``       — QALD questions through the full pipeline.

``--quick`` runs one repeat per benchmark instead of three — same
scenarios, so quick numbers stay comparable with a committed full
baseline.  ``--check FILE`` compares against a previous baseline and
exits non-zero when any shared benchmark regressed by more than
``--max-regression`` (a deliberately loose multiple: CI machines differ,
only order-of-magnitude regressions should gate).

Usage::

    PYTHONPATH=src python scripts/perf_baseline.py --output BENCH_kernel.json
    PYTHONPATH=src python scripts/perf_baseline.py --quick \
        --check BENCH_kernel.json --max-regression 3.0
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "bench_kernel/v1"


def _timed(fn, repeats: int) -> tuple[float, int]:
    """Best wall-clock of ``repeats`` runs; fn returns its op count.

    One untimed warmup run precedes the timed ones so caches (kernel LRU,
    interpreter) are in the same warm state at any repeat count — quick
    (1 repeat) and full (3 repeats) baselines stay comparable.
    """
    fn()
    best = None
    ops = 0
    for _ in range(repeats):
        started = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, ops


def build_scenario(triples: int | None = None):
    from repro.datasets import (
        SyntheticConfig,
        build_phrase_dataset,
        build_synthetic_kg,
    )
    from repro.datasets.patty_sim import scale_phrase_dataset
    from repro.datasets.synthetic import entity_pool

    if triples is None:
        # The committed-baseline scenario: keep it byte-stable so old
        # BENCH_kernel.json files stay comparable.
        config = SyntheticConfig(entities=1000, triples_per_entity=4, predicates=30)
    else:
        config = SyntheticConfig.with_total_triples(
            triples, triples_per_entity=4, predicates=30
        )
    kg = build_synthetic_kg(config)
    dataset = scale_phrase_dataset(build_phrase_dataset(), 100, 5, entity_pool(kg))
    return kg, dataset


def bench_kernel_build(kg, repeats):
    from repro.rdf.kernel import AdjacencyKernel

    def run():
        kernel = AdjacencyKernel(kg.store)
        return kernel.statistics()["edge_slots_full"]

    return _timed(run, repeats)


def bench_adjacency_expansion(kg, repeats):
    kernel = kg.kernel
    nodes = sorted(kg.store.node_ids())

    def run():
        slots = 0
        adjacency = kernel.adjacency
        for node in nodes:
            steps, _neighbors = adjacency(node)
            slots += len(steps)
        return slots

    return _timed(run, repeats)


def bench_walk_path(kg, repeats):
    kernel = kg.kernel
    starts = sorted(kg.entity_ids())[:200]
    walks = []
    for start in starts:
        steps, _ = kernel.entity_adjacency(start)
        if len(steps) >= 2:
            walks.append((start, (steps[0], -steps[1])))
            walks.append((start, (steps[-1],)))

    def run():
        walk = kernel.walk_path
        for start, path in walks:
            walk(start, path)
        return len(walks)

    return _timed(run, repeats)


def bench_path_mining(kg, dataset, repeats, jobs):
    from repro.paraphrase import ParaphraseMiner

    def run():
        kg.refresh()  # cold kernel + caches: measure a real offline run
        miner = ParaphraseMiner(kg, max_path_length=4, top_k=3, jobs=jobs)
        miner.mine(dataset)
        return dataset.pair_count()

    return _timed(run, repeats)


def bench_end_to_end(repeats):
    from repro.core import GAnswer
    from repro.datasets import qald_questions
    from repro.experiments.common import default_setup

    setup = default_setup(0)
    system = GAnswer(setup.kg, setup.dictionary)
    questions = [q.text for q in qald_questions()[:20]]

    def run():
        for question in questions:
            system.answer(question)
        return len(questions)

    return _timed(run, repeats)


def run_benchmarks(quick: bool, jobs: int, triples: int | None = None) -> dict:
    repeats = 1 if quick else 3
    kg, dataset = build_scenario(triples)
    results = {}

    def record(name, timing):
        seconds, ops = timing
        results[name] = {
            "ops": ops,
            "seconds": round(seconds, 6),
            "ops_per_sec": round(ops / seconds, 2) if seconds > 0 else None,
        }
        print(f"  {name:22s} {ops:>8d} ops  {seconds:8.4f}s  "
              f"{results[name]['ops_per_sec']:>12} ops/s")

    print(f"perf baseline ({'quick' if quick else 'full'}, jobs={jobs}, "
          f"triples={len(kg.store)}):")
    record("kernel_build", bench_kernel_build(kg, repeats))
    record("adjacency_expansion", bench_adjacency_expansion(kg, repeats))
    record("walk_path", bench_walk_path(kg, repeats))
    record("path_mining", bench_path_mining(kg, dataset, repeats, jobs))
    if triples is None:
        # Scale-independent (runs the curated QALD scenario) — skipped on
        # --triples sweeps where only the synthetic graph grows.
        record("end_to_end_qa", bench_end_to_end(repeats))

    return {
        "schema": SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "jobs": jobs,
        "triples": len(kg.store),
        "kernel": kg.kernel.statistics(),
        "benchmarks": results,
    }


def check_regression(current: dict, baseline_path: Path, max_regression: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != SCHEMA:
        print(f"error: {baseline_path} is not a {SCHEMA} baseline", file=sys.stderr)
        return 2
    failures = 0
    print(f"\nregression check against {baseline_path} (limit {max_regression}x):")
    for name, entry in current["benchmarks"].items():
        reference = baseline["benchmarks"].get(name)
        if reference is None or not reference.get("ops_per_sec"):
            print(f"  {name:22s} (no baseline — skipped)")
            continue
        ratio = reference["ops_per_sec"] / entry["ops_per_sec"]
        verdict = "ok" if ratio <= max_regression else "REGRESSED"
        print(f"  {name:22s} {entry['ops_per_sec']:>12} vs "
              f"{reference['ops_per_sec']:>12} baseline  ({ratio:4.2f}x slower)  {verdict}")
        if ratio > max_regression:
            failures += 1
    if failures:
        print(f"error: {failures} benchmark(s) regressed beyond "
              f"{max_regression}x", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one repeat per benchmark (CI smoke mode)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="mining worker count (default 1; 0 = auto)")
    parser.add_argument("--triples", type=int, default=None, metavar="N",
                        help="size the synthetic graph to ~N triples (up to "
                        "10^6) instead of the committed-baseline scenario; "
                        "skips the scale-independent end-to-end benchmark")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the baseline JSON here")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="compare against a previous baseline JSON")
    parser.add_argument("--max-regression", type=float, default=3.0,
                        help="fail when a benchmark is this many times "
                        "slower than the baseline (default 3.0)")
    args = parser.parse_args(argv)

    payload = run_benchmarks(args.quick, args.jobs, args.triples)
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    if args.check:
        return check_regression(payload, Path(args.check), args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
