#!/usr/bin/env python
"""Regenerate the checked-in lint baseline (lint-baseline.json).

The baseline grandfathers *existing* findings so `repro lint --baseline`
only fails on new ones.  Policy: the baseline should stay **empty** —
fix findings rather than baselining them — but when a rule is introduced
(or tightened) against code that cannot be fixed in the same change,
regenerate with this script, commit the result, and burn the entries
down in follow-ups.

Baseline entries key on ``(rule, path, message)`` with no line numbers,
so unrelated edits to a baselined file do not churn the file.

Usage::

    PYTHONPATH=src python scripts/lint_baseline.py                # rewrite
    PYTHONPATH=src python scripts/lint_baseline.py --check        # verify
    PYTHONPATH=src python scripts/lint_baseline.py --rule layering
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import LintConfig, run_lint  # noqa: E402
from repro.analysis.baseline import save_baseline  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "lint-baseline.json"
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(DEFAULT_BASELINE),
        help="baseline file to write (default: lint-baseline.json)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="NAME",
        help="restrict to one rule (repeatable); default: all rules",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed baseline matches a fresh scan instead "
        "of rewriting it (exit 1 on drift)",
    )
    args = parser.parse_args()

    config = LintConfig(rules=tuple(args.rule) if args.rule else None)
    report = run_lint([DEFAULT_TARGET], config)
    findings = sorted(report.all_findings, key=lambda f: f.key)
    output = Path(args.output)

    if args.check:
        fresh = [
            {"rule": f.rule, "path": f.relpath, "message": f.message}
            for f in findings
        ]
        try:
            committed = json.loads(output.read_text()).get("findings", [])
        except FileNotFoundError:
            print(f"error: {output} does not exist", file=sys.stderr)
            return 1
        def entry_key(entry: dict) -> tuple:
            return (
                entry.get("rule", ""),
                entry.get("path", ""),
                entry.get("message", ""),
            )

        if sorted(fresh, key=entry_key) != sorted(committed, key=entry_key):
            print(
                f"baseline drift: scan found {len(fresh)} finding(s), "
                f"{output.name} records {len(committed)}; regenerate with "
                f"PYTHONPATH=src python scripts/lint_baseline.py",
                file=sys.stderr,
            )
            return 1
        print(f"{output.name} matches a fresh scan ({len(fresh)} finding(s))")
        return 0

    save_baseline(output, findings)
    print(f"wrote {output} with {len(findings)} finding(s)")
    if findings:
        print(
            "note: the baseline policy is to fix findings, not grandfather "
            "them — burn these down.", file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
