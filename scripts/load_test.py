#!/usr/bin/env python
"""Serving-layer load test → BENCH_serve.json (schema bench_serve/v2).

Drives a ``repro serve`` instance with concurrent QALD questions and
records the serving-perf trajectory next to the kernel baseline
(``BENCH_kernel.json``).  Four measured passes:

* ``serial``          — one client, every question once, cache bypassed
  (the per-request compute floor);
* ``concurrent_cold`` — ``--clients`` threads, **cache bypassed**: every
  request runs the full QA pipeline.  This is the honest "cache-miss
  qps" — the number the ≥ 2x concurrency bar applies to.  (Schema v1
  measured its concurrent pass with the cache on, so after the serial
  pass most "concurrent" requests were answer-cache hits and the
  reported speedup was the cache's, not the server's.)
* ``concurrent``      — same clients with the cache enabled (mixed
  traffic: first arrival computes, the rest hit);
* ``repeated``        — the same questions again (≈ pure cache hits, the
  steady state of production traffic with repeating questions).

Each pass reports throughput, p50/p95/p99 latency, HTTP error count,
degraded/deadline counts, and the answer-cache hit delta read from
``GET /stats`` around the pass.  The serial pass also fingerprints every
answer (sha256 over the sorted question → answers map) so runs at
different ``--workers`` counts can be checked for byte-identical output.

By default the script self-hosts: it launches ``repro serve`` in a
subprocess on an ephemeral port (``--workers N`` forwards to the server
— N > 1 exercises the pre-fork path).  ``--sweep-workers 1,2,4`` runs
the whole measurement once per worker count and reports cache-miss
scaling ratios; the answer digest must agree across the sweep.  Note
that on a single-core host (``host_cpus: 1``) worker scaling of
CPU-bound QA is physically capped at ~1x — the sweep records honest
numbers and the scaling expectation only applies when cores exist.

Point the script at an external server with ``--url`` instead.  The
process exits non-zero when any request errors, and ``--check FILE``
additionally gates on p95 latency regressing more than
``--max-regression``x against a committed baseline.

Usage::

    PYTHONPATH=src python scripts/load_test.py --clients 16 --output BENCH_serve.json
    PYTHONPATH=src python scripts/load_test.py --sweep-workers 1,2,4 --output BENCH_serve.json
    PYTHONPATH=src python scripts/load_test.py --quick --workers 2 \
        --check BENCH_serve.json --max-regression 3.0
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import threading
import time
import urllib.error
import urllib.request
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "bench_serve/v2"


# --------------------------------------------------------------------- #
# HTTP client
# --------------------------------------------------------------------- #

def _post_ask(
    base_url: str, question: str, no_cache: bool = False, timeout: float = 30.0
) -> tuple[int, dict]:
    payload: dict = {"question": question}
    if no_cache:
        payload["no_cache"] = True
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"{base_url}/ask", data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            payload = json.loads(error.read())
        except Exception:
            payload = {}
        return error.code, payload
    except (urllib.error.URLError, ConnectionError, OSError, TimeoutError) as error:
        # A transport-level failure (reset, refused, timeout) is a load-test
        # error like any non-200 — recorded, never a dead worker thread.
        return 0, {"error": str(error)}


def _get_json(base_url: str, path: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(f"{base_url}{path}", timeout=timeout) as response:
        return json.loads(response.read())


def wait_ready(base_url: str, timeout: float = 60.0) -> dict:
    """Poll /healthz until the engine reports ready (or raise)."""
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            health = _get_json(base_url, "/healthz", timeout=2.0)
            if health.get("ready"):
                return health
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            last_error = error
        time.sleep(0.25)
    raise RuntimeError(f"server at {base_url} never became ready: {last_error}")


# --------------------------------------------------------------------- #
# Question sets
# --------------------------------------------------------------------- #

def synthetic_questions(count: int, seed: int = 11) -> list[str]:
    """Deterministic questions that do real search work on the synthetic KG.

    QALD texts fail entity linking on the synthetic graph in ~1 ms, which
    measures the HTTP stack rather than the engine; these questions link
    ("entity N" labels exist) and run the top-k search (~tens of ms cold),
    so the serial pass has actual compute for the cache to amortize.
    """
    import random

    from repro.datasets import SyntheticConfig, build_phrase_dataset, build_synthetic_kg
    from repro.datasets.patty_sim import scale_phrase_dataset
    from repro.datasets.synthetic import entity_pool

    kg = build_synthetic_kg(
        SyntheticConfig(entities=1000, triples_per_entity=4, predicates=30)
    )
    dataset = scale_phrase_dataset(build_phrase_dataset(), 100, 5, entity_pool(kg))
    # Generated filler names ("synthetic relation 43") fail the parser's
    # relation extraction immediately — only real verb phrases search.
    phrases = [
        phrase for phrase in sorted(dataset.support)
        if not phrase.startswith("synthetic relation")
    ]
    rng = random.Random(seed)
    return [
        f"Which entity {rng.choice(phrases)} entity {rng.randrange(1000)}?"
        for _ in range(count)
    ]


def build_questions(question_set: str, cap: int | None) -> list[str]:
    from repro.datasets import qald_questions

    qald = [q.text for q in qald_questions()]
    if cap:
        qald = qald[:cap]
    if question_set == "qald":
        return qald
    synthetic = synthetic_questions(max(8, len(qald) // 3))
    if question_set == "synthetic":
        return synthetic
    # mixed: QALD texts (the paper's benchmark traffic) interleaved with
    # questions the synthetic store can actually answer.
    return qald + synthetic


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #

def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def answers_digest(answers: dict[str, list]) -> str:
    """Order-independent fingerprint of a question → answers map."""
    canonical = json.dumps(
        {q: answers[q] for q in sorted(answers)}, sort_keys=True
    ).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def run_pass(
    base_url: str,
    questions: list[str],
    clients: int,
    name: str,
    no_cache: bool = False,
    collect_answers: dict[str, list] | None = None,
) -> dict:
    """One measured pass: ``clients`` threads each asking every question."""
    stats_before = _get_json(base_url, "/stats")
    latencies: list[float] = []
    errors: list[tuple[int, str]] = []
    degraded = 0
    deadline_cut = 0
    cached = 0
    lock = threading.Lock()

    def worker(worker_questions: list[str]) -> None:
        nonlocal degraded, deadline_cut, cached
        for question in worker_questions:
            started = time.perf_counter()
            status, payload = _post_ask(base_url, question, no_cache=no_cache)
            elapsed = (time.perf_counter() - started) * 1000.0
            with lock:
                latencies.append(elapsed)
                if status != 200:
                    errors.append((status, question))
                    continue
                if payload.get("degraded"):
                    degraded += 1
                if payload.get("terminated_by") == "deadline":
                    deadline_cut += 1
                if payload.get("cached"):
                    cached += 1
                if collect_answers is not None:
                    collect_answers[question] = [
                        payload.get("answers"), payload.get("boolean"),
                    ]

    threads = [
        threading.Thread(target=worker, args=(list(questions),), daemon=True)
        for _ in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    stats_after = _get_json(base_url, "/stats")
    cache_hits = (
        stats_after["answer_cache"]["hits"] - stats_before["answer_cache"]["hits"]
    )
    ordered = sorted(latencies)
    total = len(latencies)
    result = {
        "clients": clients,
        "requests": total,
        "cache_bypassed": no_cache,
        "wall_s": round(wall, 4),
        "throughput_qps": round(total / wall, 2) if wall > 0 else None,
        "latency_ms": {
            "p50": round(_percentile(ordered, 0.50), 3),
            "p95": round(_percentile(ordered, 0.95), 3),
            "p99": round(_percentile(ordered, 0.99), 3),
            "max": round(ordered[-1], 3) if ordered else 0.0,
        },
        "errors": len(errors),
        "degraded": degraded,
        "deadline_cut": deadline_cut,
        "cached_responses": cached,
        "cache_hits": cache_hits,
    }
    print(
        f"  {name:15s} {clients:3d} clients  {total:5d} reqs  "
        f"{result['throughput_qps']:>8} q/s  "
        f"p50 {result['latency_ms']['p50']:7.2f} ms  "
        f"p95 {result['latency_ms']['p95']:7.2f} ms  "
        f"errors {len(errors)}  cache hits {cache_hits}"
    )
    for status, question in errors[:5]:
        print(f"    error {status}: {question!r}", file=sys.stderr)
    return result


def run_load_test(base_url: str, clients: int, questions: list[str]) -> dict:
    health = wait_ready(base_url)
    workers = (health.get("worker") or {}).get("workers", 1)
    print(f"server ready (store v{health.get('store_version')}, "
          f"workers={workers}); {len(questions)} questions, {clients} clients")

    # Untimed warmup so both the engine's lazy state and the HTTP stack
    # are warm before the serial floor is measured; bypass the cache so
    # warmup cannot pre-answer the measured passes.
    for question in questions[: min(5, len(questions))]:
        _post_ask(base_url, question, no_cache=True)

    answers: dict[str, list] = {}
    serial = run_pass(
        base_url, questions, clients=1, name="serial",
        no_cache=True, collect_answers=answers,
    )
    concurrent_cold = run_pass(
        base_url, questions, clients=clients, name="concurrent_cold", no_cache=True
    )
    concurrent = run_pass(base_url, questions, clients=clients, name="concurrent")
    repeated = run_pass(base_url, questions, clients=clients, name="repeated")

    def _ratio(a: dict, b: dict):
        if a["throughput_qps"] and b["throughput_qps"]:
            return round(a["throughput_qps"] / b["throughput_qps"], 2)
        return None

    cold_speedup = _ratio(concurrent_cold, serial)
    cached_speedup = _ratio(repeated, serial)
    print(f"  cache-miss speedup (concurrent_cold vs serial): {cold_speedup}x")
    print(f"  cached speedup     (repeated vs serial):        {cached_speedup}x")

    metrics = _get_json(base_url, "/metrics")
    stats = _get_json(base_url, "/stats")
    return {
        "schema": SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_cpus": os.cpu_count(),
        "clients": clients,
        "workers": workers,
        "questions": len(questions),
        "passes": {
            "serial": serial,
            "concurrent_cold": concurrent_cold,
            "concurrent": concurrent,
            "repeated": repeated,
        },
        # Back-compat alias; the honest concurrency number is cold_speedup.
        "concurrent_speedup": cold_speedup,
        "cold_speedup": cold_speedup,
        "cached_speedup": cached_speedup,
        "answers_sha256": answers_digest(answers),
        "answer_cache": stats.get("answer_cache"),
        "admission": stats.get("admission"),
        "counters": metrics.get("counters", {}),
    }


# --------------------------------------------------------------------- #
# Self-hosted server (no --url)
# --------------------------------------------------------------------- #

def start_local_server(dataset: str, workers: int = 1, snapshot: str | None = None):
    """``repro serve`` as a subprocess on an ephemeral port (returns
    ``(base_url, shutdown_callable)``).

    A subprocess — not an in-process thread — so the server has its own
    interpreter (and GIL): measured concurrency then reflects a real
    deployment, where client and server never contend for one GIL.
    ``workers > 1`` starts the pre-fork supervisor.
    """
    import re
    import signal
    import subprocess

    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(repo_root / "src"), env.get("PYTHONPATH")])
    )
    command = [
        sys.executable, "-m", "repro", "serve",
        "--dataset", dataset, "--port", "0", "--workers", str(workers),
    ]
    if snapshot:
        command += ["--snapshot", snapshot]
    process = subprocess.Popen(
        command, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    # The serve command prints its bound address first (flush=True); with
    # --port 0 that line is the only way to learn the ephemeral port.
    line = process.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    if not match:
        process.terminate()
        raise RuntimeError(f"could not parse server address from: {line!r}")

    def shutdown() -> None:
        # SIGTERM, not terminate-then-kill straight away: the pre-fork
        # supervisor needs the signal to reap its worker processes.
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=5)

    return f"http://{match.group(1)}:{match.group(2)}", shutdown


# --------------------------------------------------------------------- #
# Regression gate
# --------------------------------------------------------------------- #

def check_regression(current: dict, baseline_path: Path, max_regression: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != SCHEMA:
        print(f"error: {baseline_path} is not a {SCHEMA} baseline", file=sys.stderr)
        return 2
    failures = 0
    print(f"\nregression check against {baseline_path} (limit {max_regression}x):")
    for name, entry in current["passes"].items():
        reference = baseline["passes"].get(name)
        if reference is None:
            print(f"  {name:15s} (no baseline — skipped)")
            continue
        current_p95 = entry["latency_ms"]["p95"]
        reference_p95 = reference["latency_ms"]["p95"]
        if reference_p95 <= 0:
            print(f"  {name:15s} (degenerate baseline p95 — skipped)")
            continue
        ratio = current_p95 / reference_p95
        verdict = "ok" if ratio <= max_regression else "REGRESSED"
        print(f"  {name:15s} p95 {current_p95:8.2f} ms vs {reference_p95:8.2f} ms "
              f"baseline  ({ratio:4.2f}x)  {verdict}")
        if ratio > max_regression:
            failures += 1
    if failures:
        print(f"error: {failures} pass(es) regressed beyond {max_regression}x",
              file=sys.stderr)
        return 1
    return 0


def run_sweep(
    worker_counts: list[int],
    dataset: str,
    clients: int,
    questions: list[str],
    snapshot: str | None = None,
) -> dict:
    """The full measurement once per worker count; cache-miss scaling +
    answer-digest agreement across the counts.

    The headline ``passes`` in the returned payload come from the
    2-worker run when the sweep includes one (falling back to the first
    run): that is the configuration CI's serve-smoke replays, so the
    committed baseline and the gated run describe the same shape of
    deployment.  Every run's numbers survive in ``workers_sweep``.
    """
    runs: list[dict] = []
    for workers in worker_counts:
        print(f"\n=== workers={workers} ===")
        base_url, shutdown = start_local_server(
            dataset, workers=workers, snapshot=snapshot
        )
        try:
            runs.append(run_load_test(base_url, clients, questions))
        finally:
            shutdown()
    base = runs[0]
    base_qps = base["passes"]["concurrent_cold"]["throughput_qps"] or 0.0
    sweep = []
    for run in runs:
        qps = run["passes"]["concurrent_cold"]["throughput_qps"] or 0.0
        sweep.append({
            "workers": run["workers"],
            "cache_miss_qps": qps,
            "scaling_vs_1": round(qps / base_qps, 2) if base_qps else None,
            "p95_ms": run["passes"]["concurrent_cold"]["latency_ms"]["p95"],
            "answers_sha256": run["answers_sha256"],
        })
    digests = {entry["answers_sha256"] for entry in sweep}
    headline = next((r for r in runs if r["workers"] == 2), runs[0])
    payload = dict(headline)
    payload["workers_sweep"] = sweep
    payload["sweep_answers_identical"] = len(digests) == 1
    print("\ncache-miss scaling (concurrent_cold qps):")
    for entry in sweep:
        print(f"  workers={entry['workers']}: {entry['cache_miss_qps']} q/s "
              f"({entry['scaling_vs_1']}x vs 1 worker)")
    print(f"  answers identical across sweep: {payload['sweep_answers_identical']}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="base URL of a running repro serve instance "
                        "(default: self-host an in-process server)")
    parser.add_argument("--dataset", choices=("dbpedia-mini", "synthetic"),
                        default="synthetic",
                        help="dataset for the self-hosted server (default synthetic)")
    parser.add_argument("--snapshot", metavar="FILE", default=None,
                        help="serve from a compiled snapshot (single file or "
                        "sharded manifest) instead of building the dataset")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads (default 16)")
    parser.add_argument("--workers", type=int, default=1,
                        help="server worker processes for the self-hosted "
                        "server (>1 = pre-fork; ignored with --url)")
    parser.add_argument("--sweep-workers", metavar="N,N,...", default=None,
                        help="run the full measurement at each worker count "
                        "(e.g. 1,2,4) and record cache-miss scaling")
    parser.add_argument("--questions", type=int, default=None,
                        help="cap the QALD question count")
    parser.add_argument("--question-set", choices=("mixed", "qald", "synthetic"),
                        default="mixed",
                        help="workload: QALD texts, synthetic-KG questions, "
                        "or both (default mixed)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 8 clients, 25 questions")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the benchmark JSON here")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="compare p95 latency against a previous baseline")
    parser.add_argument("--max-regression", type=float, default=3.0,
                        help="fail when a pass's p95 is this many times the "
                        "baseline's (default 3.0)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless cache-miss concurrent throughput is "
                        "at least this multiple of the serial pass")
    args = parser.parse_args(argv)

    clients = 8 if args.quick else args.clients
    question_cap = args.questions if args.questions else (25 if args.quick else None)
    questions = build_questions(args.question_set, question_cap)

    if args.sweep_workers:
        if args.url:
            print("error: --sweep-workers needs self-hosted servers (no --url)",
                  file=sys.stderr)
            return 2
        worker_counts = [int(n) for n in args.sweep_workers.split(",") if n.strip()]
        payload = run_sweep(
            worker_counts, args.dataset, clients, questions,
            snapshot=args.snapshot,
        )
    else:
        shutdown = None
        if args.url:
            base_url = args.url.rstrip("/")
        else:
            source = f"snapshot={args.snapshot}" if args.snapshot \
                else f"dataset={args.dataset}"
            print(f"self-hosting server ({source}, workers={args.workers}) ...")
            base_url, shutdown = start_local_server(
                args.dataset, workers=args.workers, snapshot=args.snapshot
            )
        try:
            payload = run_load_test(base_url, clients, questions)
        finally:
            if shutdown is not None:
                shutdown()
    payload["question_set"] = args.question_set

    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nbenchmark written to {args.output}")

    rc = 0
    total_errors = sum(p["errors"] for p in payload["passes"].values())
    if total_errors:
        print(f"error: {total_errors} request(s) failed", file=sys.stderr)
        rc = 1
    if args.min_speedup is not None:
        speedup = payload["cold_speedup"] or 0.0
        if speedup < args.min_speedup:
            print(f"error: cache-miss concurrent speedup {speedup}x below "
                  f"required {args.min_speedup}x", file=sys.stderr)
            rc = 1
    if args.check:
        rc = max(rc, check_regression(payload, Path(args.check), args.max_regression))
    return rc


if __name__ == "__main__":
    sys.exit(main())
