#!/usr/bin/env python
"""Serving-layer load test → BENCH_serve.json (schema bench_serve/v2).

Drives a ``repro serve`` instance with concurrent QALD questions and
records the serving-perf trajectory next to the kernel baseline
(``BENCH_kernel.json``).  Four measured passes:

* ``serial``          — one client, every question once, cache bypassed
  (the per-request compute floor);
* ``concurrent_cold`` — ``--clients`` threads, **cache bypassed**: every
  request runs the full QA pipeline.  This is the honest "cache-miss
  qps" — the number the ≥ 2x concurrency bar applies to.  (Schema v1
  measured its concurrent pass with the cache on, so after the serial
  pass most "concurrent" requests were answer-cache hits and the
  reported speedup was the cache's, not the server's.)
* ``concurrent``      — same clients with the cache enabled (mixed
  traffic: first arrival computes, the rest hit);
* ``repeated``        — the same questions again (≈ pure cache hits, the
  steady state of production traffic with repeating questions).

Each pass reports throughput, p50/p95/p99 latency, HTTP error count,
degraded/deadline counts, and the answer-cache hit delta read from
``GET /stats`` around the pass.  The serial pass also fingerprints every
answer (sha256 over the sorted question → answers map) so runs at
different ``--workers`` counts can be checked for byte-identical output.

By default the script self-hosts: it launches ``repro serve`` in a
subprocess on an ephemeral port (``--workers N`` forwards to the server
— N > 1 exercises the pre-fork path).  ``--sweep-workers 1,2,4`` runs
the whole measurement once per worker count and reports cache-miss
scaling ratios; the answer digest must agree across the sweep.  Note
that on a single-core host (``host_cpus: 1``) worker scaling of
CPU-bound QA is physically capped at ~1x — the sweep records honest
numbers and the scaling expectation only applies when cores exist.

Point the script at an external server with ``--url`` instead.  The
process exits non-zero when any request errors, and ``--check FILE``
additionally gates on p95 latency regressing more than
``--max-regression``x against a committed baseline.

``--ingest`` switches to the live-ingest benchmark (schema
``bench_ingest/v1`` → ``BENCH_ingest.json``): the server is started from
a compiled snapshot with the write endpoints enabled, and the measured
passes are

* ``read_only``   — concurrent cache-bypassed reads (the baseline p95);
* ``mixed``       — the same read load with a deterministic update
  stream applied through ``POST /ingest`` at ``--write-ratio`` of total
  requests (default 15%); read and write latencies are reported
  separately, and read p95 must stay within the regression bound of the
  read-only pass;
* ``delta_curve`` — serial read p95 measured at increasing overlay
  delta sizes (the cost of an ever-growing delta, the case for online
  compaction);
* ``compaction``  — a read load during which ``POST /compact`` folds
  base + delta into a fresh frozen base and swaps it in; the pass must
  finish with zero failed requests.

The suite also asserts a full answer *flip*: a triple ingested mid-run
changes a question's answer set, and the answer survives compaction.

Usage::

    PYTHONPATH=src python scripts/load_test.py --clients 16 --output BENCH_serve.json
    PYTHONPATH=src python scripts/load_test.py --sweep-workers 1,2,4 --output BENCH_serve.json
    PYTHONPATH=src python scripts/load_test.py --quick --workers 2 \
        --check BENCH_serve.json --max-regression 3.0
    PYTHONPATH=src python scripts/load_test.py --ingest --output BENCH_ingest.json
    PYTHONPATH=src python scripts/load_test.py --ingest --quick \
        --check BENCH_ingest.json --max-regression 3.0
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import threading
import time
import urllib.error
import urllib.request
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "bench_serve/v2"
INGEST_SCHEMA = "bench_ingest/v1"


# --------------------------------------------------------------------- #
# HTTP client
# --------------------------------------------------------------------- #

def _post_ask(
    base_url: str, question: str, no_cache: bool = False, timeout: float = 30.0
) -> tuple[int, dict]:
    payload: dict = {"question": question}
    if no_cache:
        payload["no_cache"] = True
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"{base_url}/ask", data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            payload = json.loads(error.read())
        except Exception:
            payload = {}
        return error.code, payload
    except (urllib.error.URLError, ConnectionError, OSError, TimeoutError) as error:
        # A transport-level failure (reset, refused, timeout) is a load-test
        # error like any non-200 — recorded, never a dead worker thread.
        return 0, {"error": str(error)}


def _get_json(base_url: str, path: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(f"{base_url}{path}", timeout=timeout) as response:
        return json.loads(response.read())


def _post_json(
    base_url: str, path: str, payload: dict, token: str | None = None,
    timeout: float = 120.0,
) -> tuple[int, dict]:
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["X-Ingest-Token"] = token
    request = urllib.request.Request(
        f"{base_url}{path}", data=json.dumps(payload).encode("utf-8"),
        headers=headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            body = json.loads(error.read())
        except Exception:
            body = {}
        return error.code, body
    except (urllib.error.URLError, ConnectionError, OSError, TimeoutError) as error:
        return 0, {"error": str(error)}


def wait_ready(base_url: str, timeout: float = 60.0) -> dict:
    """Poll /healthz until the engine reports ready (or raise)."""
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            health = _get_json(base_url, "/healthz", timeout=2.0)
            if health.get("ready"):
                return health
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            last_error = error
        time.sleep(0.25)
    raise RuntimeError(f"server at {base_url} never became ready: {last_error}")


# --------------------------------------------------------------------- #
# Question sets
# --------------------------------------------------------------------- #

def synthetic_questions(count: int, seed: int = 11) -> list[str]:
    """Deterministic questions that do real search work on the synthetic KG.

    QALD texts fail entity linking on the synthetic graph in ~1 ms, which
    measures the HTTP stack rather than the engine; these questions link
    ("entity N" labels exist) and run the top-k search (~tens of ms cold),
    so the serial pass has actual compute for the cache to amortize.
    """
    import random

    from repro.datasets import SyntheticConfig, build_phrase_dataset, build_synthetic_kg
    from repro.datasets.patty_sim import scale_phrase_dataset
    from repro.datasets.synthetic import entity_pool

    kg = build_synthetic_kg(
        SyntheticConfig(entities=1000, triples_per_entity=4, predicates=30)
    )
    dataset = scale_phrase_dataset(build_phrase_dataset(), 100, 5, entity_pool(kg))
    # Generated filler names ("synthetic relation 43") fail the parser's
    # relation extraction immediately — only real verb phrases search.
    phrases = [
        phrase for phrase in sorted(dataset.support)
        if not phrase.startswith("synthetic relation")
    ]
    rng = random.Random(seed)
    return [
        f"Which entity {rng.choice(phrases)} entity {rng.randrange(1000)}?"
        for _ in range(count)
    ]


def build_questions(question_set: str, cap: int | None) -> list[str]:
    from repro.datasets import qald_questions

    qald = [q.text for q in qald_questions()]
    if cap:
        qald = qald[:cap]
    if question_set == "qald":
        return qald
    synthetic = synthetic_questions(max(8, len(qald) // 3))
    if question_set == "synthetic":
        return synthetic
    # mixed: QALD texts (the paper's benchmark traffic) interleaved with
    # questions the synthetic store can actually answer.
    return qald + synthetic


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #

def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def answers_digest(answers: dict[str, list]) -> str:
    """Order-independent fingerprint of a question → answers map."""
    canonical = json.dumps(
        {q: answers[q] for q in sorted(answers)}, sort_keys=True
    ).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def run_pass(
    base_url: str,
    questions: list[str],
    clients: int,
    name: str,
    no_cache: bool = False,
    collect_answers: dict[str, list] | None = None,
) -> dict:
    """One measured pass: ``clients`` threads each asking every question."""
    stats_before = _get_json(base_url, "/stats")
    latencies: list[float] = []
    errors: list[tuple[int, str]] = []
    degraded = 0
    deadline_cut = 0
    cached = 0
    lock = threading.Lock()

    def worker(worker_questions: list[str]) -> None:
        nonlocal degraded, deadline_cut, cached
        for question in worker_questions:
            started = time.perf_counter()
            status, payload = _post_ask(base_url, question, no_cache=no_cache)
            elapsed = (time.perf_counter() - started) * 1000.0
            with lock:
                latencies.append(elapsed)
                if status != 200:
                    errors.append((status, question))
                    continue
                if payload.get("degraded"):
                    degraded += 1
                if payload.get("terminated_by") == "deadline":
                    deadline_cut += 1
                if payload.get("cached"):
                    cached += 1
                if collect_answers is not None:
                    collect_answers[question] = [
                        payload.get("answers"), payload.get("boolean"),
                    ]

    threads = [
        threading.Thread(target=worker, args=(list(questions),), daemon=True)
        for _ in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    stats_after = _get_json(base_url, "/stats")
    cache_hits = (
        stats_after["answer_cache"]["hits"] - stats_before["answer_cache"]["hits"]
    )
    ordered = sorted(latencies)
    total = len(latencies)
    result = {
        "clients": clients,
        "requests": total,
        "cache_bypassed": no_cache,
        "wall_s": round(wall, 4),
        "throughput_qps": round(total / wall, 2) if wall > 0 else None,
        "latency_ms": {
            "p50": round(_percentile(ordered, 0.50), 3),
            "p95": round(_percentile(ordered, 0.95), 3),
            "p99": round(_percentile(ordered, 0.99), 3),
            "max": round(ordered[-1], 3) if ordered else 0.0,
        },
        "errors": len(errors),
        "degraded": degraded,
        "deadline_cut": deadline_cut,
        "cached_responses": cached,
        "cache_hits": cache_hits,
    }
    print(
        f"  {name:15s} {clients:3d} clients  {total:5d} reqs  "
        f"{result['throughput_qps']:>8} q/s  "
        f"p50 {result['latency_ms']['p50']:7.2f} ms  "
        f"p95 {result['latency_ms']['p95']:7.2f} ms  "
        f"errors {len(errors)}  cache hits {cache_hits}"
    )
    for status, question in errors[:5]:
        print(f"    error {status}: {question!r}", file=sys.stderr)
    return result


def run_load_test(base_url: str, clients: int, questions: list[str]) -> dict:
    health = wait_ready(base_url)
    workers = (health.get("worker") or {}).get("workers", 1)
    print(f"server ready (store v{health.get('store_version')}, "
          f"workers={workers}); {len(questions)} questions, {clients} clients")

    # Untimed warmup so both the engine's lazy state and the HTTP stack
    # are warm before the serial floor is measured; bypass the cache so
    # warmup cannot pre-answer the measured passes.
    for question in questions[: min(5, len(questions))]:
        _post_ask(base_url, question, no_cache=True)

    answers: dict[str, list] = {}
    serial = run_pass(
        base_url, questions, clients=1, name="serial",
        no_cache=True, collect_answers=answers,
    )
    concurrent_cold = run_pass(
        base_url, questions, clients=clients, name="concurrent_cold", no_cache=True
    )
    concurrent = run_pass(base_url, questions, clients=clients, name="concurrent")
    repeated = run_pass(base_url, questions, clients=clients, name="repeated")

    def _ratio(a: dict, b: dict):
        if a["throughput_qps"] and b["throughput_qps"]:
            return round(a["throughput_qps"] / b["throughput_qps"], 2)
        return None

    cold_speedup = _ratio(concurrent_cold, serial)
    cached_speedup = _ratio(repeated, serial)
    print(f"  cache-miss speedup (concurrent_cold vs serial): {cold_speedup}x")
    print(f"  cached speedup     (repeated vs serial):        {cached_speedup}x")

    metrics = _get_json(base_url, "/metrics")
    stats = _get_json(base_url, "/stats")
    return {
        "schema": SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_cpus": os.cpu_count(),
        "clients": clients,
        "workers": workers,
        "questions": len(questions),
        "passes": {
            "serial": serial,
            "concurrent_cold": concurrent_cold,
            "concurrent": concurrent,
            "repeated": repeated,
        },
        # Back-compat alias; the honest concurrency number is cold_speedup.
        "concurrent_speedup": cold_speedup,
        "cold_speedup": cold_speedup,
        "cached_speedup": cached_speedup,
        "answers_sha256": answers_digest(answers),
        "answer_cache": stats.get("answer_cache"),
        "admission": stats.get("admission"),
        "counters": metrics.get("counters", {}),
    }


# --------------------------------------------------------------------- #
# Live-ingest benchmark (--ingest)
# --------------------------------------------------------------------- #

def update_stream(count: int, seed: int = 23, namespace: str = "bench:ingest") -> list:
    """A deterministic wire-format triple stream for the write passes.

    Entities and predicates live in their own namespace so the stream
    never collides with (or alters the answers of) the served dataset.
    """
    import random

    rng = random.Random(seed)
    return [
        [
            f"{namespace}/e{rng.randrange(max(count, 8))}",
            f"{namespace}/p{rng.randrange(7)}",
            f"{namespace}/e{rng.randrange(max(count, 8))}",
        ]
        for _ in range(count)
    ]


def _overlay_stats(base_url: str) -> dict:
    store = _get_json(base_url, "/stats").get("store", {})
    return store.get("overlay") or {}


def run_mixed_pass(
    base_url: str,
    token: str,
    questions: list[str],
    clients: int,
    write_ratio: float,
    batch_size: int,
    remove_pool: list,
) -> dict:
    """Concurrent cache-bypassed reads with a paced write stream.

    One writer thread applies ``POST /ingest`` batches, paced against
    read progress so that writes are ``write_ratio`` of total requests.
    Every fourth batch also removes triples from ``remove_pool`` (base
    triples from the pre-pass compaction — real tombstones, not delta
    rollbacks).  Read and write latencies are reported separately: the
    headline number is read p95 *under* writes.
    """
    reads_total = clients * len(questions)
    writes_target = max(
        1, int(round(reads_total * write_ratio / max(1.0 - write_ratio, 1e-9)))
    )
    stream = update_stream(writes_target * batch_size, seed=29)
    read_latencies: list[float] = []
    write_latencies: list[float] = []
    errors: list[tuple[int, str]] = []
    reads_done = 0
    lock = threading.Lock()
    readers_finished = threading.Event()

    def reader(worker_questions: list[str]) -> None:
        nonlocal reads_done
        for question in worker_questions:
            started = time.perf_counter()
            status, _payload = _post_ask(base_url, question, no_cache=True)
            elapsed = (time.perf_counter() - started) * 1000.0
            with lock:
                reads_done += 1
                read_latencies.append(elapsed)
                if status != 200:
                    errors.append((status, question))

    removes_sent = 0

    def writer() -> None:
        nonlocal removes_sent
        pace = reads_total / writes_target
        for index in range(writes_target):
            while not readers_finished.is_set():
                with lock:
                    progress = reads_done
                if progress >= index * pace:
                    break
                time.sleep(0.002)
            batch = stream[index * batch_size:(index + 1) * batch_size]
            payload: dict = {"add": batch}
            if index % 4 == 3 and remove_pool:
                victims = [remove_pool.pop() for _ in
                           range(min(batch_size // 2, len(remove_pool)))]
                payload["remove"] = victims
                removes_sent += len(victims)
            started = time.perf_counter()
            status, body = _post_json(base_url, "/ingest", payload, token=token)
            elapsed = (time.perf_counter() - started) * 1000.0
            with lock:
                write_latencies.append(elapsed)
                if status != 200:
                    errors.append((status, f"ingest[{index}]: {body}"))

    threads = [
        threading.Thread(target=reader, args=(list(questions),), daemon=True)
        for _ in range(clients)
    ]
    writer_thread = threading.Thread(target=writer, daemon=True)
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    writer_thread.start()
    for thread in threads:
        thread.join()
    readers_finished.set()
    writer_thread.join()
    wall = time.perf_counter() - started

    reads = sorted(read_latencies)
    writes = sorted(write_latencies)
    total = len(reads) + len(writes)
    result = {
        "clients": clients,
        "requests": total,
        "reads": len(reads),
        "writes": len(writes),
        "write_ratio": round(len(writes) / total, 4) if total else 0.0,
        "triples_added": len(writes) * batch_size,
        "triples_removed": removes_sent,
        "wall_s": round(wall, 4),
        "throughput_qps": round(total / wall, 2) if wall > 0 else None,
        "latency_ms": {
            "p50": round(_percentile(reads, 0.50), 3),
            "p95": round(_percentile(reads, 0.95), 3),
            "p99": round(_percentile(reads, 0.99), 3),
            "max": round(reads[-1], 3) if reads else 0.0,
        },
        "write_latency_ms": {
            "p50": round(_percentile(writes, 0.50), 3),
            "p95": round(_percentile(writes, 0.95), 3),
            "max": round(writes[-1], 3) if writes else 0.0,
        },
        "errors": len(errors),
    }
    print(
        f"  {'mixed':15s} {clients:3d} clients  {len(reads):5d} reads "
        f"{len(writes):4d} writes ({result['write_ratio']:.0%})  "
        f"read p95 {result['latency_ms']['p95']:7.2f} ms  "
        f"write p95 {result['write_latency_ms']['p95']:7.2f} ms  "
        f"errors {len(errors)}"
    )
    for status, what in errors[:5]:
        print(f"    error {status}: {what!r}", file=sys.stderr)
    return result


def run_delta_curve(
    base_url: str,
    token: str,
    questions: list[str],
    targets: list[int],
    batch_size: int = 250,
) -> list[dict]:
    """Serial read p95 at increasing overlay delta sizes.

    Grows the delta to each target with deterministic adds and measures
    a serial cache-bypassed read pass at that size — the latency cost of
    postponing compaction, read straight off the server.
    """
    probe = questions[: min(12, len(questions))]
    stream = update_stream(max(targets, default=0) + batch_size, seed=41,
                           namespace="bench:curve")
    applied = 0
    curve: list[dict] = []
    for target in targets:
        while applied < target:
            batch = stream[applied: applied + min(batch_size, target - applied)]
            status, body = _post_json(
                base_url, "/ingest", {"add": batch}, token=token
            )
            if status != 200:
                raise RuntimeError(f"delta-curve ingest failed: {status} {body}")
            applied += len(batch)
        latencies: list[float] = []
        for _ in range(3):
            for question in probe:
                started = time.perf_counter()
                status, _ = _post_ask(base_url, question, no_cache=True)
                latencies.append((time.perf_counter() - started) * 1000.0)
        ordered = sorted(latencies)
        entry = {
            "target_delta": target,
            "delta_adds": _overlay_stats(base_url).get("delta_adds"),
            "requests": len(ordered),
            "p50_ms": round(_percentile(ordered, 0.50), 3),
            "p95_ms": round(_percentile(ordered, 0.95), 3),
        }
        curve.append(entry)
        print(f"  delta={entry['delta_adds']:>6}  "
              f"p50 {entry['p50_ms']:7.2f} ms  p95 {entry['p95_ms']:7.2f} ms")
    return curve


def run_compaction_pass(
    base_url: str, token: str, questions: list[str], clients: int
) -> dict:
    """A read load during which the server compacts and swaps its store.

    The pass fails (nonzero ``errors``) if any read or the compaction
    itself errors — the acceptance bar for a zero-downtime swap.
    """
    delta_before = _overlay_stats(base_url)
    latencies: list[float] = []
    errors: list[tuple[int, str]] = []
    reads_done = 0
    lock = threading.Lock()
    compact_result: dict = {}

    def reader(worker_questions: list[str]) -> None:
        nonlocal reads_done
        for question in worker_questions:
            started = time.perf_counter()
            status, _payload = _post_ask(base_url, question, no_cache=True)
            with lock:
                reads_done += 1
                latencies.append((time.perf_counter() - started) * 1000.0)
                if status != 200:
                    errors.append((status, question))

    def compactor() -> None:
        # Wait for the read load to be genuinely in flight, then compact.
        target = max(1, (clients * len(questions)) // 10)
        while True:
            with lock:
                if reads_done >= target:
                    break
            time.sleep(0.005)
        started = time.perf_counter()
        status, body = _post_json(base_url, "/compact", {}, token=token,
                                  timeout=600.0)
        compact_result["status"] = status
        compact_result["wall_ms"] = round(
            (time.perf_counter() - started) * 1000.0, 3
        )
        compact_result["body"] = body
        if status != 200:
            with lock:
                errors.append((status, f"compact: {body}"))

    threads = [
        threading.Thread(target=reader, args=(list(questions),), daemon=True)
        for _ in range(clients)
    ]
    compact_thread = threading.Thread(target=compactor, daemon=True)
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    compact_thread.start()
    for thread in threads:
        thread.join()
    compact_thread.join()
    wall = time.perf_counter() - started

    delta_after = _overlay_stats(base_url)
    ordered = sorted(latencies)
    result = {
        "clients": clients,
        "requests": len(ordered),
        "wall_s": round(wall, 4),
        "latency_ms": {
            "p50": round(_percentile(ordered, 0.50), 3),
            "p95": round(_percentile(ordered, 0.95), 3),
            "max": round(ordered[-1], 3) if ordered else 0.0,
        },
        "compact_ms": compact_result.get("wall_ms"),
        "compact_status": compact_result.get("status"),
        "delta_before": delta_before,
        "delta_after": delta_after,
        "errors": len(errors),
    }
    print(
        f"  {'compaction':15s} {clients:3d} clients  {len(ordered):5d} reads  "
        f"read p95 {result['latency_ms']['p95']:7.2f} ms  "
        f"compact {result['compact_ms']} ms  errors {len(errors)}"
    )
    for status, what in errors[:5]:
        print(f"    error {status}: {what!r}", file=sys.stderr)
    return result


_PATTERN_TOKEN = r"(\?\w+|<[^>]+>)"


def _flip_trial_triple(payload: dict) -> list | None:
    """The wire triple that should extend this answer's top match, or None.

    Only answers whose top SPARQL is a single triple pattern with one
    variable qualify; the variable is substituted with a fresh entity.
    """
    import re

    if not payload.get("answers"):
        return None
    sparql = payload.get("sparql") or ""
    patterns = re.findall(
        rf"^\s*{_PATTERN_TOKEN}\s+{_PATTERN_TOKEN}\s+{_PATTERN_TOKEN}\s*\.",
        sparql, re.MULTILINE,
    )
    if len(patterns) != 1:
        return None
    s, p, o = patterns[0]
    if p.startswith("?") or len([t for t in (s, p, o) if t.startswith("?")]) != 1:
        return None
    flip_entity = "bench:flip/Candidate"
    return [
        flip_entity if s.startswith("?") else s.strip("<>"),
        p.strip("<>"),
        flip_entity if o.startswith("?") else o.strip("<>"),
    ]


def assert_answer_flip(
    base_url: str, token: str, questions: list[str]
) -> dict:
    """Ingest one triple that visibly changes a question's answer set.

    Candidate questions (single-pattern top SPARQL) are tried in order:
    ingest the substituted triple, re-ask, and — because a class-typed
    target vertex only binds instances of its class, which a fresh
    entity is not — roll the triple back and move on when the answer
    set does not change.  The flipped answer must appear on a
    cache-*enabled* ask too (the store-version cache key invalidates
    stale entries by construction), and the suite re-asserts it after
    compaction.
    """
    flip_entity = "bench:flip/Candidate"
    tried = 0
    for question in questions:
        status, payload = _post_ask(base_url, question, no_cache=True)
        if status != 200:
            continue
        wire = _flip_trial_triple(payload)
        if wire is None:
            continue
        tried += 1
        before = list(payload["answers"])
        # Warm the cache with the pre-flip answer so the post-flip cached
        # ask proves version-keyed invalidation, not a cold cache.
        _post_ask(base_url, question, no_cache=False)
        status, body = _post_json(
            base_url, "/ingest", {"add": [wire]}, token=token
        )
        if status != 200:
            raise RuntimeError(f"flip ingest failed: {status} {body}")
        status, after = _post_ask(base_url, question, no_cache=True)
        flipped = status == 200 and flip_entity in (after.get("answers") or [])
        if not flipped:
            # Class-constrained target — undo and try the next question.
            _post_json(base_url, "/ingest", {"remove": [wire]}, token=token)
            continue
        status, cached_after = _post_ask(base_url, question, no_cache=False)
        flipped_cached = (
            status == 200 and flip_entity in (cached_after.get("answers") or [])
        )
        result = {
            "question": question,
            "ingested": wire,
            "candidates_tried": tried,
            "answers_before": before,
            "answers_after": after.get("answers"),
            "flipped": True,
            "flipped_with_cache_enabled": bool(flipped_cached),
        }
        print(f"  answer flip: {question!r} + {wire} -> flipped=True "
              f"(cached path: {flipped_cached}, tried {tried})")
        if not flipped_cached:
            raise RuntimeError(f"stale cached answer after flip: {result}")
        return result
    raise RuntimeError(
        f"no question flipped ({tried} single-pattern candidates tried)"
    )


def recheck_answer_flip(base_url: str, flip: dict) -> bool:
    """The flipped answer must survive compaction (folded into the base)."""
    status, payload = _post_ask(base_url, flip["question"], no_cache=True)
    ok = status == 200 and "bench:flip/Candidate" in (payload.get("answers") or [])
    print(f"  answer flip after compaction: persisted={ok}")
    return ok


def run_ingest_suite(
    base_url: str,
    token: str,
    clients: int,
    questions: list[str],
    write_ratio: float,
    batch_size: int,
    delta_targets: list[int],
) -> dict:
    health = wait_ready(base_url)
    print(f"server ready (store v{health.get('store_version')}); "
          f"{len(questions)} questions, {clients} clients, "
          f"write ratio {write_ratio:.0%}")

    # Seed + compact: a small ingested namespace folded into the base, so
    # the mixed pass's removes tombstone *base* triples (the hard case)
    # without touching triples any question depends on.
    seed_triples = update_stream(max(batch_size * 8, 64), seed=17)
    status, body = _post_json(base_url, "/ingest", {"add": seed_triples},
                              token=token)
    if status != 200:
        raise RuntimeError(f"seed ingest failed: {status} {body}")
    status, body = _post_json(base_url, "/compact", {}, token=token)
    if status != 200:
        raise RuntimeError(f"seed compaction failed: {status} {body}")
    remove_pool = [list(t) for t in {tuple(t) for t in seed_triples}]
    remove_pool.sort()

    for question in questions[: min(5, len(questions))]:
        _post_ask(base_url, question, no_cache=True)

    answers: dict[str, list] = {}
    read_only = run_pass(
        base_url, questions, clients=clients, name="read_only",
        no_cache=True, collect_answers=answers,
    )
    mixed = run_mixed_pass(
        base_url, token, questions, clients, write_ratio, batch_size,
        remove_pool,
    )
    flip = assert_answer_flip(base_url, token, questions)
    print("  delta curve (serial read latency vs overlay delta size):")
    curve = run_delta_curve(base_url, token, questions, delta_targets)
    compaction = run_compaction_pass(base_url, token, questions, clients)
    flip_persisted = recheck_answer_flip(base_url, flip)
    flip["persisted_after_compaction"] = flip_persisted

    read_p95 = read_only["latency_ms"]["p95"]
    mixed_p95 = mixed["latency_ms"]["p95"]
    ratio = round(mixed_p95 / read_p95, 3) if read_p95 > 0 else None
    print(f"  read p95 under writes vs read-only: {ratio}x")

    metrics = _get_json(base_url, "/metrics")
    return {
        "schema": INGEST_SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_cpus": os.cpu_count(),
        "clients": clients,
        "questions": len(questions),
        "write_ratio": write_ratio,
        "ingest_batch": batch_size,
        "passes": {
            "read_only": read_only,
            "mixed": mixed,
            "compaction": compaction,
        },
        "mixed_read_p95_vs_read_only": ratio,
        "delta_curve": curve,
        "answer_flip": flip,
        "answers_sha256": answers_digest(answers),
        "counters": {
            name: value
            for name, value in metrics.get("counters", {}).items()
            if name.startswith("serve.ingest") or name == "serve.compactions"
        },
    }


# --------------------------------------------------------------------- #
# Self-hosted server (no --url)
# --------------------------------------------------------------------- #

def start_local_server(
    dataset: str,
    workers: int = 1,
    snapshot: str | None = None,
    ingest_token: str | None = None,
):
    """``repro serve`` as a subprocess on an ephemeral port (returns
    ``(base_url, shutdown_callable)``).

    A subprocess — not an in-process thread — so the server has its own
    interpreter (and GIL): measured concurrency then reflects a real
    deployment, where client and server never contend for one GIL.
    ``workers > 1`` starts the pre-fork supervisor.
    """
    import re
    import signal
    import subprocess

    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(repo_root / "src"), env.get("PYTHONPATH")])
    )
    command = [
        sys.executable, "-m", "repro", "serve",
        "--dataset", dataset, "--port", "0", "--workers", str(workers),
    ]
    if snapshot:
        command += ["--snapshot", snapshot]
    if ingest_token:
        command += ["--ingest-token", ingest_token]
    process = subprocess.Popen(
        command, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    # The serve command prints its bound address first (flush=True); with
    # --port 0 that line is the only way to learn the ephemeral port.
    line = process.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    if not match:
        process.terminate()
        raise RuntimeError(f"could not parse server address from: {line!r}")

    def shutdown() -> None:
        # SIGTERM, not terminate-then-kill straight away: the pre-fork
        # supervisor needs the signal to reap its worker processes.
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=5)

    return f"http://{match.group(1)}:{match.group(2)}", shutdown


# --------------------------------------------------------------------- #
# Regression gate
# --------------------------------------------------------------------- #

def check_regression(
    current: dict, baseline_path: Path, max_regression: float,
    schema: str = SCHEMA,
) -> int:
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != schema:
        print(f"error: {baseline_path} is not a {schema} baseline", file=sys.stderr)
        return 2
    failures = 0
    print(f"\nregression check against {baseline_path} (limit {max_regression}x):")
    for name, entry in current["passes"].items():
        reference = baseline["passes"].get(name)
        if reference is None:
            print(f"  {name:15s} (no baseline — skipped)")
            continue
        current_p95 = entry["latency_ms"]["p95"]
        reference_p95 = reference["latency_ms"]["p95"]
        if reference_p95 <= 0:
            print(f"  {name:15s} (degenerate baseline p95 — skipped)")
            continue
        ratio = current_p95 / reference_p95
        verdict = "ok" if ratio <= max_regression else "REGRESSED"
        print(f"  {name:15s} p95 {current_p95:8.2f} ms vs {reference_p95:8.2f} ms "
              f"baseline  ({ratio:4.2f}x)  {verdict}")
        if ratio > max_regression:
            failures += 1
    if failures:
        print(f"error: {failures} pass(es) regressed beyond {max_regression}x",
              file=sys.stderr)
        return 1
    return 0


def run_sweep(
    worker_counts: list[int],
    dataset: str,
    clients: int,
    questions: list[str],
    snapshot: str | None = None,
) -> dict:
    """The full measurement once per worker count; cache-miss scaling +
    answer-digest agreement across the counts.

    The headline ``passes`` in the returned payload come from the
    2-worker run when the sweep includes one (falling back to the first
    run): that is the configuration CI's serve-smoke replays, so the
    committed baseline and the gated run describe the same shape of
    deployment.  Every run's numbers survive in ``workers_sweep``.
    """
    runs: list[dict] = []
    for workers in worker_counts:
        print(f"\n=== workers={workers} ===")
        base_url, shutdown = start_local_server(
            dataset, workers=workers, snapshot=snapshot
        )
        try:
            runs.append(run_load_test(base_url, clients, questions))
        finally:
            shutdown()
    base = runs[0]
    base_qps = base["passes"]["concurrent_cold"]["throughput_qps"] or 0.0
    sweep = []
    for run in runs:
        qps = run["passes"]["concurrent_cold"]["throughput_qps"] or 0.0
        sweep.append({
            "workers": run["workers"],
            "cache_miss_qps": qps,
            "scaling_vs_1": round(qps / base_qps, 2) if base_qps else None,
            "p95_ms": run["passes"]["concurrent_cold"]["latency_ms"]["p95"],
            "answers_sha256": run["answers_sha256"],
        })
    digests = {entry["answers_sha256"] for entry in sweep}
    headline = next((r for r in runs if r["workers"] == 2), runs[0])
    payload = dict(headline)
    payload["workers_sweep"] = sweep
    payload["sweep_answers_identical"] = len(digests) == 1
    print("\ncache-miss scaling (concurrent_cold qps):")
    for entry in sweep:
        print(f"  workers={entry['workers']}: {entry['cache_miss_qps']} q/s "
              f"({entry['scaling_vs_1']}x vs 1 worker)")
    print(f"  answers identical across sweep: {payload['sweep_answers_identical']}")
    return payload


def run_ingest_main(args, clients: int) -> int:
    """The ``--ingest`` flow: snapshot-served QALD + live write stream."""
    import shutil
    import subprocess
    import tempfile

    question_cap = args.questions if args.questions else (25 if args.quick else None)
    questions = build_questions("qald", question_cap)
    targets_raw = args.delta_targets or ("0,200,800" if args.quick else "0,500,2000")
    delta_targets = sorted(
        int(n) for n in targets_raw.split(",") if n.strip()
    )

    if args.url:
        base_url, shutdown = args.url.rstrip("/"), None
        tempdir = None
    else:
        tempdir = None
        snapshot = args.snapshot
        if snapshot is None:
            # The overlay path needs a *frozen* base; a from-source server
            # would start on a mutable DictBackend.  Compile a snapshot of
            # the benchmark dataset (dbpedia-mini: QALD questions really
            # answer, so the flip assertion has teeth).
            tempdir = tempfile.mkdtemp(prefix="repro-ingest-bench-")
            snapshot = str(Path(tempdir) / "graph.snap")
            repo_root = Path(__file__).resolve().parent.parent
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [str(repo_root / "src"), env.get("PYTHONPATH")])
            )
            print("compiling benchmark snapshot (dbpedia-mini) ...")
            subprocess.run(
                [sys.executable, "-m", "repro", "compile", snapshot],
                env=env, check=True,
            )
        print(f"self-hosting ingest server (snapshot={snapshot}) ...")
        base_url, shutdown = start_local_server(
            "dbpedia-mini", workers=1, snapshot=snapshot,
            ingest_token=args.ingest_token,
        )
    try:
        payload = run_ingest_suite(
            base_url, args.ingest_token, clients, questions,
            args.write_ratio, args.ingest_batch, delta_targets,
        )
    finally:
        if shutdown is not None:
            shutdown()
        if tempdir is not None:
            shutil.rmtree(tempdir, ignore_errors=True)

    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nbenchmark written to {args.output}")

    rc = 0
    total_errors = sum(p["errors"] for p in payload["passes"].values())
    if total_errors:
        print(f"error: {total_errors} request(s) failed", file=sys.stderr)
        rc = 1
    ratio = payload["mixed_read_p95_vs_read_only"]
    if ratio is not None and ratio > args.max_regression:
        print(f"error: read p95 under writes is {ratio}x the read-only "
              f"baseline (limit {args.max_regression}x)", file=sys.stderr)
        rc = 1
    if not payload["answer_flip"].get("persisted_after_compaction"):
        print("error: flipped answer lost after compaction", file=sys.stderr)
        rc = 1
    if args.check:
        rc = max(rc, check_regression(
            payload, Path(args.check), args.max_regression,
            schema=INGEST_SCHEMA,
        ))
    return rc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="base URL of a running repro serve instance "
                        "(default: self-host an in-process server)")
    parser.add_argument("--dataset", choices=("dbpedia-mini", "synthetic"),
                        default="synthetic",
                        help="dataset for the self-hosted server (default synthetic)")
    parser.add_argument("--snapshot", metavar="FILE", default=None,
                        help="serve from a compiled snapshot (single file or "
                        "sharded manifest) instead of building the dataset")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads (default 16)")
    parser.add_argument("--workers", type=int, default=1,
                        help="server worker processes for the self-hosted "
                        "server (>1 = pre-fork; ignored with --url)")
    parser.add_argument("--sweep-workers", metavar="N,N,...", default=None,
                        help="run the full measurement at each worker count "
                        "(e.g. 1,2,4) and record cache-miss scaling")
    parser.add_argument("--questions", type=int, default=None,
                        help="cap the QALD question count")
    parser.add_argument("--question-set", choices=("mixed", "qald", "synthetic"),
                        default="mixed",
                        help="workload: QALD texts, synthetic-KG questions, "
                        "or both (default mixed)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 8 clients, 25 questions")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the benchmark JSON here")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="compare p95 latency against a previous baseline")
    parser.add_argument("--max-regression", type=float, default=3.0,
                        help="fail when a pass's p95 is this many times the "
                        "baseline's (default 3.0)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless cache-miss concurrent throughput is "
                        "at least this multiple of the serial pass")
    parser.add_argument("--ingest", action="store_true",
                        help="run the live-ingest benchmark (mixed read/write, "
                        "delta curve, compaction swap) instead of the read "
                        "load test")
    parser.add_argument("--ingest-token", default="bench-ingest-token",
                        help="shared secret for the write endpoints "
                        "(forwarded to the self-hosted server)")
    parser.add_argument("--write-ratio", type=float, default=0.15,
                        help="ingest requests as a fraction of total requests "
                        "in the mixed pass (default 0.15)")
    parser.add_argument("--ingest-batch", type=int, default=10,
                        help="triples per ingest request (default 10)")
    parser.add_argument("--delta-targets", metavar="N,N,...", default=None,
                        help="overlay delta sizes for the latency curve "
                        "(default 0,500,2000; quick 0,200,800)")
    args = parser.parse_args(argv)

    clients = 8 if args.quick else args.clients
    if args.ingest:
        return run_ingest_main(args, clients)
    question_cap = args.questions if args.questions else (25 if args.quick else None)
    questions = build_questions(args.question_set, question_cap)

    if args.sweep_workers:
        if args.url:
            print("error: --sweep-workers needs self-hosted servers (no --url)",
                  file=sys.stderr)
            return 2
        worker_counts = [int(n) for n in args.sweep_workers.split(",") if n.strip()]
        payload = run_sweep(
            worker_counts, args.dataset, clients, questions,
            snapshot=args.snapshot,
        )
    else:
        shutdown = None
        if args.url:
            base_url = args.url.rstrip("/")
        else:
            source = f"snapshot={args.snapshot}" if args.snapshot \
                else f"dataset={args.dataset}"
            print(f"self-hosting server ({source}, workers={args.workers}) ...")
            base_url, shutdown = start_local_server(
                args.dataset, workers=args.workers, snapshot=args.snapshot
            )
        try:
            payload = run_load_test(base_url, clients, questions)
        finally:
            if shutdown is not None:
                shutdown()
    payload["question_set"] = args.question_set

    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nbenchmark written to {args.output}")

    rc = 0
    total_errors = sum(p["errors"] for p in payload["passes"].values())
    if total_errors:
        print(f"error: {total_errors} request(s) failed", file=sys.stderr)
        rc = 1
    if args.min_speedup is not None:
        speedup = payload["cold_speedup"] or 0.0
        if speedup < args.min_speedup:
            print(f"error: cache-miss concurrent speedup {speedup}x below "
                  f"required {args.min_speedup}x", file=sys.stderr)
            rc = 1
    if args.check:
        rc = max(rc, check_regression(payload, Path(args.check), args.max_regression))
    return rc


if __name__ == "__main__":
    sys.exit(main())
