#!/usr/bin/env python
"""Cold-start benchmark: text bundle load vs compiled snapshot load.

Measures how long it takes to get a serving :class:`repro.serve.QAEngine`
from artifacts on disk to its first answered question, two ways:

* ``text``     — parse ``graph.nt``, re-encode every term, rebuild the
  adjacency kernel, label index, linker degree sweep and closures, and
  re-resolve the portable paraphrase dictionary (the v1 bundle path);
* ``snapshot`` — load a compiled snapshot (``repro compile``): terms are
  id-frozen, the triple columns arrive pre-sorted, and the kernel rows,
  label index, linker entries, closures and dictionary paths are adopted
  verbatim with no rebuild.

Both engines must answer the probe questions identically — the benchmark
fails if they diverge, so the speedup is never bought with correctness.

*Cold start* is time-to-ready: artifact load plus engine warm-up, i.e.
everything between process start and the engine accepting traffic.  The
first-question latency is reported alongside but kept out of the gate —
it is steady-state search compute, identical in both modes by design.

Writes ``BENCH_snapshot.json`` and exits non-zero when the snapshot cold
start is not at least ``--min-speedup`` times faster than the text path
(the acceptance gate; snapshots exist precisely to win this race).

Usage::

    PYTHONPATH=src python scripts/bench_cold_start.py --output BENCH_snapshot.json
    PYTHONPATH=src python scripts/bench_cold_start.py --quick --min-speedup 3.0
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "bench_snapshot/v1"


def build_scenario():
    """The perf-baseline synthetic scenario plus probe questions."""
    from repro.datasets import (
        SyntheticConfig,
        build_phrase_dataset,
        build_synthetic_kg,
    )
    from repro.datasets.patty_sim import scale_phrase_dataset
    from repro.datasets.synthetic import entity_pool
    from repro.paraphrase import ParaphraseMiner

    kg = build_synthetic_kg(
        SyntheticConfig(entities=1000, triples_per_entity=4, predicates=30)
    )
    dataset = scale_phrase_dataset(build_phrase_dataset(), 100, 5, entity_pool(kg))
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(dataset)
    # Generated filler names fail relation extraction instantly; only real
    # verb phrases exercise linking and top-k search.
    phrases = [
        phrase for phrase in sorted(dataset.support)
        if not phrase.startswith("synthetic relation")
    ]
    questions = [
        f"Which entity {phrases[i % len(phrases)]} entity {(i * 37) % 1000}?"
        for i in range(5)
    ]
    return kg, dictionary, questions


def _engine_config():
    from repro.serve import EngineConfig

    # Small pool, caching on defaults: the measurement is start-up work,
    # and the first question is a cold cache in both modes anyway.
    return EngineConfig(pool_size=2, queue_limit=4)


def _render(result) -> list[str] | str:
    if result.boolean is not None:
        return "yes" if result.boolean else "no"
    return [str(term) for term in result.answers]


def _cold_start_text(bundle_dir: Path, question: str):
    from repro.bundle import load_bundle
    from repro.serve import QAEngine

    started = time.perf_counter()
    kg, dictionary = load_bundle(bundle_dir, prefer_snapshot=False)
    load_s = time.perf_counter() - started
    engine = QAEngine(kg, dictionary, _engine_config())
    engine.warm()
    warm_s = time.perf_counter() - started - load_s
    probe = time.perf_counter()
    engine.ask_answer(question)
    first_q = time.perf_counter() - probe
    return engine, {
        "load_seconds": load_s,
        "warm_seconds": warm_s,
        "cold_start_seconds": load_s + warm_s,
        "first_question_seconds": first_q,
    }


def _cold_start_snapshot(snapshot_path: Path, question: str):
    from repro.rdf.snapshot import load_snapshot
    from repro.serve import QAEngine

    started = time.perf_counter()
    state = load_snapshot(snapshot_path)
    load_s = time.perf_counter() - started
    engine = QAEngine(
        state.kg, state.dictionary, _engine_config(),
        base_linker=state.build_linker(),
    )
    engine.warm()
    warm_s = time.perf_counter() - started - load_s
    probe = time.perf_counter()
    engine.ask_answer(question)
    first_q = time.perf_counter() - probe
    return engine, {
        "load_seconds": load_s,
        "warm_seconds": warm_s,
        "cold_start_seconds": load_s + warm_s,
        "first_question_seconds": first_q,
    }


def _best_of(start_fn, repeats: int, questions: list[str]):
    """Best timing of ``repeats`` cold starts; answers from the last engine."""
    best = None
    answers = None
    for _ in range(repeats):
        engine, timing = start_fn(questions[0])
        try:
            if best is None or timing["cold_start_seconds"] < best["cold_start_seconds"]:
                best = timing
            answers = [_render(engine.ask_answer(q)) for q in questions]
        finally:
            engine.close()
    return best, answers


def run_benchmark(quick: bool) -> dict:
    from repro.bundle import save_bundle
    from repro.rdf.snapshot import compile_snapshot

    repeats = 1 if quick else 3
    print(f"cold-start benchmark ({'quick' if quick else 'full'}):")
    kg, dictionary, questions = build_scenario()

    with tempfile.TemporaryDirectory(prefix="repro-coldstart-") as tmp:
        bundle_dir = Path(tmp) / "bundle"
        snapshot_path = Path(tmp) / "graph.snap"
        save_bundle(bundle_dir, kg, dictionary)
        info = compile_snapshot(snapshot_path, kg, dictionary)

        text, text_answers = _best_of(
            lambda q: _cold_start_text(bundle_dir, q), repeats, questions
        )
        snap, snap_answers = _best_of(
            lambda q: _cold_start_snapshot(snapshot_path, q), repeats, questions
        )

    identical = text_answers == snap_answers
    for name, timing in (("text", text), ("snapshot", snap)):
        print(
            f"  {name:9s} load {timing['load_seconds']*1000:8.1f} ms   "
            f"warm {timing['warm_seconds']*1000:8.1f} ms   "
            f"cold start {timing['cold_start_seconds']*1000:8.1f} ms   "
            f"(first question {timing['first_question_seconds']*1000:.1f} ms)"
        )
    speedup = {
        "load": round(text["load_seconds"] / snap["load_seconds"], 2),
        "cold_start": round(
            text["cold_start_seconds"] / snap["cold_start_seconds"], 2
        ),
    }
    print(
        f"  speedup   load {speedup['load']:.2f}x   "
        f"cold start {speedup['cold_start']:.2f}x   "
        f"answers {'identical' if identical else 'DIVERGED'}"
    )
    return {
        "schema": SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "scenario": {
            "triples": info.triples,
            "terms": info.terms,
            "phrases": info.phrases,
            "snapshot_bytes": info.total_bytes,
            "questions": len(questions),
        },
        "text": {k: round(v, 6) for k, v in text.items()},
        "snapshot": {k: round(v, 6) for k, v in snap.items()},
        "speedup": speedup,
        "answers_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one cold start per mode (CI smoke mode)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the benchmark JSON here")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail unless snapshot cold start is at least "
                        "this many times faster than text (default 3.0)")
    args = parser.parse_args(argv)

    payload = run_benchmark(args.quick)
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"benchmark written to {args.output}")
    if not payload["answers_identical"]:
        print("error: snapshot-loaded engine diverged from the text-loaded "
              "engine", file=sys.stderr)
        return 1
    if payload["speedup"]["cold_start"] < args.min_speedup:
        print(f"error: snapshot cold start is only "
              f"{payload['speedup']['cold_start']:.2f}x faster than text "
              f"(gate: {args.min_speedup:.1f}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
