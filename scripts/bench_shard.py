#!/usr/bin/env python
"""Sharded-store benchmark + lazy-loading RSS probe (BENCH_shard.json).

Per graph size (10^4, 10^5, 10^6 triples — ``--quick`` drops the last,
``--full`` appends a 10^7 point and refreshes the scaling table):

* ``single_build_N`` / ``shard_build_N``     — frozen-backend construction;
* ``subject_query_single_N`` / ``..._sharded_N`` — bound-subject patterns
  (the dominant shape; sharded routes each to exactly one segment);
* ``full_scan_single_N`` / ``..._sharded_N`` — unbound iteration (the
  k-way merge path).

Every query benchmark asserts the sharded backend returns exactly the
rows the single compact backend returns before timing anything.

At the largest size the script also **demonstrates the lazy-loading RSS
win**: it compiles a single-file and a sharded (K segments) snapshot of
the same graph, then re-invokes itself (``--probe``) once per form in a
fresh interpreter that loads the snapshot and runs a subject-local
workload (all subjects from shard 0).  The single-file load verifies and
maps every column byte; the sharded load only faults in the state
container plus segment 0, so its peak RSS must come out lower — recorded
in the baseline and enforced with a hard exit code.

Usage::

    PYTHONPATH=src python scripts/bench_shard.py --output BENCH_shard.json
    PYTHONPATH=src python scripts/bench_shard.py --quick \
        --check BENCH_shard.json --max-regression 3.0
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from itertools import zip_longest
from pathlib import Path

SCHEMA = "bench_shard/v1"
SHARDS = 8
FULL_SIZES = (10_000, 100_000, 1_000_000)
QUICK_SIZES = (10_000, 100_000)
FULL_EXTRA_SIZE = 10_000_000   # --full only; never CI-gated
_PROBE_SUBJECT_LIMIT = 200


_MIN_TIMED_SECONDS = 0.1


def _timed(fn, repeats: int) -> tuple[float, int]:
    """Best wall-clock over at least ``repeats`` runs; fn returns its op
    count.

    Microsecond-scale regions (the bound-subject queries) keep sampling
    until ~100 ms of cumulative measured time so a single scheduler blip
    cannot swing the quick-mode number past the CI regression limit.
    """
    fn()
    best = None
    ops = 0
    runs = 0
    total = 0.0
    while runs < repeats or total < _MIN_TIMED_SECONDS:
        started = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        total += elapsed
        runs += 1
    return best, ops


def _build_graph(total_triples: int):
    from repro.datasets.synthetic import SyntheticConfig, build_synthetic_kg

    return build_synthetic_kg(
        SyntheticConfig.with_total_triples(total_triples, predicates=30)
    )


def bench_size(total: int, repeats: int, jobs: int, record) -> dict:
    """All in-process benchmarks for one graph size; returns the stores."""
    from repro.rdf.shard import shard_of

    kg = _build_graph(total)
    base = kg.store
    n = len(base)
    print(f"\n-- {total} requested triples ({n} stored) --")

    def build_single():
        return len(base.compacted())

    def build_sharded():
        return len(base.sharded(SHARDS, jobs=jobs))

    record(f"single_build_{total}", _timed(build_single, repeats))
    record(f"shard_build_{total}", _timed(build_sharded, repeats))

    single = base.compacted()
    sharded = base.sharded(SHARDS, jobs=jobs)
    subjects = sorted(set(t[0] for t in base.triples_ids()))[::50]

    # Correctness before speed: identical rows for every benchmarked shape.
    for sid in subjects[:20]:
        assert list(single.triples_ids(s=sid)) == list(sharded.triples_ids(s=sid))
    pairs = zip_longest(single.triples_ids(), sharded.triples_ids())
    assert all(a == b for a, b in pairs), "full-scan order diverged"

    def subject_query(store):
        def run():
            rows = 0
            for sid in subjects:
                for _ in store.triples_ids(s=sid):
                    rows += 1
            return rows
        return run

    def full_scan(store):
        def run():
            return sum(1 for _ in store.triples_ids())
        return run

    record(f"subject_query_single_{total}", _timed(subject_query(single), repeats))
    record(f"subject_query_sharded_{total}", _timed(subject_query(sharded), repeats))
    record(f"full_scan_single_{total}", _timed(full_scan(single), repeats))
    record(f"full_scan_sharded_{total}", _timed(full_scan(sharded), repeats))
    return {"kg": kg, "shard_of": shard_of}


def rss_probe(total: int, jobs: int) -> dict:
    """Compile both snapshot forms and probe their load-time peak RSS."""
    from repro.paraphrase.dictionary import ParaphraseDictionary
    from repro.rdf.shard import shard_of
    from repro.rdf.snapshot import compile_snapshot

    kg = _build_graph(total)
    dictionary = ParaphraseDictionary()
    seen = set()
    subjects = []
    for triple in kg.store.triples_ids():
        sid = triple[0]
        if sid not in seen and shard_of(sid, SHARDS) == 0:
            seen.add(sid)
            subjects.append(sid)
            if len(subjects) >= _PROBE_SUBJECT_LIMIT:
                break

    probe = {"triples": len(kg.store), "shards": SHARDS, "subjects": len(subjects)}
    with tempfile.TemporaryDirectory(prefix="bench_shard_") as tmp:
        single_path = Path(tmp) / "single.snap"
        sharded_path = Path(tmp) / "sharded.snap"
        compile_snapshot(single_path, kg, dictionary)
        compile_snapshot(sharded_path, kg, dictionary, shards=SHARDS, jobs=jobs)
        del kg  # the probes run in fresh interpreters; free the parent copy
        for label, path in (("single", single_path), ("sharded", sharded_path)):
            out = subprocess.run(
                [
                    sys.executable, __file__,
                    "--probe", str(path),
                    "--probe-subjects", ",".join(map(str, subjects)),
                ],
                capture_output=True, text=True, check=True,
            )
            probe[label] = json.loads(out.stdout.splitlines()[-1])

    assert probe["single"]["rows"] == probe["sharded"]["rows"]
    probe["rss_win"] = (
        probe["sharded"]["peak_rss_kb"] < probe["single"]["peak_rss_kb"]
    )
    print(
        f"\nRSS probe @ {probe['triples']} triples "
        f"(subject-local workload, shard 0 only):\n"
        f"  single  : {probe['single']['peak_rss_kb']:>8d} KB peak\n"
        f"  sharded : {probe['sharded']['peak_rss_kb']:>8d} KB peak, "
        f"segments loaded {probe['sharded']['loaded_segments']}\n"
        f"  lazy win: {probe['rss_win']}"
    )
    return probe


def _peak_rss_kb() -> int:
    """This process's peak resident set in KB.

    ``/proc/self/status`` VmHWM is preferred: unlike ``ru_maxrss`` it is
    tied to the current address space, so it resets across ``execve`` —
    a subprocess of a fat parent reports its *own* peak, not an inherited
    high-water mark.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_probe(snapshot: str, subjects: list[int]) -> int:
    """Child mode: load a snapshot, run the workload, report peak RSS."""
    from repro.rdf.snapshot import load_snapshot

    state = load_snapshot(snapshot)
    store = state.kg.store
    rows = 0
    for sid in subjects:
        for _ in store.triples_ids(s=sid):
            rows += 1
    backend = store.backend
    loaded = getattr(backend, "loaded_segments", lambda: None)()
    print(json.dumps({
        "peak_rss_kb": _peak_rss_kb(),
        "rows": rows,
        "loaded_segments": loaded,
    }))
    return 0


def run_benchmarks(quick: bool, jobs: int, full: bool = False) -> dict:
    repeats = 1 if quick else 3
    sizes = QUICK_SIZES if quick else FULL_SIZES
    if full and not quick:
        sizes = sizes + (FULL_EXTRA_SIZE,)
    results = {}

    def record(name, timing):
        seconds, ops = timing
        results[name] = {
            "ops": ops,
            "seconds": round(seconds, 6),
            "ops_per_sec": round(ops / seconds, 2) if seconds > 0 else None,
        }
        print(f"  {name:28s} {ops:>9d} ops  {seconds:8.4f}s  "
              f"{results[name]['ops_per_sec']:>14} ops/s")

    print(f"shard benchmark ({'quick' if quick else 'full'}, "
          f"K={SHARDS}, jobs={jobs}):")
    for total in sizes:
        bench_size(total, repeats, jobs, record)
    # The RSS probe compiles two snapshots of the probed graph; 10^6 keeps
    # it comparable with earlier baselines and bounded even under --full.
    probe = rss_probe(min(sizes[-1], 1_000_000), jobs)

    return {
        "schema": SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "jobs": jobs,
        "shards": SHARDS,
        "sizes": list(sizes),
        "rss_probe": probe,
        "benchmarks": results,
    }


def write_scaling_table(triples_axis: tuple) -> None:
    """Regenerate ``benchmarks/output/scaling_kg.txt`` with these sizes.

    ``--full`` records the 10^7 point in the same table the benchmark
    suite renders, so EXPERIMENTS.md quotes one consistent curve.
    """
    from repro.experiments.complexity import kg_size_scaling

    result = kg_size_scaling(triples_axis=tuple(triples_axis))
    out = (Path(__file__).resolve().parent.parent
           / "benchmarks" / "output" / f"{result.experiment_id}.txt")
    out.write_text(result.render() + "\n")
    print(f"\nscaling table written to {out}")


def check_regression(current: dict, baseline_path: Path, max_regression: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != SCHEMA:
        print(f"error: {baseline_path} is not a {SCHEMA} baseline", file=sys.stderr)
        return 2
    failures = 0
    print(f"\nregression check against {baseline_path} (limit {max_regression}x):")
    for name, entry in current["benchmarks"].items():
        reference = baseline["benchmarks"].get(name)
        if reference is None or not reference.get("ops_per_sec"):
            print(f"  {name:28s} (no baseline — skipped)")
            continue
        ratio = reference["ops_per_sec"] / entry["ops_per_sec"]
        verdict = "ok" if ratio <= max_regression else "REGRESSED"
        print(f"  {name:28s} {entry['ops_per_sec']:>14} vs "
              f"{reference['ops_per_sec']:>14} baseline  "
              f"({ratio:4.2f}x slower)  {verdict}")
        if ratio > max_regression:
            failures += 1
    if failures:
        print(f"error: {failures} benchmark(s) regressed beyond "
              f"{max_regression}x", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes, one repeat (CI smoke mode)")
    parser.add_argument("--full", action="store_true",
                        help="add the 10^7-triple point and refresh "
                        "benchmarks/output/scaling_kg.txt (long; not "
                        "CI-gated)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="segment-build worker count (default 1; 0 = auto)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the baseline JSON here")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="compare against a previous baseline JSON")
    parser.add_argument("--max-regression", type=float, default=3.0,
                        help="fail when a benchmark is this many times "
                        "slower than the baseline (default 3.0)")
    parser.add_argument("--probe", metavar="SNAPSHOT", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--probe-subjects", default="",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.probe:
        subjects = [int(x) for x in args.probe_subjects.split(",") if x]
        return run_probe(args.probe, subjects)

    payload = run_benchmarks(args.quick, args.jobs, full=args.full)
    if not payload["rss_probe"]["rss_win"]:
        print("error: sharded lazy load did not beat the single-file "
              "resident size", file=sys.stderr)
        return 1
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    if args.full and not args.quick:
        write_scaling_table(payload["sizes"])
    if args.check:
        return check_regression(payload, Path(args.check), args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
