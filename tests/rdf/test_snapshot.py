"""Compiled snapshot tests: id stability, integrity, and answer equivalence.

A snapshot is only useful if loading it is indistinguishable from
rebuilding everything from source — same term ids, same kernel rows,
same linker candidates, same QALD answers — and only safe if corruption
is detected rather than silently served.
"""

import pytest

from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset, qald_questions
from repro.exceptions import SnapshotError, StoreFrozenError
from repro.paraphrase import ParaphraseMiner
from repro.rdf import IRI, Triple
from repro.rdf.kernel import AdjacencyKernel
from repro.rdf.snapshot import compile_snapshot, load_snapshot

_HEADER_BYTES = 15  # magic(10) + format version u32 + byteorder u8
_DIGEST_BYTES = 32


@pytest.fixture(scope="module")
def setup():
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_phrase_dataset()
    )
    return kg, dictionary


@pytest.fixture(scope="module")
def snapshot(setup, tmp_path_factory):
    kg, dictionary = setup
    path = tmp_path_factory.mktemp("snap") / "graph.snap"
    info = compile_snapshot(path, kg, dictionary)
    return path, info


@pytest.fixture(scope="module")
def loaded(snapshot):
    path, _ = snapshot
    return load_snapshot(path)


class TestRoundTrip:
    def test_info_counts(self, setup, snapshot):
        kg, dictionary = setup
        _, info = snapshot
        assert info.triples == len(kg.store)
        assert info.terms == len(kg.store.dictionary)
        assert info.phrases == len(dictionary)

    def test_term_ids_frozen(self, setup, loaded):
        kg, _ = setup
        assert (
            loaded.kg.store.dictionary.terms_in_id_order()
            == kg.store.dictionary.terms_in_id_order()
        )

    def test_triples_identical(self, setup, loaded):
        kg, _ = setup
        assert sorted(loaded.kg.store.triples_ids()) == sorted(
            kg.store.triples_ids()
        )
        assert set(loaded.kg.store.triples()) == set(kg.store.triples())

    def test_literal_ids_identical(self, setup, loaded):
        kg, _ = setup
        assert sorted(loaded.kg.store.iter_literal_ids()) == sorted(
            kg.store.iter_literal_ids()
        )

    def test_loaded_store_is_frozen(self, loaded):
        with pytest.raises(StoreFrozenError):
            loaded.kg.store.add(Triple(IRI("ex:a"), IRI("ex:b"), IRI("ex:c")))

    def test_store_version_preserved(self, setup, loaded):
        kg, _ = setup
        assert loaded.kg.store.version == kg.store.version

    def test_dictionary_round_trips_by_id(self, setup, loaded):
        _, dictionary = setup
        assert set(loaded.dictionary.phrases()) == set(dictionary.phrases())
        for phrase in dictionary.phrases():
            original = [
                (m.path, m.confidence) for m in dictionary.lookup(phrase)
            ]
            restored = [
                (m.path, m.confidence) for m in loaded.dictionary.lookup(phrase)
            ]
            assert restored == original


class TestKernelEquivalence:
    def test_prebuilt_rows_match_fresh_build(self, setup, loaded):
        kg, _ = setup
        assert loaded.kg.kernel.full_rows() == kg.kernel.full_rows()

    def test_compact_build_matches_dict_build(self, setup):
        """Building the kernel *from* a compact store (no prebuilt rows)
        must give the same rows as building from the dict store — the
        canonical build order makes iteration order irrelevant."""
        kg, _ = setup
        dict_kernel = AdjacencyKernel(kg.store)
        compact_kernel = AdjacencyKernel(kg.store.compacted())
        assert compact_kernel.full_rows() == dict_kernel.full_rows()

    def test_closures_preserved(self, setup, loaded):
        kg, _ = setup
        for class_id in kg.class_ids:
            assert loaded.kg.superclasses_of(class_id) == kg.superclasses_of(class_id)
            assert loaded.kg.subclasses_of(class_id) == kg.subclasses_of(class_id)

    def test_class_ids_preserved(self, setup, loaded):
        kg, _ = setup
        assert loaded.kg.class_ids == kg.class_ids


class TestLinkerEquivalence:
    def test_compiled_linker_matches_fresh(self, setup, loaded):
        from repro.linking import EntityLinker

        kg, _ = setup
        fresh = EntityLinker(kg)
        compiled = loaded.build_linker()
        assert compiled.max_degree == fresh.max_degree
        for phrase in ("Philadelphia", "actor", "Margaret Thatcher", "films"):
            assert [
                (c.node_id, c.label, c.score, c.is_class)
                for c in compiled.link(phrase)
            ] == [
                (c.node_id, c.label, c.score, c.is_class)
                for c in fresh.link(phrase)
            ]


class TestAnswerEquivalence:
    def test_qald_answers_identical(self, setup, loaded):
        """The acceptance bar: a snapshot-loaded engine gives byte-identical
        answers to the from-source engine on the full QALD set."""
        kg, dictionary = setup
        original = GAnswer(kg, dictionary)
        restored = GAnswer(loaded.kg, loaded.dictionary, linker=loaded.build_linker())
        for question in qald_questions():
            a = original.answer(question.text)
            b = restored.answer(question.text)
            assert ([str(t) for t in b.answers], b.boolean) == (
                [str(t) for t in a.answers], a.boolean
            ), question.text

    def test_engine_from_snapshot(self, snapshot):
        from repro.serve import QAEngine

        path, _ = snapshot
        engine = QAEngine.from_snapshot(path)
        try:
            result = engine.ask_answer("Who is the mayor of Berlin?")
            assert result.processed
            assert result.answers
        finally:
            engine.close()


class TestMmapLoading:
    """The zero-copy path: mmap-backed columns, equivalence with copy mode."""

    @pytest.fixture(scope="class")
    def copied(self, snapshot):
        path, _ = snapshot
        return load_snapshot(path, mode="copy")

    def test_mmap_columns_are_borrowed_views(self, loaded):
        """The acceptance bar for zero-copy: every permutation column of an
        mmap-loaded backend is a memoryview over the file mapping — no
        ``frombytes`` copy anywhere on the triple-index path."""
        columns = loaded.kg.store.backend.permutation_columns()
        for name, triple in columns.items():
            for column in triple:
                assert isinstance(column, memoryview), name
                assert column.format == "q"

    def test_copy_columns_are_owned_arrays(self, copied):
        from array import array

        columns = copied.kg.store.backend.permutation_columns()
        for name, triple in columns.items():
            for column in triple:
                assert isinstance(column, array), name

    def test_mapping_held_by_state(self, loaded, copied):
        # The mmap must stay alive as long as the state (the views borrow
        # from it); the copying path has nothing to hold.
        assert loaded.mapping is not None
        assert not loaded.mapping.closed
        assert copied.mapping is None

    def test_modes_see_identical_triples(self, loaded, copied):
        assert sorted(loaded.kg.store.triples_ids()) == sorted(
            copied.kg.store.triples_ids()
        )
        assert loaded.kg.kernel.full_rows() == copied.kg.kernel.full_rows()

    def test_unknown_mode_rejected(self, snapshot):
        path, _ = snapshot
        with pytest.raises(ValueError, match="mode"):
            load_snapshot(path, mode="chaotic")

    def test_qald_answers_identical_mmap_vs_copy(self, loaded, copied):
        """Byte-identical answers over the full QALD set whether the triple
        index is borrowed from the page cache or owned by the process."""
        over_mmap = GAnswer(
            loaded.kg, loaded.dictionary, linker=loaded.build_linker()
        )
        over_copy = GAnswer(
            copied.kg, copied.dictionary, linker=copied.build_linker()
        )
        for question in qald_questions():
            a = over_mmap.answer(question.text)
            b = over_copy.answer(question.text)
            assert ([str(t) for t in a.answers], a.boolean) == (
                [str(t) for t in b.answers], b.boolean
            ), question.text


class TestIntegrity:
    def _bytes(self, snapshot):
        path, _ = snapshot
        return path, bytearray(path.read_bytes())

    def test_bad_magic_rejected(self, snapshot, tmp_path):
        path, raw = self._bytes(snapshot)
        raw[0] ^= 0xFF
        bad = tmp_path / "bad_magic.snap"
        bad.write_bytes(raw)
        with pytest.raises(SnapshotError, match="not a compiled snapshot"):
            load_snapshot(bad)

    def test_future_version_rejected(self, snapshot, tmp_path):
        path, raw = self._bytes(snapshot)
        raw[10] = 99  # format-version u32 lives right after the magic
        bad = tmp_path / "future.snap"
        bad.write_bytes(raw)
        with pytest.raises(SnapshotError, match="unsupported snapshot format"):
            load_snapshot(bad)

    def test_flipped_body_byte_rejected(self, snapshot, tmp_path):
        path, raw = self._bytes(snapshot)
        raw[len(raw) // 2] ^= 0xFF
        bad = tmp_path / "corrupt.snap"
        bad.write_bytes(raw)
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(bad)

    def test_truncated_file_rejected(self, snapshot, tmp_path):
        path, raw = self._bytes(snapshot)
        bad = tmp_path / "truncated.snap"
        bad.write_bytes(raw[: len(raw) - _DIGEST_BYTES - 100])
        with pytest.raises(SnapshotError):
            load_snapshot(bad)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "nope.snap")
