"""Tests for N-Triples parsing and serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RDFSyntaxError
from repro.rdf import (
    IRI,
    Literal,
    Triple,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
    serialize_term,
)


class TestParsing:
    def test_simple_triple(self):
        triple = parse_ntriples_line("<ex:s> <ex:p> <ex:o> .")
        assert triple == Triple(IRI("ex:s"), IRI("ex:p"), IRI("ex:o"))

    def test_plain_literal(self):
        triple = parse_ntriples_line('<ex:s> <ex:p> "hello world" .')
        assert triple.object == Literal("hello world")

    def test_language_literal(self):
        triple = parse_ntriples_line('<ex:s> <ex:p> "Berlin"@de .')
        assert triple.object == Literal("Berlin", language="de")

    def test_datatype_literal(self):
        triple = parse_ntriples_line(
            '<ex:s> <ex:p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert triple.object.datatype.value.endswith("integer")

    def test_escapes(self):
        triple = parse_ntriples_line('<ex:s> <ex:p> "a\\tb\\nc\\"d\\\\e" .')
        assert triple.object.lexical == 'a\tb\nc"d\\e'

    def test_unicode_escape(self):
        triple = parse_ntriples_line('<ex:s> <ex:p> "\\u00e9" .')
        assert triple.object.lexical == "é"

    def test_comment_and_blank_lines_skipped(self):
        doc = "# a comment\n\n<ex:s> <ex:p> <ex:o> .\n"
        assert len(list(parse_ntriples(doc))) == 1

    def test_trailing_comment_allowed(self):
        triple = parse_ntriples_line("<ex:s> <ex:p> <ex:o> . # trailing")
        assert triple is not None

    def test_error_reports_line_number(self):
        with pytest.raises(RDFSyntaxError) as excinfo:
            list(parse_ntriples("<ex:s> <ex:p> <ex:o> .\n<bad line\n"))
        assert excinfo.value.line == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "<ex:s> <ex:p> <ex:o>",  # missing dot
            "<ex:s> <ex:p> .",  # missing object
            '"lit" <ex:p> <ex:o> .',  # literal subject
            "<ex:s> \"lit\" <ex:o> .",  # literal predicate
            "<ex:s> <ex:p> _:b0 .",  # blank node
            '<ex:s> <ex:p> "open .',  # unterminated literal
            "<ex:s> <ex:p <ex:o> .",  # unterminated IRI
            '<ex:s> <ex:p> "x"@ .',  # empty language tag
            '<ex:s> <ex:p> "x\\q" .',  # unknown escape
            "<> <ex:p> <ex:o> .",  # empty IRI
            "<ex:s> <ex:p> <ex:o> . extra",  # trailing garbage
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(RDFSyntaxError):
            parse_ntriples_line(bad)


class TestSerialization:
    def test_serialize_iri(self):
        assert serialize_term(IRI("ex:a")) == "<ex:a>"

    def test_serialize_plain_literal(self):
        assert serialize_term(Literal("hi")) == '"hi"'

    def test_serialize_language_literal(self):
        assert serialize_term(Literal("hi", language="en")) == '"hi"@en'

    def test_serialize_escapes(self):
        assert serialize_term(Literal('a"b\\c\nd')) == '"a\\"b\\\\c\\nd"'

    def test_empty_document(self):
        assert serialize_ntriples([]) == ""

    def test_document_ends_with_newline(self):
        doc = serialize_ntriples([Triple(IRI("ex:s"), IRI("ex:p"), IRI("ex:o"))])
        assert doc.endswith(".\n")


# Round-trip property: serialize ∘ parse == identity.

_safe_iri = st.from_regex(r"ex:[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True).map(IRI)
_lexical = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), min_codepoint=1),
    max_size=20,
)
_literal = st.one_of(
    st.builds(Literal, _lexical),
    st.builds(lambda s: Literal(s, language="en"), _lexical),
    st.builds(lambda s: Literal(s, datatype=IRI("xsd:string")), _lexical),
)
_triple = st.builds(Triple, _safe_iri, _safe_iri, st.one_of(_safe_iri, _literal))


@settings(max_examples=80, deadline=None)
@given(st.lists(_triple, max_size=15))
def test_roundtrip(triples):
    doc = serialize_ntriples(triples)
    assert list(parse_ntriples(doc)) == triples
