"""Tests for the RDF term model."""

import pytest

from repro.rdf import IRI, Literal, Triple
from repro.rdf import vocab


class TestIRI:
    def test_equality_and_hash(self):
        assert IRI("ex:a") == IRI("ex:a")
        assert IRI("ex:a") != IRI("ex:b")
        assert hash(IRI("ex:a")) == hash(IRI("ex:a"))

    def test_empty_value_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_str_is_value(self):
        assert str(IRI("http://example.org/x")) == "http://example.org/x"

    def test_local_name_hash(self):
        assert IRI("http://example.org/ns#Berlin").local_name == "Berlin"

    def test_local_name_slash(self):
        assert IRI("http://dbpedia.org/resource/Berlin").local_name == "Berlin"

    def test_local_name_colon(self):
        assert IRI("ex:Melanie_Griffith").local_name == "Melanie_Griffith"

    def test_local_name_plain(self):
        assert IRI("Berlin").local_name == "Berlin"

    def test_immutable(self):
        iri = IRI("ex:a")
        with pytest.raises(AttributeError):
            iri.value = "ex:b"


class TestLiteral:
    def test_plain_literal(self):
        lit = Literal("hello")
        assert lit.lexical == "hello"
        assert lit.datatype is None
        assert lit.language is None

    def test_language_tagged(self):
        lit = Literal("Berlin", language="de")
        assert lit.language == "de"

    def test_datatype_and_language_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("1", datatype=vocab.XSD_INTEGER, language="en")

    def test_to_python_integer(self):
        assert Literal("42", datatype=vocab.XSD_INTEGER).to_python() == 42

    def test_to_python_decimal(self):
        assert Literal("1.98", datatype=vocab.XSD_DECIMAL).to_python() == pytest.approx(1.98)

    def test_to_python_boolean(self):
        assert Literal("true", datatype=vocab.XSD_BOOLEAN).to_python() is True
        assert Literal("false", datatype=vocab.XSD_BOOLEAN).to_python() is False

    def test_to_python_plain_is_string(self):
        assert Literal("abc").to_python() == "abc"

    def test_literal_not_equal_to_iri_with_same_text(self):
        assert Literal("ex:a") != IRI("ex:a")

    def test_equality_includes_language(self):
        assert Literal("Berlin", language="de") != Literal("Berlin", language="en")
        assert Literal("Berlin", language="de") != Literal("Berlin")


class TestTriple:
    def test_construction_and_iteration(self):
        t = Triple(IRI("ex:s"), IRI("ex:p"), IRI("ex:o"))
        s, p, o = t
        assert (s, p, o) == (IRI("ex:s"), IRI("ex:p"), IRI("ex:o"))

    def test_literal_object_allowed(self):
        t = Triple(IRI("ex:s"), IRI("ex:p"), Literal("x"))
        assert isinstance(t.object, Literal)

    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            Triple(Literal("x"), IRI("ex:p"), IRI("ex:o"))

    def test_literal_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(IRI("ex:s"), Literal("x"), IRI("ex:o"))

    def test_non_term_object_rejected(self):
        with pytest.raises(TypeError):
            Triple(IRI("ex:s"), IRI("ex:p"), "not-a-term")

    def test_hashable(self):
        t1 = Triple(IRI("ex:s"), IRI("ex:p"), IRI("ex:o"))
        t2 = Triple(IRI("ex:s"), IRI("ex:p"), IRI("ex:o"))
        assert len({t1, t2}) == 1
