"""Property-style tests: the adjacency kernel against nested-dict references.

Every result the kernel serves — adjacency rows, incident-predicate
signatures, path walks, mined simple-path sets — is recomputed here by a
straightforward reference implementation over the triple store's index
views, and the two must agree exactly on both the synthetic generator
output and the curated dbpedia-mini graph.  A final regression test pins
the ``refresh()`` invalidation contract.
"""

from collections import Counter, defaultdict

import pytest

from repro.datasets import SyntheticConfig, build_dbpedia_mini, build_synthetic_kg
from repro.paraphrase.path_mining import find_simple_paths
from repro.rdf import IRI, KnowledgeGraph, Triple, TripleStore
from repro.rdf.graph import Direction


@pytest.fixture(params=["synthetic", "dbpedia_mini"])
def kg(request):
    if request.param == "synthetic":
        return build_synthetic_kg(
            SyntheticConfig(entities=200, triples_per_entity=4, predicates=12)
        )
    return build_dbpedia_mini()


# --------------------------------------------------------------------- #
# Nested-dict reference implementations
# --------------------------------------------------------------------- #

def reference_adjacency(kg, include_literals):
    """node → multiset of (signed step, neighbor), straight off the triples."""
    structural = kg.structural_predicate_ids
    is_literal = kg.store.is_literal_id
    adjacency = defaultdict(list)
    for sid, pid, oid in kg.store.triples_ids():
        if pid in structural:
            continue
        if not include_literals and is_literal(oid):
            continue
        adjacency[sid].append((pid + 1, oid))
        adjacency[oid].append((-(pid + 1), sid))
    return adjacency


def reference_neighbors(kg, node):
    """(signed step, neighbor) pairs via the store's nested index views."""
    structural = kg.structural_predicate_ids
    for pid, objects in kg.store.out_index(node).items():
        if pid in structural:
            continue
        for oid in objects:
            yield pid + 1, oid
    for sid, predicates in kg.store.in_index(node).items():
        for pid in predicates:
            if pid in structural:
                continue
            yield -(pid + 1), sid


def reference_walk(kg, start, path):
    """Frontier-by-frontier path walk over the nested dict indexes."""
    frontier = {start}
    for step in path:
        next_frontier = set()
        pid = abs(step) - 1
        for node in frontier:
            if step > 0:
                next_frontier |= set(kg.store.objects_ids(node, pid))
            else:
                next_frontier |= set(kg.store.subjects_ids(pid, node))
        frontier = next_frontier
        if not frontier:
            break
    return frontier


def naive_simple_paths(kg, source, target, max_length):
    """Exhaustive DFS simple-path enumeration (the semantic ground truth).

    Paths never pass *through* a literal, but may end on one when the
    literal is the target — the same contract as ``find_simple_paths``.
    """
    is_literal = kg.store.is_literal_id
    found = set()

    def extend(node, path, visited):
        if node == target and path:
            found.add(tuple(path))
            return
        if len(path) >= max_length or is_literal(node):
            return
        for step, neighbor in reference_neighbors(kg, node):
            if neighbor in visited:
                continue
            if neighbor != target and is_literal(neighbor):
                continue
            visited.add(neighbor)
            path.append(step)
            extend(neighbor, path, visited)
            path.pop()
            visited.discard(neighbor)

    if source == target:
        return found
    if is_literal(source):
        # The real miner reverses the literal-source case; mirror it.
        return {
            tuple(-step for step in reversed(path))
            for path in naive_simple_paths(kg, target, source, max_length)
        }
    extend(source, [], {source})
    return found


def sample_entities(kg, count):
    """A deterministic spread of entity ids (not hand-picked hubs)."""
    entities = sorted(kg.entity_ids())
    stride = max(1, len(entities) // count)
    return entities[::stride][:count]


# --------------------------------------------------------------------- #
# Equivalence properties
# --------------------------------------------------------------------- #

class TestKernelMatchesReference:
    def test_full_adjacency_edge_sets(self, kg):
        reference = reference_adjacency(kg, include_literals=True)
        nodes = set(reference) | set(kg.store.node_ids())
        for node in nodes:
            steps, neighbors = kg.kernel.adjacency(node)
            assert Counter(zip(steps, neighbors)) == Counter(reference.get(node, []))

    def test_entity_adjacency_edge_sets(self, kg):
        reference = reference_adjacency(kg, include_literals=False)
        nodes = set(reference) | set(kg.store.node_ids())
        for node in nodes:
            steps, neighbors = kg.kernel.entity_adjacency(node)
            assert Counter(zip(steps, neighbors)) == Counter(reference.get(node, []))

    def test_incident_steps_signature(self, kg):
        reference = reference_adjacency(kg, include_literals=True)
        for node in set(reference) | set(kg.store.node_ids()):
            expected = frozenset(step for step, _ in reference.get(node, []))
            assert kg.kernel.incident_steps(node) == expected

    def test_incident_predicates_signature(self, kg):
        reference = reference_adjacency(kg, include_literals=True)
        for node in set(reference):
            expected = frozenset(
                (step - 1, Direction.OUT) if step > 0 else (-step - 1, Direction.IN)
                for step, _ in reference[node]
            )
            assert kg.incident_predicates(node) == expected

    def test_walk_path_matches_reference(self, kg):
        for start in sample_entities(kg, 12):
            for step, _neighbor in list(kg.kernel.neighbors(start))[:4]:
                for extra, _ in list(kg.kernel.neighbors(start))[:2]:
                    path = (step, -extra)
                    assert kg.kernel.walk_path(start, path) == frozenset(
                        reference_walk(kg, start, path)
                    )
                assert kg.kernel.walk_path(start, (step,)) == frozenset(
                    reference_walk(kg, start, (step,))
                )

    def test_walk_path_returns_shared_frozenset(self, kg):
        start = sample_entities(kg, 1)[0]
        steps, _ = kg.kernel.adjacency(start)
        if not steps:
            pytest.skip("isolated sample node")
        first = kg.kernel.walk_path(start, (steps[0],))
        assert isinstance(first, frozenset)
        assert kg.kernel.walk_path(start, (steps[0],)) is first  # LRU hit

    @pytest.mark.parametrize("max_length", [2, 3])
    def test_mined_path_sets_match_naive_dfs(self, kg, max_length):
        entities = sample_entities(kg, 6)
        pairs = [(a, b) for a in entities for b in entities if a != b][:15]
        for source, target in pairs:
            assert find_simple_paths(kg, source, target, max_length) == \
                naive_simple_paths(kg, source, target, max_length), (source, target)

    def test_mined_paths_to_literal_match_naive_dfs(self, kg):
        literals = sorted(kg.store.iter_literal_ids())[:4]
        for source in sample_entities(kg, 4):
            for literal in literals:
                assert find_simple_paths(kg, source, literal, 3) == \
                    naive_simple_paths(kg, source, literal, 3), (source, literal)


# --------------------------------------------------------------------- #
# refresh() invalidation
# --------------------------------------------------------------------- #

class TestRefreshInvalidation:
    def build(self):
        store = TripleStore()
        e = lambda name: IRI(f"ex:{name}")
        store.add(Triple(e("a"), e("knows"), e("b")))
        store.add(Triple(e("b"), e("knows"), e("c")))
        return store, KnowledgeGraph(store), e

    def test_kernel_is_stale_until_refresh(self):
        store, kg, e = self.build()
        kernel_before = kg.kernel
        a = kg.id_of(e("a"))
        c = kg.id_of(e("c"))
        knows = kg.id_of(e("knows"))
        assert find_simple_paths(kg, a, c, 1) == set()
        store.add(Triple(e("a"), e("likes"), e("c")))
        # The kernel is immutable: the new triple is invisible until refresh.
        assert kg.kernel is kernel_before
        likes = kg.id_of(e("likes"))
        assert (likes + 1) not in kg.kernel.incident_steps(a)

        kg.refresh()
        assert kg.kernel is not kernel_before
        assert (likes + 1) in kg.kernel.incident_steps(a)
        assert find_simple_paths(kg, a, c, 1) == {(likes + 1,)}
        assert kg.kernel.walk_path(a, (likes + 1,)) == frozenset({c})
        assert kg.incident_predicates(a) == frozenset(
            {(knows, Direction.OUT), (likes, Direction.OUT)}
        )

    def test_cache_regions_dropped_on_refresh(self):
        store, kg, e = self.build()
        a = kg.id_of(e("a"))
        c = kg.id_of(e("c"))
        find_simple_paths(kg, a, c, 4)  # populates the expand-tree region
        assert kg.kernel.cache_region("mining.expand_tree")
        old_region = kg.kernel.cache_region("mining.expand_tree")
        kg.refresh()
        assert kg.kernel.cache_region("mining.expand_tree") is not old_region
        assert not kg.kernel.cache_region("mining.expand_tree")
