"""Backend equivalence: DictBackend and CompactBackend answer identically.

The compact backend is a frozen, sorted-column re-encoding of the same
index; every id-level read — all eight triple-pattern shapes, counts,
adjacency rows, distinct-id streams — must return exactly what the dict
backend returns, or query results would depend on how the store was
loaded.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StoreFrozenError
from repro.rdf import IRI, Literal, Triple, TripleStore
from repro.rdf.backend import CompactBackend, DictBackend


def t(s, p, o):
    obj = o if isinstance(o, Literal) else IRI(o)
    return Triple(IRI(s), IRI(p), obj)


TRIPLES = [
    t("ex:banderas", "ex:spouse", "ex:griffith"),
    t("ex:banderas", "ex:starring", "ex:philadelphia_film"),
    t("ex:banderas", "ex:type", "ex:Actor"),
    t("ex:hanks", "ex:starring", "ex:philadelphia_film"),
    t("ex:hanks", "ex:type", "ex:Actor"),
    t("ex:banderas", "ex:height", Literal("1.74")),
    t("ex:griffith", "ex:spouse", "ex:banderas"),
]


@pytest.fixture
def pair():
    """(dict-backed store, compact re-encoding of the same store)."""
    store = TripleStore()
    store.add_all(TRIPLES)
    return store, store.compacted()


def all_ids(backend):
    return sorted(
        set(backend.subject_ids()) | set(backend.predicate_ids())
        | set(backend.object_ids())
    )


def assert_equivalent(dict_backend, compact_backend):
    assert len(dict_backend) == len(compact_backend)
    ids = all_ids(dict_backend)
    assert ids == all_ids(compact_backend)
    assert sorted(dict_backend.triples_ids()) == sorted(compact_backend.triples_ids())
    probe = ids + [max(ids, default=0) + 1]  # one id no triple uses
    for s in probe:
        assert sorted(dict_backend.out_index(s).items()) == sorted(
            (p, set(objects))
            for p, objects in compact_backend.out_index(s).items()
        )
        assert sorted(dict_backend.in_index(s).items()) == sorted(
            (p, set(subjects))
            for p, subjects in compact_backend.in_index(s).items()
        )
        for p in probe:
            assert dict_backend.objects_ids(s, p) == compact_backend.objects_ids(s, p)
            assert dict_backend.subjects_ids(p, s) == compact_backend.subjects_ids(p, s)
            for bound in (
                (s, None, None), (None, p, None), (None, None, s),
                (s, p, None), (s, None, p), (None, s, p), (s, p, s),
                (None, None, None),
            ):
                assert sorted(dict_backend.triples_ids(*bound)) == sorted(
                    compact_backend.triples_ids(*bound)
                ), bound
                assert dict_backend.count(*bound) == compact_backend.count(*bound), bound


class TestEquivalence:
    def test_fixture_store(self, pair):
        store, compact = pair
        assert_equivalent(store.backend, compact.backend)

    def test_iter_out_rows_same_content(self, pair):
        store, compact = pair
        dict_rows = {
            s: {p: set(objects) for p, objects in row.items()}
            for s, row in store.backend.iter_out_rows()
        }
        compact_rows = {
            s: {p: set(objects) for p, objects in row.items()}
            for s, row in compact.backend.iter_out_rows()
        }
        assert dict_rows == compact_rows

    def test_objects_of_predicate(self, pair):
        store, compact = pair
        for p in store.predicate_ids():
            assert sorted(store.backend.objects_of_predicate(p)) == sorted(
                compact.backend.objects_of_predicate(p)
            )

    @settings(max_examples=60, deadline=None)
    @given(
        triples=st.lists(
            st.tuples(
                st.integers(0, 7), st.integers(0, 4), st.integers(0, 7)
            ),
            max_size=40,
        )
    )
    def test_property_equivalence(self, triples):
        dict_backend = DictBackend()
        for s, p, o in triples:
            dict_backend.add(s, p, o)
        compact = CompactBackend.from_triples(
            dict_backend.triples_ids(), version=dict_backend.version
        )
        assert_equivalent(dict_backend, compact)

    def test_from_triples_dedups(self):
        compact = CompactBackend.from_triples([(1, 2, 3), (1, 2, 3), (0, 2, 3)])
        assert len(compact) == 2


class TestFrozen:
    def test_compact_backend_rejects_mutation(self):
        compact = CompactBackend.from_triples([(1, 2, 3)])
        with pytest.raises(StoreFrozenError):
            compact.add(4, 5, 6)
        with pytest.raises(StoreFrozenError):
            compact.remove(1, 2, 3)

    def test_compacted_store_rejects_mutation(self, pair):
        _, compact = pair
        assert not compact.writable
        with pytest.raises(StoreFrozenError):
            compact.add(t("ex:new", "ex:p", "ex:o"))
        with pytest.raises(StoreFrozenError):
            compact.remove(TRIPLES[0])

    def test_frozen_add_does_not_grow_shared_dictionary(self, pair):
        store, compact = pair
        size_before = len(store.dictionary)
        with pytest.raises(StoreFrozenError):
            compact.add(t("ex:unseen", "ex:unseen_p", "ex:unseen_o"))
        assert len(store.dictionary) == size_before

    def test_version_carried_forward(self, pair):
        store, compact = pair
        assert compact.version == store.version


class TestCompactedStore:
    def test_term_level_queries_match(self, pair):
        store, compact = pair
        assert set(compact.triples()) == set(store.triples())
        assert set(compact.triples(subject=IRI("ex:banderas"))) == set(
            store.triples(subject=IRI("ex:banderas"))
        )
        assert compact.statistics() == store.statistics()

    def test_shares_term_ids(self, pair):
        store, compact = pair
        assert compact.dictionary is store.dictionary

    def test_literals_survive(self, pair):
        store, compact = pair
        assert sorted(compact.iter_literal_ids()) == sorted(store.iter_literal_ids())
